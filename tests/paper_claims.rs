//! The paper's quantitative claims, asserted as tests: these pin the
//! *shape* of every headline result (who wins, by roughly what factor,
//! where the turning points fall). `EXPERIMENTS.md` records the exact
//! measured numbers next to the paper's.

use pinatubo_baselines::{BitwiseExecutor, PinatuboExecutor, SimdCpu};
use pinatubo_core::{BitwiseOp, BulkOp};
use pinatubo_nvm::area::AreaModel;
use pinatubo_nvm::sense_amp::CurrentSenseAmp;
use pinatubo_nvm::technology::Technology;

fn throughput(executor: &mut PinatuboExecutor, operands: usize, bits: u64) -> f64 {
    let op = BulkOp::intra(BitwiseOp::Or, operands, bits);
    executor.execute(&op).throughput_gbps(op.operand_bits())
}

/// A warmed-up executor: the first operation pays a one-off mode-register
/// set that would skew small ratio measurements.
fn warm_executor() -> PinatuboExecutor {
    let mut x = PinatuboExecutor::multi_row();
    let _ = x.execute(&BulkOp::intra(BitwiseOp::Or, 2, 64));
    x
}

/// §4.2: the PCM sense margin supports 128-row OR; STT-MRAM is held to 2;
/// multi-row AND is impossible beyond 2 on any technology.
#[test]
fn fan_in_limits_match_section_4_2() {
    assert_eq!(
        CurrentSenseAmp::new(&Technology::pcm()).max_or_fan_in(),
        128
    );
    assert_eq!(
        CurrentSenseAmp::new(&Technology::reram()).max_or_fan_in(),
        128
    );
    assert_eq!(
        CurrentSenseAmp::new(&Technology::stt_mram()).max_or_fan_in(),
        2
    );
    assert!(pinatubo_nvm::sense_amp::SenseMode::and(3).is_err());
}

/// Fig. 9, turning point A: throughput growth slows past 2^14 bits (the SA
/// mux limit) — the step from 2^13 to 2^14 doubles throughput, the step
/// from 2^14 to 2^15 does not.
#[test]
fn fig9_turning_point_a() {
    let mut x = warm_executor();
    let up_to_a = throughput(&mut x, 2, 1 << 14) / throughput(&mut x, 2, 1 << 13);
    let past_a = throughput(&mut x, 2, 1 << 15) / throughput(&mut x, 2, 1 << 14);
    assert!(
        up_to_a > 1.9,
        "pre-A scaling should be ~linear, got {up_to_a}"
    );
    assert!(past_a < 1.95, "post-A scaling must slow, got {past_a}");
}

/// Fig. 9, turning point B: beyond the 2^19-bit row, vectors span
/// rank-serial segments and throughput flattens completely.
#[test]
fn fig9_turning_point_b() {
    let mut x = warm_executor();
    let at_b = throughput(&mut x, 2, 1 << 19);
    let past_b = throughput(&mut x, 2, 1 << 20);
    assert!(
        (past_b / at_b - 1.0).abs() < 0.01,
        "post-B throughput must be flat ({at_b} vs {past_b})"
    );
}

/// Fig. 9's three regions: short vectors sit below the 51.2 GB/s DDR bus,
/// long 2-row ops reach the memory-internal region, and 128-row ops go
/// beyond it ("~1000× larger than the DDR3 bus", §3).
#[test]
fn fig9_bandwidth_regions() {
    let mut x = warm_executor();
    let bus = 51.2;
    assert!(throughput(&mut x, 2, 1 << 10) < bus);
    let internal = throughput(&mut x, 2, 1 << 19);
    assert!(internal > bus && internal < 2000.0);
    let beyond = throughput(&mut x, 128, 1 << 19);
    assert!(
        beyond > 2000.0,
        "128-row OR should exceed internal bandwidth, got {beyond}"
    );
    assert!(
        beyond / 12.8 > 400.0,
        "equivalent bandwidth should approach ~1000x one DDR3 channel"
    );
}

/// Abstract: ~500× bitwise speedup and ~28000× bitwise energy saving for
/// multi-row operations over the SIMD baseline (order-of-magnitude band).
#[test]
fn headline_speedup_and_energy_bands() {
    let op = BulkOp::intra(BitwiseOp::Or, 128, 1 << 19);
    let mut cpu = SimdCpu::with_pcm();
    cpu.set_workload_footprint(Some(4 << 30));
    let simd = cpu.execute(&op);
    let pim = PinatuboExecutor::multi_row().execute(&op);
    let speedup = simd.time_ns / pim.time_ns;
    let saving = simd.energy_pj / pim.energy_pj;
    assert!(
        (250.0..1000.0).contains(&speedup),
        "speedup {speedup:.0} should sit in the ~500x band"
    );
    assert!(
        (10_000.0..60_000.0).contains(&saving),
        "energy saving {saving:.0} should sit in the ~28000x band"
    );
}

/// §6.2: Pinatubo-128 is ~22× faster than S-DRAM on multi-row work.
#[test]
fn multi_row_advantage_over_sdram() {
    use pinatubo_baselines::SdramExecutor;
    let op = BulkOp::intra(BitwiseOp::Or, 128, 1 << 19);
    let sdram = SdramExecutor::new().execute(&op);
    let pim = PinatuboExecutor::multi_row().execute(&op);
    let ratio = sdram.time_ns / pim.time_ns;
    assert!(
        (8.0..60.0).contains(&ratio),
        "Pinatubo-128 vs S-DRAM should be ~22x, got {ratio:.1}"
    );
}

/// Fig. 13: area overhead 0.9% (Pinatubo) vs 6.4% (AC-PIM), with the
/// breakdown dominated by the inter-subarray buffer logic.
#[test]
fn fig13_area_numbers() {
    let model = AreaModel::pcm_65nm();
    let pin = model.pinatubo_overhead_pct();
    let ac = model.acpim_overhead_pct();
    assert!(
        (pin - 0.9).abs() < 0.1,
        "Pinatubo overhead {pin}% vs paper 0.9%"
    );
    assert!(
        (ac - 6.4).abs() < 0.2,
        "AC-PIM overhead {ac}% vs paper 6.4%"
    );
    let b = model.pinatubo_breakdown();
    assert!(b.inter_subarray_pct > b.intra_subarray_pct());
    assert!((b.intra_subarray_pct() - 0.13).abs() < 0.02);
}

/// Table 1 / §6.2: the random-placement workload 14-16-7r is dominated by
/// inter-subarray/bank operations, so Pinatubo-128 degrades to roughly
/// Pinatubo-2 speed.
#[test]
fn random_placement_erases_the_multi_row_advantage() {
    use pinatubo_apps::VectorWorkload;
    let random = VectorWorkload::parse("14-16-7r").expect("parses").run();
    // Subsample: the ratio is per-op, 300 ops are plenty.
    let sample: Vec<_> = random.trace.iter().copied().take(300).collect();
    let t128 = PinatuboExecutor::multi_row().execute_trace(&sample).time_ns;
    let t2 = PinatuboExecutor::two_row().execute_trace(&sample).time_ns;
    assert!(
        t128 > t2 * 0.5,
        "Pinatubo-128 should be as slow as Pinatubo-2 on random placement ({t128} vs {t2})"
    );

    let sequential = VectorWorkload::parse("14-12-7s").expect("parses").run();
    let sample: Vec<_> = sequential.trace.iter().copied().take(300).collect();
    let t128_seq = PinatuboExecutor::multi_row().execute_trace(&sample).time_ns;
    let t2_seq = PinatuboExecutor::two_row().execute_trace(&sample).time_ns;
    assert!(
        t128_seq < t2_seq / 4.0,
        "sequential placement should restore the multi-row advantage"
    );
}
