//! Cross-crate properties of the bit-serial µ-program framework: every
//! µ-op bit-identical to the scalar reference across widths (including
//! non-word-aligned tails) under fused and unfused compilation, the
//! fusion/CSE activation win on a pinned shared-subexpression batch,
//! scratch round-tripping through the allocator, and serial/session
//! parity (bits, statistics and fault ledgers) across pool sizes.

use pinatubo_baselines::simd::arith_reference;
use pinatubo_core::rng::SimRng;
use pinatubo_core::{ArithOp, PinatuboConfig};
use pinatubo_mem::{MemConfig, MemStats, ReliabilityConfig};
use pinatubo_nvm::fault::FaultModel;
use pinatubo_nvm::yield_analysis::VariationModel;
use pinatubo_runtime::microcode::{self, CompileOptions, MicroOut, MicroProgram, TransposedVec};
use pinatubo_runtime::{MappingPolicy, PimBitVec, PimSystem};

fn sys() -> PimSystem {
    PimSystem::pcm_default(MappingPolicy::SubarrayFirst)
}

fn faulty_mem() -> MemConfig {
    let mut mem = MemConfig::pcm_default();
    mem.fault_model = FaultModel::with_seed(0xB17)
        .with_drift(0.04)
        .with_variation(VariationModel::Gaussian)
        .with_transients(1e-5, 1e-5, 1e-5)
        .with_write_flips(1e-5);
    mem.reliability = ReliabilityConfig::protected();
    mem
}

/// Random lanes with the wrap/borrow corners pinned into the first slots.
fn lane_values(rng: &mut SimRng, count: usize, width: u32) -> Vec<u64> {
    let max = ArithOp::lane_mask(width);
    let mut v: Vec<u64> = (0..count).map(|_| rng.gen_range_u64(0, max) + 1).collect();
    let pins = [0, max, max - 1, 1, max / 2];
    for (slot, pin) in v.iter_mut().zip(pins) {
        *slot = pin;
    }
    v
}

struct OpFixture {
    program: MicroProgram,
    op: ArithOp,
    konst: u64,
}

/// One program per µ-op, all over the same two inputs — compiled as a
/// single batch so the matrix also exercises cross-program CSE.
fn all_op_programs(
    a: &TransposedVec,
    b: &TransposedVec,
    konst: u64,
    s: &mut PimSystem,
) -> Vec<OpFixture> {
    let lanes = a.lanes();
    let width = a.width_bits();
    // Shift amounts must stay inside the lane width; derive one from the
    // shared constant so it still varies with the sweep parameters.
    let shift = u32::try_from(konst % u64::from(width)).expect("shift fits");
    ArithOp::ALL
        .iter()
        .map(|&op| {
            let mut used_konst = konst;
            let program = if op.result_is_mask() {
                let mask = s.alloc(lanes).expect("mask");
                match op {
                    ArithOp::CmpGe => MicroProgram::cmp_ge(a, b, &mask),
                    ArithOp::CmpLt => MicroProgram::cmp_lt(a, b, &mask),
                    ArithOp::ThresholdConst => MicroProgram::threshold_const(a, konst, &mask),
                    _ => unreachable!("mask-valued ops"),
                }
            } else {
                let dst = s.alloc_transposed(lanes, width).expect("dst");
                match op {
                    ArithOp::Add => MicroProgram::add(a, b, &dst),
                    ArithOp::Sub => MicroProgram::sub(a, b, &dst),
                    ArithOp::Max => MicroProgram::max(a, b, &dst),
                    ArithOp::Min => MicroProgram::min(a, b, &dst),
                    ArithOp::ShlConst => {
                        used_konst = u64::from(shift);
                        MicroProgram::shl_const(a, shift, &dst)
                    }
                    ArithOp::ShrConst => {
                        used_konst = u64::from(shift);
                        MicroProgram::shr_const(a, shift, &dst)
                    }
                    _ => unreachable!("vector-valued ops"),
                }
            };
            OpFixture {
                program,
                op,
                konst: used_konst,
            }
        })
        .collect()
}

/// Reads a program's output back as one `u64` per lane.
fn output_lanes(program: &MicroProgram, s: &PimSystem) -> Vec<u64> {
    match program.out() {
        MicroOut::Vector(v) => s.load_lanes(v),
        MicroOut::Mask(m) => s.load(m).into_iter().map(u64::from).collect(),
    }
}

/// Every µ-op × widths 8/16/32 × word-aligned and ragged lane counts,
/// fused and unfused: bit-identical to the scalar reference, with all
/// comparator scratch returned to the allocator.
#[test]
fn microps_match_reference_across_widths_and_tails() {
    for width in [8u32, 16, 32] {
        for lanes in [70usize, 4097] {
            let mut rng = SimRng::seed_from_u64(0xB17 ^ u64::from(width) ^ lanes as u64);
            let a_values = lane_values(&mut rng, lanes, width);
            let b_values = lane_values(&mut rng, lanes, width);
            let konst = ArithOp::lane_mask(width) / 3;
            for opts in [CompileOptions::optimized(), CompileOptions::unoptimized()] {
                let mut s = sys();
                let a = s.alloc_transposed(lanes as u64, width).expect("a");
                let b = s.alloc_transposed(lanes as u64, width).expect("b");
                s.store_lanes(&a, &a_values).expect("store a");
                s.store_lanes(&b, &b_values).expect("store b");
                let fixtures = all_op_programs(&a, &b, konst, &mut s);
                let free_before = s.allocator().free_rows();
                let programs: Vec<MicroProgram> =
                    fixtures.iter().map(|f| f.program.clone()).collect();
                microcode::run(&programs, opts, &mut s).expect("run");
                assert_eq!(
                    s.allocator().free_rows(),
                    free_before,
                    "scratch must round-trip (width={width}, lanes={lanes}, {opts:?})"
                );
                for f in &fixtures {
                    let b_ref = if f.op.takes_constant() {
                        None
                    } else {
                        Some(&b_values[..])
                    };
                    let want = arith_reference(f.op, &a_values, b_ref, f.konst, width);
                    assert_eq!(
                        output_lanes(&f.program, &s),
                        want,
                        "{} diverged (width={width}, lanes={lanes}, {opts:?})",
                        f.op
                    );
                }
            }
        }
    }
}

/// The pinned shared-subexpression batch: `Sub`, `CmpGe`, `CmpLt` and
/// `Min` over the same operands all need the one borrow chain. Fusion +
/// CSE must keep the bits identical while cutting total activations by
/// at least 15% — the regression floor the smoke benchmark also pins.
#[test]
fn fusion_and_cse_cut_activations_on_shared_chains() {
    let width = 16u32;
    let lanes = 512usize;
    let mut rng = SimRng::seed_from_u64(0xF05E);
    let a_values = lane_values(&mut rng, lanes, width);
    let b_values = lane_values(&mut rng, lanes, width);

    let mut activations = Vec::new();
    let mut bits = Vec::new();
    for opts in [CompileOptions::optimized(), CompileOptions::unoptimized()] {
        let mut s = sys();
        let a = s.alloc_transposed(lanes as u64, width).expect("a");
        let b = s.alloc_transposed(lanes as u64, width).expect("b");
        s.store_lanes(&a, &a_values).expect("store a");
        s.store_lanes(&b, &b_values).expect("store b");
        let diff = s.alloc_transposed(lanes as u64, width).expect("diff");
        let low = s.alloc_transposed(lanes as u64, width).expect("low");
        let ge = s.alloc(lanes as u64).expect("ge");
        let lt = s.alloc(lanes as u64).expect("lt");
        let programs = [
            MicroProgram::sub(&a, &b, &diff),
            MicroProgram::cmp_ge(&a, &b, &ge),
            MicroProgram::cmp_lt(&a, &b, &lt),
            MicroProgram::min(&a, &b, &low),
        ];
        let report = microcode::run(&programs, opts, &mut s).expect("run");
        activations.push(
            report
                .per_op
                .iter()
                .map(|(_, op)| op.activations)
                .sum::<u64>(),
        );
        bits.push((
            s.load_lanes(&diff),
            s.load_lanes(&low),
            s.load(&ge),
            s.load(&lt),
        ));
    }
    assert_eq!(bits[0], bits[1], "fused and unfused bits must agree");
    let (fused, unfused) = (activations[0], activations[1]);
    assert!(
        fused * 100 <= unfused * 85,
        "shared-chain batch must cut activations by >= 15%: fused {fused} vs unfused {unfused}"
    );
}

/// Constant shifts are pure plane-index remaps: the compiled batch holds
/// zero logic gates — only the output copy/zeroing requests remain — and
/// the bits match the scalar reference, including shift 0 (a copy) and
/// shifts at or beyond the lane width (all-zero).
#[test]
fn const_shifts_remap_planes_with_zero_gates() {
    let width = 12u32;
    let lanes = 300usize;
    let mut rng = SimRng::seed_from_u64(0x5817);
    let a_values = lane_values(&mut rng, lanes, width);
    for shift in [0u32, 1, 5, 11, 12, 40] {
        let mut s = sys();
        let a = s.alloc_transposed(lanes as u64, width).expect("a");
        s.store_lanes(&a, &a_values).expect("store a");
        let shl = s.alloc_transposed(lanes as u64, width).expect("shl");
        let shr = s.alloc_transposed(lanes as u64, width).expect("shr");
        let programs = [
            MicroProgram::shl_const(&a, shift, &shl),
            MicroProgram::shr_const(&a, shift, &shr),
        ];
        let batch =
            microcode::compile(&programs, CompileOptions::optimized(), &mut s).expect("compile");
        assert_eq!(batch.live_gates(), 0, "shift by {shift} must be gate-free");
        batch.execute(&mut s).expect("execute");
        for (vec, op) in [(&shl, ArithOp::ShlConst), (&shr, ArithOp::ShrConst)] {
            let want = arith_reference(op, &a_values, None, u64::from(shift), width);
            assert_eq!(s.load_lanes(vec), want, "{op} by {shift} diverged");
        }
        batch.release(&mut s);
    }
}

fn assert_close(label: &str, a: f64, b: f64) {
    let scale = a.abs().max(b.abs()).max(1.0);
    assert!(
        (a - b).abs() <= 1e-6 * scale,
        "{label} diverged: {a} vs {b}"
    );
}

fn assert_stats_match(serial: &MemStats, other: &MemStats) {
    assert_eq!(serial.events, other.events, "event counters must match");
    assert_eq!(
        serial.reliability, other.reliability,
        "fault/recovery ledgers must match"
    );
    assert_close("time_ns", serial.time_ns, other.time_ns);
    assert_close(
        "energy_pj",
        serial.energy.total_pj(),
        other.energy.total_pj(),
    );
}

type Outputs = (TransposedVec, TransposedVec, PimBitVec);

/// Allocates inputs + outputs deterministically and compiles the mixed
/// batch on the given system.
fn build_compiled(s: &mut PimSystem, opts: CompileOptions) -> (microcode::CompiledBatch, Outputs) {
    let width = 16u32;
    let lanes = 3000usize;
    let mut rng = SimRng::seed_from_u64(0x5E55);
    let a_values = lane_values(&mut rng, lanes, width);
    let b_values = lane_values(&mut rng, lanes, width);
    let a = s.alloc_transposed(lanes as u64, width).expect("a");
    let b = s.alloc_transposed(lanes as u64, width).expect("b");
    s.store_lanes(&a, &a_values).expect("store a");
    s.store_lanes(&b, &b_values).expect("store b");
    let sum = s.alloc_transposed(lanes as u64, width).expect("sum");
    let peak = s.alloc_transposed(lanes as u64, width).expect("peak");
    let ge = s.alloc(lanes as u64).expect("ge");
    let programs = [
        MicroProgram::add(&a, &b, &sum),
        MicroProgram::max(&a, &b, &peak),
        MicroProgram::cmp_ge(&a, &b, &ge),
    ];
    let batch = microcode::compile(&programs, opts, s).expect("compile");
    (batch, (sum, peak, ge))
}

fn read_outputs(s: &PimSystem, outs: &Outputs) -> (Vec<u64>, Vec<u64>, Vec<bool>) {
    (
        s.load_lanes(&outs.0),
        s.load_lanes(&outs.1),
        s.load(&outs.2),
    )
}

/// A compiled µ-program batch streamed through a persistent session is
/// pinned to serial execution — bits, merged statistics and the fault
/// ledger — for 1, 2 and 4 workers. The scratch-slot WAR/WAW recycling
/// must survive the sharded dependence analysis unchanged.
#[test]
fn session_matches_serial_across_pool_sizes() {
    let mk = |mem: MemConfig| {
        PimSystem::new(mem, PinatuboConfig::default(), MappingPolicy::ChannelRotate)
    };
    let mut serial = mk(faulty_mem());
    let (batch, outs) = build_compiled(&mut serial, CompileOptions::optimized());
    batch.execute_serial(&mut serial).expect("serial");
    let serial_bits = read_outputs(&serial, &outs);

    for workers in [1usize, 2, 4] {
        let mut s = mk(faulty_mem());
        let (batch, outs) = build_compiled(&mut s, CompileOptions::optimized());
        let mut session = s.open_session_with_workers(workers);
        batch.submit(&mut session).expect("submit");
        session.close().expect("close");
        assert_eq!(
            serial_bits,
            read_outputs(&s, &outs),
            "session must be bit-identical (workers={workers})"
        );
        assert_stats_match(serial.stats(), s.stats());
        assert_eq!(
            serial.trace(),
            s.trace(),
            "the abstract op trace must replay identically"
        );
    }
    assert!(
        serial.stats().reliability.detected_errors > 0,
        "the fault model must actually fire for this test to mean anything"
    );
}

/// Constant-folded extremes: a threshold at the lane maximum and a
/// `>= 0` comparison compile to pure constant planes — zero live gates,
/// no scratch — and still match the reference.
#[test]
fn constant_extremes_fold_to_zero_gates() {
    let width = 8u32;
    let lanes = 300usize;
    let max = ArithOp::lane_mask(width);
    let mut rng = SimRng::seed_from_u64(0xC0);
    let values = lane_values(&mut rng, lanes, width);
    let mut s = sys();
    let a = s.alloc_transposed(lanes as u64, width).expect("a");
    s.store_lanes(&a, &values).expect("store");
    let never = s.alloc(lanes as u64).expect("never");
    let always = s.alloc(lanes as u64).expect("always");
    let programs = [
        MicroProgram::threshold_const(&a, max, &never),
        MicroProgram::cmp_ge_const(&a, 0, &always),
    ];
    let batch =
        microcode::compile(&programs, CompileOptions::optimized(), &mut s).expect("compile");
    assert_eq!(batch.live_gates(), 0, "extremes must fold away every gate");
    batch.execute(&mut s).expect("execute");
    assert!(s.load(&never).iter().all(|&b| !b), "v > max is never true");
    assert!(s.load(&always).iter().all(|&b| b), "v >= 0 is always true");
}
