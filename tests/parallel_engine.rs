//! Cross-crate properties of the sharded parallel batch executor:
//! bit- and stats-parity with serial execution (including fault-injection
//! ledgers), determinism across worker counts, the merged-ledger
//! `detected == corrected + uncorrectable` invariant, and the degenerate
//! empty-batch / single-channel cases.

use pinatubo_core::{BitwiseOp, PinatuboConfig};
use pinatubo_mem::{MemConfig, MemStats, ReliabilityConfig};
use pinatubo_nvm::fault::FaultModel;
use pinatubo_nvm::rng::SimRng;
use pinatubo_nvm::yield_analysis::VariationModel;
use pinatubo_runtime::{BatchRequest, MappingPolicy, PimBitVec, PimSystem, RuntimeError};

fn faulty_mem() -> MemConfig {
    let mut mem = MemConfig::pcm_default();
    mem.fault_model = FaultModel::with_seed(0xD15C)
        .with_drift(0.04)
        .with_variation(VariationModel::Gaussian)
        .with_transients(1e-5, 1e-5, 1e-5)
        .with_write_flips(1e-5);
    mem.reliability = ReliabilityConfig::protected();
    mem
}

fn sys(mem: MemConfig) -> PimSystem {
    PimSystem::new(mem, PinatuboConfig::default(), MappingPolicy::ChannelRotate)
}

/// A mixed batch: twelve single-channel requests rotated across the four
/// channels (all four ops, fan-ins 2–4), one dependent request reading
/// two earlier results, and optionally one channel-straddling request
/// (operands and destination on different channels) to exercise the
/// unified-memory barrier between sharded phases.
fn build_batch(s: &mut PimSystem, with_cross: bool) -> (Vec<BatchRequest>, Vec<PimBitVec>) {
    let mut rng = SimRng::seed_from_u64(0xBA7C4);
    let len = 6000u64;
    let ops = [
        BitwiseOp::Or,
        BitwiseOp::And,
        BitwiseOp::Xor,
        BitwiseOp::Not,
    ];
    let mut requests = Vec::new();
    let mut dsts = Vec::new();
    for g in 0..12usize {
        let op = ops[g % 4];
        let k = if op == BitwiseOp::Not { 1 } else { 2 + g % 3 };
        let group = s.alloc_group(k + 1, len).expect("group");
        for v in &group[..k] {
            let bits: Vec<bool> = (0..len).map(|_| rng.gen_bit()).collect();
            s.store(v, &bits).expect("store");
        }
        dsts.push(group[k].clone());
        requests.push(BatchRequest {
            op,
            operands: group[..k].to_vec(),
            dst: group[k].clone(),
        });
    }
    // A dependent request: reads the results of requests 0 and 1, so the
    // scheduler must keep it after both.
    let dep_dst = s.alloc_group(1, len).expect("dep dst").remove(0);
    requests.push(BatchRequest {
        op: BitwiseOp::Or,
        operands: vec![dsts[0].clone(), dsts[1].clone()],
        dst: dep_dst.clone(),
    });
    dsts.push(dep_dst);
    if with_cross {
        // Operands land on one channel, the destination on the next:
        // no home channel, so the executor must run it on the unified
        // memory between sharded phases.
        let a = s.alloc_group(2, len).expect("cross operands");
        let d = s.alloc_group(1, len).expect("cross dst").remove(0);
        assert_ne!(
            a[0].rows()[0].channel,
            d.rows()[0].channel,
            "rotation must put the group and its successor on different channels"
        );
        let bits: Vec<bool> = (0..len).map(|_| rng.gen_bit()).collect();
        s.store(&a[0], &bits).expect("store cross");
        requests.push(BatchRequest {
            op: BitwiseOp::Or,
            operands: a.to_vec(),
            dst: d.clone(),
        });
        dsts.push(d);
    }
    (requests, dsts)
}

fn assert_close(label: &str, a: f64, b: f64) {
    let scale = a.abs().max(b.abs()).max(1.0);
    assert!(
        (a - b).abs() <= 1e-6 * scale,
        "{label} diverged: {a} vs {b}"
    );
}

/// Statistics parity up to float summation order (shard merge adds
/// per-channel subtotals; integer counters must match exactly).
fn assert_stats_match(serial: &MemStats, parallel: &MemStats) {
    assert_eq!(serial.events, parallel.events, "event counters must match");
    assert_eq!(
        serial.reliability, parallel.reliability,
        "fault/recovery ledgers must match"
    );
    assert_close("time_ns", serial.time_ns, parallel.time_ns);
    assert_close(
        "shared_ns",
        serial.time.shared_ns(),
        parallel.time.shared_ns(),
    );
    assert_close("stall_ns", serial.time.stall_ns, parallel.time.stall_ns);
    assert_close(
        "energy_pj",
        serial.energy.total_pj(),
        parallel.energy.total_pj(),
    );
}

#[test]
fn parallel_batch_matches_serial_bits_stats_and_faults() {
    for with_cross in [false, true] {
        let mut serial = sys(faulty_mem());
        let (batch, outs) = build_batch(&mut serial, with_cross);
        serial.execute_batch_serial(&batch).expect("serial batch");
        let serial_bits: Vec<Vec<bool>> = outs.iter().map(|v| serial.load(v)).collect();

        let mut parallel = sys(faulty_mem());
        let (batch, outs) = build_batch(&mut parallel, with_cross);
        parallel.execute_batch(&batch).expect("parallel batch");
        let parallel_bits: Vec<Vec<bool>> = outs.iter().map(|v| parallel.load(v)).collect();

        assert_eq!(
            serial_bits, parallel_bits,
            "parallel execution must be bit-identical (with_cross={with_cross})"
        );
        assert_stats_match(serial.stats(), parallel.stats());
        assert_eq!(
            serial.trace(),
            parallel.trace(),
            "the abstract op trace must replay identically"
        );
        assert!(
            parallel.stats().reliability.detected_errors > 0,
            "the fault model must actually fire for this test to mean anything"
        );
    }
}

#[test]
fn fault_free_parallel_batch_matches_serial_exactly() {
    let mut serial = sys(MemConfig::pcm_default());
    let (batch, outs) = build_batch(&mut serial, true);
    let serial_report = serial.execute_batch_serial(&batch).expect("serial batch");
    let serial_bits: Vec<Vec<bool>> = outs.iter().map(|v| serial.load(v)).collect();

    let mut parallel = sys(MemConfig::pcm_default());
    let (batch, outs) = build_batch(&mut parallel, true);
    let parallel_report = parallel.execute_batch(&batch).expect("parallel batch");
    let parallel_bits: Vec<Vec<bool>> = outs.iter().map(|v| parallel.load(v)).collect();

    assert_eq!(serial_bits, parallel_bits);
    assert_stats_match(serial.stats(), parallel.stats());
    assert_eq!(serial_report.per_op.len(), parallel_report.per_op.len());
    for ((si, ss), (pi, ps)) in serial_report.per_op.iter().zip(&parallel_report.per_op) {
        assert_eq!(si, pi, "scheduled order must be identical");
        assert_eq!(ss.activations, ps.activations);
        assert_eq!(ss.segments, ps.segments);
        assert_eq!(ss.class, ps.class);
        assert_close("per-op time", ss.time_ns, ps.time_ns);
        // The per-mechanism breakdown the scheduler expands into command
        // streams must survive the parallel path unchanged and stay
        // internally consistent.
        assert_close("per-op activate", ss.time.activate_ns, ps.time.activate_ns);
        assert_close("per-op sense", ss.time.sense_ns, ps.time.sense_ns);
        assert_close("per-op write", ss.time.write_ns, ps.time.write_ns);
        assert_close("per-op gdl", ss.time.gdl_ns, ps.time.gdl_ns);
        assert_close("per-op bus", ss.time.bus_ns, ps.time.bus_ns);
        assert_close("per-op mrs", ss.time.mrs_ns, ps.time.mrs_ns);
        assert_close("breakdown total", ps.time.total_ns(), ps.time_ns);
    }
    assert_close(
        "makespan",
        serial_report.makespan_ns,
        parallel_report.makespan_ns,
    );
}

#[test]
fn worker_count_does_not_change_results() {
    let mut reference: Option<(Vec<Vec<bool>>, MemStats)> = None;
    for workers in [1usize, 2, 4] {
        let mut s = sys(faulty_mem());
        let (batch, outs) = build_batch(&mut s, true);
        s.execute_batch_with_workers(&batch, workers)
            .expect("batch runs");
        let bits: Vec<Vec<bool>> = outs.iter().map(|v| s.load(v)).collect();
        let stats = *s.stats();
        match &reference {
            None => reference = Some((bits, stats)),
            Some((ref_bits, ref_stats)) => {
                assert_eq!(
                    ref_bits, &bits,
                    "{workers} workers must produce identical bits"
                );
                assert_eq!(
                    ref_stats.events, stats.events,
                    "{workers} workers must produce identical event counts"
                );
                assert_eq!(
                    ref_stats.reliability, stats.reliability,
                    "{workers} workers must consume identical fault streams"
                );
                assert_close("time_ns", ref_stats.time_ns, stats.time_ns);
            }
        }
    }
}

#[test]
fn merged_reliability_ledger_upholds_the_detection_invariant() {
    let mut s = sys(faulty_mem());
    let (batch, _) = build_batch(&mut s, true);
    s.execute_batch(&batch).expect("batch runs");
    let r = s.stats().reliability;
    assert!(r.detected_errors > 0, "faults must fire");
    assert_eq!(
        r.detected_errors,
        r.corrected_errors + r.uncorrectable_errors,
        "every detection must resolve after the shard merge: {r:?}"
    );
    assert!(r.is_consistent());
}

#[test]
fn empty_batch_is_a_no_op_on_the_parallel_path() {
    let mut s = sys(faulty_mem());
    for workers in [1usize, 4] {
        let report = s
            .execute_batch_with_workers(&[], workers)
            .expect("empty batch");
        assert_eq!(report.serial_time_ns, 0.0);
        assert_eq!(report.per_op.len(), 0);
    }
    assert_eq!(s.stats().time_ns, 0.0);
}

/// The persistent-pool session, fed the same planned batch, is pinned to
/// `execute_batch_serial`: bits, merged statistics (including the fault
/// ledger), the abstract op trace and the per-request summaries must all
/// match — for every pool size.
#[test]
fn session_matches_serial_across_pool_sizes() {
    for with_cross in [false, true] {
        let mut serial = sys(faulty_mem());
        let (batch, outs) = build_batch(&mut serial, with_cross);
        let serial_report = serial.execute_batch_serial(&batch).expect("serial batch");
        let serial_bits: Vec<Vec<bool>> = outs.iter().map(|v| serial.load(v)).collect();

        for workers in [1usize, 2, 4] {
            let mut s = sys(faulty_mem());
            let (batch, outs) = build_batch(&mut s, with_cross);
            let mut session = s.open_session_with_workers(workers);
            session.submit_batch(&batch).expect("submit batch");
            let summaries = session.close().expect("close");
            let bits: Vec<Vec<bool>> = outs.iter().map(|v| s.load(v)).collect();
            assert_eq!(
                serial_bits, bits,
                "session must be bit-identical (workers={workers}, with_cross={with_cross})"
            );
            assert_stats_match(serial.stats(), s.stats());
            assert_eq!(
                serial.trace(),
                s.trace(),
                "the abstract op trace must replay identically"
            );
            assert_eq!(summaries.len(), serial_report.per_op.len());
            for (k, ((_, ss), ps)) in serial_report.per_op.iter().zip(&summaries).enumerate() {
                assert_eq!(ss.activations, ps.activations, "op {k} activations");
                assert_eq!(ss.segments, ps.segments, "op {k} segments");
                assert_eq!(ss.class, ps.class, "op {k} class");
                assert_eq!(ss.reliability, ps.reliability, "op {k} fault ledger");
                assert_close("per-op time", ss.time_ns, ps.time_ns);
                assert_close("per-op bus", ss.time.bus_ns, ps.time.bus_ns);
                assert_close("per-op write", ss.time.write_ns, ps.time.write_ns);
                assert_close("breakdown total", ps.time.total_ns(), ps.time_ns);
            }
        }
    }
}

/// An interleaved stream — submits, explicit syncs, a mid-stream load, a
/// mid-stream store, dependent requests whose operands straddle channels
/// — matches one-at-a-time serial execution of the same stream, for
/// every pool size.
#[test]
fn interleaved_submit_sync_matches_serial_reference() {
    for workers in [1usize, 2, 4] {
        let mut serial = sys(faulty_mem());
        let mut pooled = sys(faulty_mem());

        // Identical allocations and setup on both systems.
        let setup = |s: &mut PimSystem| {
            let mut rng = SimRng::seed_from_u64(0x17EA);
            let len = 5000u64;
            let mut groups = Vec::new();
            for _ in 0..4 {
                let g = s.alloc_group(3, len).expect("group");
                for v in &g[..2] {
                    let bits: Vec<bool> = (0..len).map(|_| rng.gen_bit()).collect();
                    s.store(v, &bits).expect("store");
                }
                groups.push(g);
            }
            let cross_ops = s.alloc_group(2, len).expect("cross operands");
            let cross_dst = s.alloc_group(1, len).expect("cross dst").remove(0);
            assert_ne!(
                cross_ops[0].rows()[0].channel,
                cross_dst.rows()[0].channel,
                "rotation must split the straddling request across channels"
            );
            let bits: Vec<bool> = (0..len).map(|_| rng.gen_bit()).collect();
            s.store(&cross_ops[0], &bits).expect("store cross");
            (groups, cross_ops, cross_dst)
        };
        let (sg, s_cross_ops, s_cross_dst) = setup(&mut serial);
        let (pg, p_cross_ops, p_cross_dst) = setup(&mut pooled);
        let fresh: Vec<bool> = (0..5000).map(|i| i % 7 == 0).collect();

        // Serial reference: the stream, one request at a time.
        let mut serial_sums = Vec::new();
        serial_sums.push(
            serial
                .bitwise(BitwiseOp::Or, &[&sg[0][0], &sg[0][1]], &sg[0][2])
                .expect("or"),
        );
        serial_sums.push(
            serial
                .bitwise(BitwiseOp::And, &[&sg[1][0], &sg[1][1]], &sg[1][2])
                .expect("and"),
        );
        let serial_mid = serial.load(&sg[0][2]);
        serial_sums.push(
            serial
                .bitwise(BitwiseOp::Xor, &[&sg[0][2], &sg[1][2]], &sg[2][2])
                .expect("xor"),
        );
        serial.store(&sg[3][0], &fresh).expect("mid store");
        serial_sums.push(
            serial
                .bitwise(BitwiseOp::Not, &[&sg[3][0]], &sg[3][2])
                .expect("not"),
        );
        serial_sums.push(
            serial
                .bitwise(
                    BitwiseOp::Or,
                    &[&s_cross_ops[0], &s_cross_ops[1]],
                    &s_cross_dst,
                )
                .expect("cross or"),
        );

        // The same stream through a persistent session, with sync
        // points sprinkled through it.
        let mut session = pooled.open_session_with_workers(workers);
        session
            .submit(BitwiseOp::Or, &[&pg[0][0], &pg[0][1]], &pg[0][2])
            .expect("or");
        session
            .submit(BitwiseOp::And, &[&pg[1][0], &pg[1][1]], &pg[1][2])
            .expect("and");
        session.sync().expect("mid sync");
        let pooled_mid = session.load(&pg[0][2]).expect("mid load");
        session
            .submit(BitwiseOp::Xor, &[&pg[0][2], &pg[1][2]], &pg[2][2])
            .expect("xor");
        session.store(&pg[3][0], &fresh).expect("mid store");
        session
            .submit(BitwiseOp::Not, &[&pg[3][0]], &pg[3][2])
            .expect("not");
        session
            .submit(
                BitwiseOp::Or,
                &[&p_cross_ops[0], &p_cross_ops[1]],
                &p_cross_dst,
            )
            .expect("cross or");
        let pooled_sums = session.close().expect("close");

        assert_eq!(
            serial_mid, pooled_mid,
            "mid-stream load (workers={workers})"
        );
        let serial_final: Vec<Vec<bool>> = sg
            .iter()
            .map(|g| serial.load(&g[2]))
            .chain(std::iter::once(serial.load(&s_cross_dst)))
            .collect();
        let pooled_final: Vec<Vec<bool>> = pg
            .iter()
            .map(|g| pooled.load(&g[2]))
            .chain(std::iter::once(pooled.load(&p_cross_dst)))
            .collect();
        assert_eq!(serial_final, pooled_final, "workers={workers}");
        assert_stats_match(serial.stats(), pooled.stats());
        assert_eq!(serial.trace(), pooled.trace());
        assert_eq!(serial_sums.len(), pooled_sums.len());
        for (ss, ps) in serial_sums.iter().zip(&pooled_sums) {
            assert_eq!(ss.activations, ps.activations);
            assert_eq!(ss.segments, ps.segments);
            assert_eq!(ss.reliability, ps.reliability);
            assert_close("summary time", ss.time_ns, ps.time_ns);
        }
    }
}

/// A panicking shard worker must not lose other channels' committed
/// state: the session reports `WorkerPanicked` for the poisoned channel
/// and everything synced from healthy channels survives in the parent.
#[test]
fn worker_panic_is_contained_and_reported() {
    for workers in [1usize, 4] {
        let mut s = sys(MemConfig::pcm_default());
        let row_bits = s.engine().memory().geometry().logical_row_bits();
        let len = row_bits + 8; // two row segments
        let good = s.alloc_group(3, 4000).expect("good group");
        let bad_dst = s.alloc(len).expect("bad dst");
        assert!(bad_dst.rows().len() >= 2, "dst must span two rows");
        assert_eq!(
            bad_dst.rows()[0].channel,
            bad_dst.rows()[1].channel,
            "dst must stay on one channel"
        );
        assert_ne!(
            good[0].rows()[0].channel,
            bad_dst.rows()[0].channel,
            "the panic must hit a different channel than the good work"
        );
        // A deliberately malformed handle: claims the destination's
        // length but owns a single row, so the worker indexes past its
        // row list on the second segment and panics mid-request.
        let bad_operand = PimBitVec::from_raw_parts(u64::MAX, len, vec![bad_dst.rows()[0]]);

        let bits: Vec<bool> = (0..4000).map(|i| i % 3 == 0).collect();
        s.store(&good[0], &bits).expect("store");
        let mut session = s.open_session_with_workers(workers);
        session
            .submit(BitwiseOp::Or, &[&good[0], &good[1]], &good[2])
            .expect("good submit");
        session
            .submit(BitwiseOp::Not, &[&bad_operand], &bad_dst)
            .expect("the malformed submit still dispatches");
        let err = session.sync().expect_err("the panic must surface at sync");
        match &err {
            RuntimeError::WorkerPanicked { channel, .. } => {
                assert_eq!(*channel, bad_dst.rows()[0].channel);
            }
            other => panic!("expected WorkerPanicked, got {other:?}"),
        }
        assert!(
            matches!(session.close(), Err(RuntimeError::WorkerPanicked { .. })),
            "close must report the same failure"
        );
        // The healthy channel's committed work survives in the parent:
        // good[1] was never stored, so OR(good[0], zeros) == good[0].
        assert_eq!(s.load(&good[2]), bits, "workers={workers}");
        assert!(s.stats().reliability.is_consistent());
    }
}

/// Requests queued behind a failed request on a halted channel must
/// surface as per-position `ChannelHalted` errors at sync — not vanish
/// from the results picture — while the root cause stays the session's
/// reported error and other channels keep executing.
#[test]
fn requests_behind_a_failure_surface_as_per_position_errors() {
    for workers in [1usize, 4] {
        let mut s = sys(MemConfig::pcm_default());
        let len = 2000u64;
        let a = s.alloc_group(5, len).expect("group a");
        let b = s.alloc_group(3, len).expect("group b");
        let ch = a[0].rows()[0].channel;
        assert_ne!(
            ch,
            b[0].rows()[0].channel,
            "rotation must put the healthy work on another channel"
        );
        // A syntactically well-formed handle pointing one row past the
        // subarray: the shard rejects it with `AddressOutOfRange` — an
        // error, not a panic — and halts its channel.
        let bad_row = s.engine().memory().geometry().rows_per_subarray;
        let bad = PimBitVec::from_raw_parts(
            u64::MAX,
            len,
            vec![pinatubo_mem::RowAddr::new(ch, 0, 0, 0, bad_row)],
        );

        let bits: Vec<bool> = (0..len).map(|i| i % 2 == 0).collect();
        s.store(&a[0], &bits).expect("store a0");
        s.store(&b[0], &bits).expect("store b0");

        let mut session = s.open_session_with_workers(workers);
        let p0 = session
            .submit(BitwiseOp::Or, &[&a[0], &a[1]], &a[2])
            .expect("p0 dispatches");
        let p1 = session
            .submit(BitwiseOp::Not, &[&bad], &a[3])
            .expect("p1 dispatches (errors surface at sync)");
        let p2 = session
            .submit(BitwiseOp::Or, &[&a[0], &a[1]], &a[4])
            .expect("p2 dispatches");
        let p3 = session
            .submit(BitwiseOp::Or, &[&b[0], &b[1]], &b[2])
            .expect("p3 dispatches");
        assert_eq!((p0, p1, p2, p3), (0, 1, 2, 3));

        let err = session.sync().expect_err("the failure surfaces at sync");
        assert!(
            matches!(err, RuntimeError::Pim(_)),
            "the session-level error is the earliest root cause, got {err:?}"
        );
        let errors = session.position_errors();
        assert!(
            matches!(errors.get(&1), Some(RuntimeError::Pim(_))),
            "the failing position carries its root cause: {:?}",
            errors.get(&1)
        );
        assert!(
            matches!(
                errors.get(&2),
                Some(RuntimeError::ChannelHalted { channel }) if *channel == ch
            ),
            "the request queued behind the failure must surface as a \
             per-position error, not a silent gap: {:?}",
            errors.get(&2)
        );
        assert!(
            !errors.contains_key(&0) && !errors.contains_key(&3),
            "completed positions carry no error: {errors:?}"
        );
        drop(session);
        // Committed work on both channels survives in the parent
        // (the second operands were never stored, so OR(x, 0) == x).
        assert_eq!(s.load(&a[2]), bits, "workers={workers}");
        assert_eq!(s.load(&b[2]), bits, "workers={workers}");
        assert!(s.stats().reliability.is_consistent());
    }
}

/// Sessions are safe in the degenerate cases: an empty session closes
/// cleanly, and dropping a session without closing it still reconciles
/// committed work into the parent.
#[test]
fn empty_session_and_implicit_drop_are_safe() {
    let mut s = sys(MemConfig::pcm_default());
    let session = s.open_session();
    let sums = session.close().expect("empty close");
    assert!(sums.is_empty());

    let g = s.alloc_group(3, 2000).expect("group");
    s.store(&g[0], &vec![true; 2000]).expect("store");
    {
        let mut session = s.open_session_with_workers(2);
        session
            .submit(BitwiseOp::Or, &[&g[0], &g[1]], &g[2])
            .expect("submit");
    } // dropped without close
    assert_eq!(s.count_ones(&g[2]), 2000);
    assert!(s.stats().reliability.is_consistent());
}

/// [`faulty_mem`] with the read path upgraded to SEC-DED and a read
/// transient rate high enough that in-place corrections actually fire
/// during the batch's loads.
fn faulty_mem_secded() -> MemConfig {
    let mut mem = faulty_mem();
    mem.fault_model = FaultModel::with_seed(0xD15C)
        .with_drift(0.04)
        .with_variation(VariationModel::Gaussian)
        .with_transients(1e-4, 1e-5, 1e-5)
        .with_write_flips(1e-5);
    mem.reliability = ReliabilityConfig::protected_secded();
    mem
}

/// Session-vs-serial parity holds with SEC-DED enabled: the ECC check
/// bytes ship through `ChannelDelta` like every other protection
/// metadata, so shard-side reads correct the same bits the serial run
/// corrects and the merged ledgers (including `ecc_corrected_bits`)
/// match exactly.
#[test]
fn secded_session_matches_serial() {
    for with_cross in [false, true] {
        let mut serial = sys(faulty_mem_secded());
        let (batch, outs) = build_batch(&mut serial, with_cross);
        serial.execute_batch_serial(&batch).expect("serial batch");
        let serial_bits: Vec<Vec<bool>> = outs.iter().map(|v| serial.load(v)).collect();

        for workers in [1usize, 4] {
            let mut s = sys(faulty_mem_secded());
            let (batch, outs) = build_batch(&mut s, with_cross);
            let mut session = s.open_session_with_workers(workers);
            session.submit_batch(&batch).expect("submit batch");
            session.close().expect("close");
            let bits: Vec<Vec<bool>> = outs.iter().map(|v| s.load(v)).collect();
            assert_eq!(
                serial_bits, bits,
                "secded session must be bit-identical (workers={workers}, with_cross={with_cross})"
            );
            assert_stats_match(serial.stats(), s.stats());
        }
        let r = serial.stats().reliability;
        assert!(
            r.ecc_corrected_bits > 0,
            "the transient rate must exercise in-place correction: {r:?}"
        );
        assert!(r.is_consistent(), "{r:?}");
    }
}

/// SEC-DED metadata created inside a shard survives the dirty-state
/// sync: rows stored in a cloned channel shard (with stuck-at corruption
/// landing, write verification off) correct in the shard, and after
/// `take_dirty_state`/`apply_delta` the *parent* corrects a row it never
/// wrote — possible only if the check bytes shipped with the delta.
#[test]
fn secded_shard_correction_survives_apply_delta() {
    use pinatubo_mem::{MainMemory, ProtectionMode, RowAddr, RowData};
    let mut config = MemConfig::pcm_default();
    config.fault_model = FaultModel::with_seed(0x5EC0).with_stuck_at(5e-3, 5e-3);
    let mut reliability = ReliabilityConfig::protected_secded();
    reliability.verify_writes = false; // corruption must land
    config.reliability = reliability;
    assert_eq!(config.reliability.protection, ProtectionMode::SecDed);
    let mut parent = MainMemory::new(config);

    let addr = |r: u32| RowAddr::new(0, 0, 0, 0, r);
    let image = |r: u32| -> RowData {
        let mut rng = SimRng::seed_from_u64(0x5EC0 ^ u64::from(r));
        (0..64u64).map(|_| rng.gen_bit()).collect()
    };

    let mut shard = parent.clone_channel(0);
    let mut singles = Vec::new();
    for r in 0..192u32 {
        let want = image(r);
        shard.poke_row(addr(r), &want).expect("shard poke");
        if shard.peek_row(addr(r)).expect("stored").count_diff(&want) == 1 {
            singles.push(r);
        }
    }
    assert!(
        singles.len() >= 2,
        "seed must corrupt at least two rows by one bit, got {}",
        singles.len()
    );

    // First single-flip row: corrected inside the shard.
    let in_shard = singles[0];
    let got = shard.activate_read(addr(in_shard), 64).expect("shard read");
    assert_eq!(got, image(in_shard), "shard read corrects in place");
    assert!(shard.stats().reliability.ecc_corrected_bits >= 1);

    // Sync the shard's dirty state back and absorb its ledger.
    for delta in shard.take_dirty_state() {
        parent.apply_delta(delta);
    }
    assert_eq!(
        parent.channel_digest(0),
        shard.channel_digest(0),
        "parent and shard must agree bit-for-bit after the sync"
    );
    parent.merge_stats(shard.take_stats());

    // Second single-flip row, read for the first time in the parent: the
    // stored bits are corrupt and the parent never wrote the row, so the
    // correction below can only come from the shipped check bytes.
    let in_parent = singles[1];
    let corrected_before = parent.stats().reliability.ecc_corrected_bits;
    let got = parent
        .activate_read(addr(in_parent), 64)
        .expect("parent read");
    assert_eq!(
        got,
        image(in_parent),
        "parent corrects via shipped metadata"
    );
    assert_eq!(
        parent.stats().reliability.ecc_corrected_bits,
        corrected_before + 1
    );
    assert!(parent.stats().reliability.is_consistent());
}

#[test]
fn single_channel_geometry_degenerates_to_serial() {
    let mut mem = faulty_mem();
    mem.geometry.channels = 1;
    let build = |s: &mut PimSystem| -> (Vec<BatchRequest>, Vec<PimBitVec>) {
        let mut rng = SimRng::seed_from_u64(0x51);
        let len = 3000u64;
        let mut requests = Vec::new();
        let mut dsts = Vec::new();
        for g in 0..6usize {
            let group = s.alloc_group(3, len).expect("group");
            for v in &group[..2] {
                let bits: Vec<bool> = (0..len).map(|_| rng.gen_bit()).collect();
                s.store(v, &bits).expect("store");
            }
            let op = if g % 2 == 0 {
                BitwiseOp::Or
            } else {
                BitwiseOp::Xor
            };
            dsts.push(group[2].clone());
            requests.push(BatchRequest {
                op,
                operands: group[..2].to_vec(),
                dst: group[2].clone(),
            });
        }
        (requests, dsts)
    };

    let mut serial = sys(mem.clone());
    let (batch, outs) = build(&mut serial);
    serial.execute_batch_serial(&batch).expect("serial");
    let serial_bits: Vec<Vec<bool>> = outs.iter().map(|v| serial.load(v)).collect();

    let mut parallel = sys(mem);
    let (batch, outs) = build(&mut parallel);
    parallel
        .execute_batch_with_workers(&batch, 4)
        .expect("parallel");
    let parallel_bits: Vec<Vec<bool>> = outs.iter().map(|v| parallel.load(v)).collect();

    assert_eq!(serial_bits, parallel_bits);
    assert_stats_match(serial.stats(), parallel.stats());
}
