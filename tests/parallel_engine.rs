//! Cross-crate properties of the sharded parallel batch executor:
//! bit- and stats-parity with serial execution (including fault-injection
//! ledgers), determinism across worker counts, the merged-ledger
//! `detected == corrected + uncorrectable` invariant, and the degenerate
//! empty-batch / single-channel cases.

use pinatubo_core::{BitwiseOp, PinatuboConfig};
use pinatubo_mem::{MemConfig, MemStats, ReliabilityConfig};
use pinatubo_nvm::fault::FaultModel;
use pinatubo_nvm::rng::SimRng;
use pinatubo_nvm::yield_analysis::VariationModel;
use pinatubo_runtime::{BatchRequest, MappingPolicy, PimBitVec, PimSystem};

fn faulty_mem() -> MemConfig {
    let mut mem = MemConfig::pcm_default();
    mem.fault_model = FaultModel::with_seed(0xD15C)
        .with_drift(0.04)
        .with_variation(VariationModel::Gaussian)
        .with_transients(1e-5, 1e-5, 1e-5)
        .with_write_flips(1e-5);
    mem.reliability = ReliabilityConfig::protected();
    mem
}

fn sys(mem: MemConfig) -> PimSystem {
    PimSystem::new(mem, PinatuboConfig::default(), MappingPolicy::ChannelRotate)
}

/// A mixed batch: twelve single-channel requests rotated across the four
/// channels (all four ops, fan-ins 2–4), one dependent request reading
/// two earlier results, and optionally one channel-straddling request
/// (operands and destination on different channels) to exercise the
/// unified-memory barrier between sharded phases.
fn build_batch(s: &mut PimSystem, with_cross: bool) -> (Vec<BatchRequest>, Vec<PimBitVec>) {
    let mut rng = SimRng::seed_from_u64(0xBA7C4);
    let len = 6000u64;
    let ops = [
        BitwiseOp::Or,
        BitwiseOp::And,
        BitwiseOp::Xor,
        BitwiseOp::Not,
    ];
    let mut requests = Vec::new();
    let mut dsts = Vec::new();
    for g in 0..12usize {
        let op = ops[g % 4];
        let k = if op == BitwiseOp::Not { 1 } else { 2 + g % 3 };
        let group = s.alloc_group(k + 1, len).expect("group");
        for v in &group[..k] {
            let bits: Vec<bool> = (0..len).map(|_| rng.gen_bit()).collect();
            s.store(v, &bits).expect("store");
        }
        dsts.push(group[k].clone());
        requests.push(BatchRequest {
            op,
            operands: group[..k].to_vec(),
            dst: group[k].clone(),
        });
    }
    // A dependent request: reads the results of requests 0 and 1, so the
    // scheduler must keep it after both.
    let dep_dst = s.alloc_group(1, len).expect("dep dst").remove(0);
    requests.push(BatchRequest {
        op: BitwiseOp::Or,
        operands: vec![dsts[0].clone(), dsts[1].clone()],
        dst: dep_dst.clone(),
    });
    dsts.push(dep_dst);
    if with_cross {
        // Operands land on one channel, the destination on the next:
        // no home channel, so the executor must run it on the unified
        // memory between sharded phases.
        let a = s.alloc_group(2, len).expect("cross operands");
        let d = s.alloc_group(1, len).expect("cross dst").remove(0);
        assert_ne!(
            a[0].rows()[0].channel,
            d.rows()[0].channel,
            "rotation must put the group and its successor on different channels"
        );
        let bits: Vec<bool> = (0..len).map(|_| rng.gen_bit()).collect();
        s.store(&a[0], &bits).expect("store cross");
        requests.push(BatchRequest {
            op: BitwiseOp::Or,
            operands: a.to_vec(),
            dst: d.clone(),
        });
        dsts.push(d);
    }
    (requests, dsts)
}

fn assert_close(label: &str, a: f64, b: f64) {
    let scale = a.abs().max(b.abs()).max(1.0);
    assert!(
        (a - b).abs() <= 1e-6 * scale,
        "{label} diverged: {a} vs {b}"
    );
}

/// Statistics parity up to float summation order (shard merge adds
/// per-channel subtotals; integer counters must match exactly).
fn assert_stats_match(serial: &MemStats, parallel: &MemStats) {
    assert_eq!(serial.events, parallel.events, "event counters must match");
    assert_eq!(
        serial.reliability, parallel.reliability,
        "fault/recovery ledgers must match"
    );
    assert_close("time_ns", serial.time_ns, parallel.time_ns);
    assert_close(
        "shared_ns",
        serial.time.shared_ns(),
        parallel.time.shared_ns(),
    );
    assert_close("stall_ns", serial.time.stall_ns, parallel.time.stall_ns);
    assert_close(
        "energy_pj",
        serial.energy.total_pj(),
        parallel.energy.total_pj(),
    );
}

#[test]
fn parallel_batch_matches_serial_bits_stats_and_faults() {
    for with_cross in [false, true] {
        let mut serial = sys(faulty_mem());
        let (batch, outs) = build_batch(&mut serial, with_cross);
        serial.execute_batch_serial(&batch).expect("serial batch");
        let serial_bits: Vec<Vec<bool>> = outs.iter().map(|v| serial.load(v)).collect();

        let mut parallel = sys(faulty_mem());
        let (batch, outs) = build_batch(&mut parallel, with_cross);
        parallel.execute_batch(&batch).expect("parallel batch");
        let parallel_bits: Vec<Vec<bool>> = outs.iter().map(|v| parallel.load(v)).collect();

        assert_eq!(
            serial_bits, parallel_bits,
            "parallel execution must be bit-identical (with_cross={with_cross})"
        );
        assert_stats_match(serial.stats(), parallel.stats());
        assert_eq!(
            serial.trace(),
            parallel.trace(),
            "the abstract op trace must replay identically"
        );
        assert!(
            parallel.stats().reliability.detected_errors > 0,
            "the fault model must actually fire for this test to mean anything"
        );
    }
}

#[test]
fn fault_free_parallel_batch_matches_serial_exactly() {
    let mut serial = sys(MemConfig::pcm_default());
    let (batch, outs) = build_batch(&mut serial, true);
    let serial_report = serial.execute_batch_serial(&batch).expect("serial batch");
    let serial_bits: Vec<Vec<bool>> = outs.iter().map(|v| serial.load(v)).collect();

    let mut parallel = sys(MemConfig::pcm_default());
    let (batch, outs) = build_batch(&mut parallel, true);
    let parallel_report = parallel.execute_batch(&batch).expect("parallel batch");
    let parallel_bits: Vec<Vec<bool>> = outs.iter().map(|v| parallel.load(v)).collect();

    assert_eq!(serial_bits, parallel_bits);
    assert_stats_match(serial.stats(), parallel.stats());
    assert_eq!(serial_report.per_op.len(), parallel_report.per_op.len());
    for ((si, ss), (pi, ps)) in serial_report.per_op.iter().zip(&parallel_report.per_op) {
        assert_eq!(si, pi, "scheduled order must be identical");
        assert_eq!(ss.activations, ps.activations);
        assert_eq!(ss.segments, ps.segments);
        assert_eq!(ss.class, ps.class);
        assert_close("per-op time", ss.time_ns, ps.time_ns);
    }
    assert_close(
        "makespan",
        serial_report.makespan_ns,
        parallel_report.makespan_ns,
    );
}

#[test]
fn worker_count_does_not_change_results() {
    let mut reference: Option<(Vec<Vec<bool>>, MemStats)> = None;
    for workers in [1usize, 2, 4] {
        let mut s = sys(faulty_mem());
        let (batch, outs) = build_batch(&mut s, true);
        s.execute_batch_with_workers(&batch, workers)
            .expect("batch runs");
        let bits: Vec<Vec<bool>> = outs.iter().map(|v| s.load(v)).collect();
        let stats = *s.stats();
        match &reference {
            None => reference = Some((bits, stats)),
            Some((ref_bits, ref_stats)) => {
                assert_eq!(
                    ref_bits, &bits,
                    "{workers} workers must produce identical bits"
                );
                assert_eq!(
                    ref_stats.events, stats.events,
                    "{workers} workers must produce identical event counts"
                );
                assert_eq!(
                    ref_stats.reliability, stats.reliability,
                    "{workers} workers must consume identical fault streams"
                );
                assert_close("time_ns", ref_stats.time_ns, stats.time_ns);
            }
        }
    }
}

#[test]
fn merged_reliability_ledger_upholds_the_detection_invariant() {
    let mut s = sys(faulty_mem());
    let (batch, _) = build_batch(&mut s, true);
    s.execute_batch(&batch).expect("batch runs");
    let r = s.stats().reliability;
    assert!(r.detected_errors > 0, "faults must fire");
    assert_eq!(
        r.detected_errors,
        r.corrected_errors + r.uncorrectable_errors,
        "every detection must resolve after the shard merge: {r:?}"
    );
    assert!(r.is_consistent());
}

#[test]
fn empty_batch_is_a_no_op_on_the_parallel_path() {
    let mut s = sys(faulty_mem());
    for workers in [1usize, 4] {
        let report = s
            .execute_batch_with_workers(&[], workers)
            .expect("empty batch");
        assert_eq!(report.serial_time_ns, 0.0);
        assert_eq!(report.per_op.len(), 0);
    }
    assert_eq!(s.stats().time_ns, 0.0);
}

#[test]
fn single_channel_geometry_degenerates_to_serial() {
    let mut mem = faulty_mem();
    mem.geometry.channels = 1;
    let build = |s: &mut PimSystem| -> (Vec<BatchRequest>, Vec<PimBitVec>) {
        let mut rng = SimRng::seed_from_u64(0x51);
        let len = 3000u64;
        let mut requests = Vec::new();
        let mut dsts = Vec::new();
        for g in 0..6usize {
            let group = s.alloc_group(3, len).expect("group");
            for v in &group[..2] {
                let bits: Vec<bool> = (0..len).map(|_| rng.gen_bit()).collect();
                s.store(v, &bits).expect("store");
            }
            let op = if g % 2 == 0 {
                BitwiseOp::Or
            } else {
                BitwiseOp::Xor
            };
            dsts.push(group[2].clone());
            requests.push(BatchRequest {
                op,
                operands: group[..2].to_vec(),
                dst: group[2].clone(),
            });
        }
        (requests, dsts)
    };

    let mut serial = sys(mem.clone());
    let (batch, outs) = build(&mut serial);
    serial.execute_batch_serial(&batch).expect("serial");
    let serial_bits: Vec<Vec<bool>> = outs.iter().map(|v| serial.load(v)).collect();

    let mut parallel = sys(mem);
    let (batch, outs) = build(&mut parallel);
    parallel
        .execute_batch_with_workers(&batch, 4)
        .expect("parallel");
    let parallel_bits: Vec<Vec<bool>> = outs.iter().map(|v| parallel.load(v)).collect();

    assert_eq!(serial_bits, parallel_bits);
    assert_stats_match(serial.stats(), parallel.stats());
}
