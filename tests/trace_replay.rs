//! Integration: application traces flow into every executor, and the
//! paper's qualitative orderings hold on real (not synthetic) op mixes.

use pinatubo_apps::database::run_database_workload;
use pinatubo_apps::graph::{Graph, GraphProfile};
use pinatubo_apps::{bfs, VectorWorkload};
use pinatubo_baselines::{
    AcPimExecutor, BitwiseExecutor, PinatuboExecutor, SdramExecutor, SimdCpu,
};
use pinatubo_core::OpClass;
use pinatubo_runtime::{MappingPolicy, PimSystem};

/// A real BFS trace, priced on every executor: every PIM solution beats
/// the streaming CPU, and AC-PIM never beats Pinatubo.
#[test]
fn graph_trace_ordering_holds() {
    // Big enough that the working bitmaps are row-scale: tiny bitmaps sit
    // in Fig. 9's below-bus region where the CPU legitimately competes.
    let graph = Graph::synthetic(&GraphProfile::dblp().scaled(32768));
    let mut sys = PimSystem::pcm_default(MappingPolicy::SubarrayFirst);
    let result = bfs::frontier_bfs(&graph, &mut sys).expect("bfs runs");
    let trace = &result.run.trace;
    assert!(!trace.is_empty(), "dense BFS must produce bulk ops");

    let mut cpu = SimdCpu::with_pcm();
    cpu.set_workload_footprint(Some(64 << 20));
    let simd = cpu.execute_trace(trace);
    let pin128 = PinatuboExecutor::multi_row().execute_trace(trace);
    let pin2 = PinatuboExecutor::two_row().execute_trace(trace);
    let acpim = AcPimExecutor::new().execute_trace(trace);

    assert!(
        pin128.time_ns < simd.time_ns,
        "Pinatubo beats SIMD on BFS bitmaps"
    );
    assert!(pin128.time_ns <= pin2.time_ns);
    assert!(
        acpim.time_ns > pin128.time_ns,
        "AC-PIM never beats Pinatubo"
    );
    assert!(pin128.energy_pj < simd.energy_pj);
}

/// A real database trace keeps its intra-subarray locality thanks to the
/// group allocator, and multi-row ORs dominate its operand count.
#[test]
fn database_trace_is_intra_subarray_multirow() {
    let mut sys = PimSystem::pcm_default(MappingPolicy::SubarrayFirst);
    let run = run_database_workload(15, &mut sys).expect("queries run");
    assert!(!run.trace.is_empty());
    let intra = run
        .trace
        .iter()
        .filter(|o| o.locality == OpClass::IntraSubarray)
        .count();
    assert_eq!(
        intra,
        run.trace.len(),
        "co-allocated index + scratch must stay intra-subarray"
    );
    assert!(run.trace.iter().any(|o| o.operand_count >= 4));
}

/// The Vector workload's replayed cost is consistent between the runtime
/// path (engine via PimSystem) and the trace path (engine via the
/// executor): same command model, same totals.
#[test]
fn runtime_and_replay_agree_on_cost() {
    // Run 32 ops of 4-operand OR through the runtime.
    let mut sys = PimSystem::pcm_default(MappingPolicy::SubarrayFirst);
    let mut total_runtime_ns = 0.0;
    for _ in 0..32 {
        let group = sys.alloc_group(5, 1 << 14).expect("alloc");
        let refs: Vec<_> = group[..4].iter().collect();
        let summary = sys.or_many(&refs, &group[4]).expect("or");
        total_runtime_ns += summary.time_ns;
    }
    let trace = sys.take_trace();

    // Replay the same trace through the executor.
    let replay = PinatuboExecutor::multi_row().execute_trace(&trace);
    let drift = (replay.time_ns - total_runtime_ns).abs() / total_runtime_ns;
    assert!(
        drift < 0.02,
        "replay time should match the runtime path within 2% (drift {:.3})",
        drift
    );
}

/// S-DRAM's XOR fallback means workloads with XOR lean on the CPU — a
/// trace with only AND/OR stays fully in DRAM and is far cheaper.
#[test]
fn sdram_xor_fallback_costs() {
    use pinatubo_core::{BitwiseOp, BulkOp};
    let and_or: Vec<BulkOp> = (0..16)
        .map(|_| BulkOp::intra(BitwiseOp::Or, 2, 1 << 19))
        .collect();
    let xor: Vec<BulkOp> = (0..16)
        .map(|_| BulkOp::intra(BitwiseOp::Xor, 2, 1 << 19))
        .collect();
    let mut sdram = SdramExecutor::new();
    sdram.set_workload_footprint(Some(4 << 30));
    let in_dram = sdram.execute_trace(&and_or);
    let via_cpu = sdram.execute_trace(&xor);
    assert!(via_cpu.time_ns > 5.0 * in_dram.time_ns);
}

/// Vector workload traces have exactly the shape Table 1 promises, and the
/// sequential/random pair splits cleanly by locality.
#[test]
fn vector_workloads_match_table1_shape() {
    for name in ["19-16-1s", "14-16-7r"] {
        let w = VectorWorkload::parse(name).expect("parses");
        let run = w.run();
        assert_eq!(run.trace.len() as u64, w.op_count(), "{name}");
        assert!(run.trace.iter().all(|o| o.operand_count == w.rows_per_op()));
    }
}
