//! Many-sessions-scale properties of the serving layer: ≥64 concurrent
//! tenants over a multi-channel memory with bit/stats/ledger parity
//! against serial execution of the exact same streams, determinism
//! across 1/2/4 workers, quota-exceeded and queue-full rejection paths,
//! and wear-aware placement steering allocations off hot channels.

use pinatubo_core::{BitwiseOp, PinatuboConfig};
use pinatubo_mem::{MemConfig, MemStats, ReliabilityConfig};
use pinatubo_nvm::fault::FaultModel;
use pinatubo_nvm::yield_analysis::VariationModel;
use pinatubo_runtime::scheduler::BatchRequest;
use pinatubo_runtime::{MappingPolicy, PimBitVec, PimSystem};
use pinatubo_serve::workload::{self, TenantSpec};
use pinatubo_serve::{PimServer, ServeConfig, ServeError, ServeReport, TenantConfig, TenantKind};
use std::collections::BTreeMap;

fn faulty_mem() -> MemConfig {
    let mut mem = MemConfig::pcm_default();
    // No drift: tenant columns are written once and then read for the
    // whole served run, so accumulated drift would exceed SEC-DED's
    // single-bit budget. Transients and write flips still exercise the
    // fault/recovery ledger parity this suite pins.
    mem.fault_model = FaultModel::with_seed(0x5E17)
        .with_variation(VariationModel::Gaussian)
        .with_transients(1e-5, 1e-5, 1e-5)
        .with_write_flips(1e-5);
    // SEC-DED rather than parity-detect: a served run issues orders of
    // magnitude more row reads than the single-app suites, and the
    // parity ladder's bounded retries eventually lose that lottery.
    mem.reliability = ReliabilityConfig::protected_secded();
    mem
}

fn sys(mem: MemConfig) -> PimSystem {
    PimSystem::new(mem, PinatuboConfig::default(), MappingPolicy::ChannelRotate)
}

fn assert_close(label: &str, a: f64, b: f64) {
    let scale = a.abs().max(b.abs()).max(1.0);
    assert!(
        (a - b).abs() <= 1e-6 * scale,
        "{label} diverged: {a} vs {b}"
    );
}

fn assert_stats_match(serial: &MemStats, other: &MemStats) {
    assert_eq!(serial.events, other.events, "event counters must match");
    assert_eq!(
        serial.reliability, other.reliability,
        "fault/recovery ledgers must match"
    );
    assert_close("time_ns", serial.time_ns, other.time_ns);
    assert_close(
        "energy_pj",
        serial.energy.total_pj(),
        other.energy.total_pj(),
    );
}

/// 64 tenants: a rotating mix of the three stream shapes.
fn tenant_specs(count: usize) -> Vec<TenantSpec> {
    (0..count)
        .map(|i| {
            let kind = match i % 3 {
                0 => TenantKind::Filter,
                1 => TenantKind::BfsFrontier,
                _ => TenantKind::IntKernel,
            };
            TenantSpec {
                name: format!("{}-{i}", kind.label()),
                kind,
                weight: 1 + (i % 4) as u64,
                row_quota: 96,
                vec_bits: 4096,
                batches: 3,
            }
        })
        .collect()
}

/// Runs the full mixed-tenant workload through the serving layer with
/// `workers` pool threads and returns everything parity needs.
fn serve_run(
    workers: usize,
) -> (
    PimServer,
    ServeReport,
    Vec<usize>, // dispatch order, as tenant indices
    Vec<u64>,   // per-tenant stream length (intvec streams are chunked)
) {
    let specs = tenant_specs(64);
    let mut server = PimServer::new(
        sys(faulty_mem()),
        ServeConfig {
            workers,
            channel_queue_capacity: 8,
            quantum: 2,
            sync_every_rounds: 1,
        },
    );
    let mut streams = workload::build_streams(&mut server, &specs, 0xD15C).expect("build streams");
    let expected: Vec<u64> = streams.iter().map(|s| s.batches.len() as u64).collect();
    let mut session = server.open();
    let mut next = vec![0usize; streams.len()];
    loop {
        let mut all_done = true;
        for (i, stream) in streams.iter_mut().enumerate() {
            if next[i] >= stream.batches.len() {
                continue;
            }
            all_done = false;
            // Head-of-line submission with retry: a QueueFull rejection
            // leaves the batch at the head for the next round.
            match session.submit(stream.tenant, stream.batches[next[i]].clone()) {
                Ok(()) => next[i] += 1,
                Err(ServeError::QueueFull { .. }) => {}
                Err(e) => panic!("unexpected submit error: {e}"),
            }
        }
        if all_done {
            break;
        }
        session.advance().expect("advance");
    }
    let report = session.finish().expect("finish");
    let order: Vec<usize> = server.dispatch_log().iter().map(|d| d.tenant).collect();
    (server, report, order, expected)
}

/// Every destination vector any dispatched batch wrote, deduplicated.
fn written_vecs(server: &PimServer) -> BTreeMap<u64, PimBitVec> {
    server
        .dispatch_log()
        .iter()
        .flat_map(|d| d.requests.iter().map(|r| r.dst.clone()))
        .map(|v| (v.id(), v))
        .collect()
}

#[test]
fn sixty_four_tenants_match_serial_and_are_deterministic_across_workers() {
    let (server1, report1, order1, expected) = serve_run(1);

    // Serial reference: fresh system, same config; replay the recorded
    // stores and the dispatch log one batch at a time.
    let mut reference = sys(faulty_mem());
    workload::replay_serial(&mut reference, server1.store_log(), server1.dispatch_log())
        .expect("serial replay");
    let served_stats = *server1.system().stats();
    // assert_stats_match compares events, reliability ledger, time and
    // energy; row_pages_copied is a host-side session metric and is
    // expected to differ from serial execution (which never shares pages).
    assert_stats_match(reference.stats(), &served_stats);
    for (id, vec) in written_vecs(&server1) {
        assert_eq!(
            server1.system().load(&vec),
            reference.load(&vec),
            "bits diverged for vec {id}"
        );
    }

    // Starvation, queue bounds and backpressure on the same run.
    assert!(
        report1.starved_tenants().is_empty(),
        "no tenant may starve: {:?}",
        report1.starved_tenants()
    );
    for (c, &hw) in report1.channel_queue_high_water.iter().enumerate() {
        assert!(hw > 0, "channel {c} never saw work");
        assert!(
            hw <= report1.queue_capacity,
            "channel {c} queue exceeded its bound: {hw} > {}",
            report1.queue_capacity
        );
    }
    let rejections: u64 = report1.tenants.iter().map(|t| t.admission_rejections).sum();
    assert!(
        rejections > 0,
        "the tight queue capacity must exercise backpressure"
    );
    for (t, &want) in report1.tenants.iter().zip(&expected) {
        assert_eq!(t.batches_submitted, want, "{} lost batches", t.name);
        assert_eq!(t.batches_completed, want, "{} incomplete", t.name);
        assert!(t.ops_completed == t.ops_submitted, "{} ops leaked", t.name);
    }

    // Determinism: 2- and 4-worker runs dispatch identically, tally the
    // same ledgers and end with the same bits.
    for workers in [2usize, 4] {
        let (server_w, report_w, order_w, _) = serve_run(workers);
        assert_eq!(
            order1, order_w,
            "dispatch order changed at {workers} workers"
        );
        assert_stats_match(&served_stats, server_w.system().stats());
        for (id, vec) in written_vecs(&server_w) {
            assert_eq!(
                server1.system().load(&vec),
                server_w.system().load(&vec),
                "bits diverged for vec {id} at {workers} workers"
            );
        }
        for (a, b) in report1.tenants.iter().zip(report_w.tenants.iter()) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.batches_completed, b.batches_completed, "{}", a.name);
            assert_eq!(a.ops_completed, b.ops_completed, "{}", a.name);
            assert_eq!(
                a.admission_rejections, b.admission_rejections,
                "{} rejections must not depend on workers",
                a.name
            );
            assert_eq!(a.max_wait_rounds, b.max_wait_rounds, "{}", a.name);
            assert_eq!(
                a.queue_depth_high_water, b.queue_depth_high_water,
                "{}",
                a.name
            );
        }
        assert_eq!(report1.rounds, report_w.rounds);
        assert_eq!(
            report1.channel_queue_high_water,
            report_w.channel_queue_high_water
        );
    }
}

#[test]
fn quota_exceeded_rejects_and_releasing_rows_recovers() {
    let mut server = PimServer::new(sys(MemConfig::pcm_default()), ServeConfig::default());
    let row_bits = MemConfig::pcm_default().geometry.logical_row_bits();
    let t = server.register(TenantConfig {
        name: "small".into(),
        weight: 1,
        row_quota: 4,
    });
    let held = server.alloc_group(t, 4, row_bits).expect("within quota");
    let err = server.alloc_group(t, 1, row_bits).expect_err("over quota");
    match err {
        ServeError::QuotaExceeded {
            requested_rows,
            used_rows,
            quota_rows,
            ..
        } => {
            assert_eq!(requested_rows, 1);
            assert_eq!(used_rows, 4);
            assert_eq!(quota_rows, 4);
        }
        other => panic!("wrong error: {other}"),
    }
    assert_eq!(server.report().tenants[0].quota_rejections, 1);
    server.release(t, &held).expect("release");
    assert_eq!(server.report().tenants[0].rows_used, 0);
    server
        .alloc_group(t, 2, row_bits)
        .expect("freed quota is reusable");
}

#[test]
fn queue_full_pushes_back_until_the_queue_drains() {
    let mut server = PimServer::new(
        sys(MemConfig::pcm_default()),
        ServeConfig {
            workers: 1,
            channel_queue_capacity: 2,
            quantum: 8,
            sync_every_rounds: 1,
        },
    );
    let t = server.register(TenantConfig {
        name: "bursty".into(),
        weight: 1,
        row_quota: 16,
    });
    // One co-located group: every request charges the same channel.
    let g = server.alloc_group(t, 4, 4096).expect("group");
    server.store(&g[0], &vec![true; 4096]).expect("store");
    let req = |dst: &PimBitVec| BatchRequest {
        op: BitwiseOp::Or,
        operands: vec![g[0].clone(), g[1].clone()],
        dst: dst.clone(),
    };
    let mut session = server.open();
    // A batch bigger than the whole queue can never be admitted.
    let err = session
        .submit(t, vec![req(&g[2]), req(&g[3]), req(&g[2])])
        .expect_err("over capacity");
    assert!(matches!(err, ServeError::QueueFull { depth: 0, .. }));
    // Fill the queue, then hit the bound.
    session
        .submit(t, vec![req(&g[2]), req(&g[3])])
        .expect("fits");
    let err = session.submit(t, vec![req(&g[2])]).expect_err("full");
    assert!(matches!(
        err,
        ServeError::QueueFull {
            depth: 2,
            capacity: 2,
            ..
        }
    ));
    // One round drains the queue; the retry is admitted.
    session.advance().expect("advance");
    session.submit(t, vec![req(&g[2])]).expect("drained");
    let report = session.finish().expect("finish");
    assert_eq!(report.tenants[0].admission_rejections, 2);
    assert_eq!(report.tenants[0].batches_completed, 2);
    assert_eq!(report.channel_queue_high_water.iter().max(), Some(&2));
}

#[test]
fn wear_aware_placement_avoids_the_hot_channel() {
    let mut system = sys(MemConfig::pcm_default());
    // Burn wear into channel 0: ChannelRotate places the first group
    // there, and every OR writes its destination row.
    let hot = system.alloc_group(3, 4096).expect("hot group");
    let hot_channel = hot[0].rows()[0].channel;
    assert_eq!(hot_channel, 0, "first ChannelRotate group starts on 0");
    system.store(&hot[0], &vec![true; 4096]).expect("store");
    for _ in 0..8 {
        system
            .bitwise(BitwiseOp::Or, &[&hot[0], &hot[1]], &hot[2])
            .expect("or");
    }
    assert!(system.channel_wear()[0] > 0);

    let mut server = PimServer::new(system, ServeConfig::default());
    let t = server.register(TenantConfig {
        name: "fresh".into(),
        weight: 1,
        row_quota: 64,
    });
    let placed = server.alloc_group(t, 4, 4096).expect("placed");
    for v in &placed {
        for r in v.rows() {
            assert_ne!(
                r.channel, hot_channel,
                "wear-aware placement must avoid the worn channel"
            );
        }
    }
    // Subsequent allocations balance across the remaining cold channels
    // instead of piling onto one.
    let more: Vec<u32> = (0..3)
        .map(|_| server.alloc_group(t, 1, 4096).expect("more")[0].rows()[0].channel)
        .collect();
    assert!(
        more.iter().all(|&c| c != hot_channel),
        "cold channels must absorb new tenants: {more:?}"
    );
    assert!(
        more.windows(2).any(|w| w[0] != w[1]) || more.len() < 2,
        "allocation pressure must spread over cold channels: {more:?}"
    );
}
