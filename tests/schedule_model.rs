//! Model-level properties of the command-interleaved batch scheduler:
//! the interleaved makespan is sandwiched between hard lower bounds and
//! the request-granularity (fused) makespan, the bounded-lookahead plan
//! is never worse than the greedy incumbent and always a permutation,
//! planning is deterministic, and pooled-session execution of the same
//! scheduled shapes stays bit-, stats- and ledger-identical to serial.

use pinatubo_core::{BitwiseOp, PinatuboConfig};
use pinatubo_mem::{MemConfig, MemStats, ReliabilityConfig};
use pinatubo_nvm::fault::FaultModel;
use pinatubo_nvm::rng::SimRng;
use pinatubo_runtime::{BatchRequest, MappingPolicy, PimBitVec, PimSystem};

fn sys() -> PimSystem {
    let mut s = PimSystem::new(
        MemConfig::pcm_default(),
        PinatuboConfig::default(),
        MappingPolicy::ChannelRotate,
    );
    s.set_page_aligned_groups(true);
    s
}

fn faulty_sys() -> PimSystem {
    let mut mem = MemConfig::pcm_default();
    mem.fault_model = FaultModel::with_seed(0x5EED)
        .with_transients(1e-5, 1e-5, 1e-5)
        .with_write_flips(1e-5);
    mem.reliability = ReliabilityConfig::protected();
    let mut s = PimSystem::new(mem, PinatuboConfig::default(), MappingPolicy::ChannelRotate);
    s.set_page_aligned_groups(true);
    s
}

fn store_random(s: &mut PimSystem, v: &PimBitVec, bits: u64, rng: &mut SimRng) {
    let pattern: Vec<bool> = (0..bits).map(|_| rng.gen_bit()).collect();
    s.store(v, &pattern).expect("store");
}

/// Channel-rotated mixed-op batch: fan-ins 2–5 over all four ops,
/// including single-operand NOT requests.
fn build_rotated(s: &mut PimSystem, count: usize, bits: u64, seed: u64) -> Vec<BatchRequest> {
    let mut rng = SimRng::seed_from_u64(seed);
    let ops = [
        BitwiseOp::Or,
        BitwiseOp::And,
        BitwiseOp::Xor,
        BitwiseOp::Not,
    ];
    let mut requests = Vec::with_capacity(count);
    for g in 0..count {
        let op = ops[g % ops.len()];
        let k = if op == BitwiseOp::Not { 1 } else { 2 + g % 4 };
        let group = s.alloc_group(k + 1, bits).expect("group");
        for v in &group[..k] {
            store_random(s, v, bits, &mut rng);
        }
        requests.push(BatchRequest {
            op,
            operands: group[..k].to_vec(),
            dst: group[k].clone(),
        });
    }
    requests
}

/// Lane-stacked batch: several same-subarray request chains share one
/// bank lane per channel, so the in-order issue cursor and lane
/// reservations, not the bus, bound the schedule.
fn build_stacked(s: &mut PimSystem, bits: u64, seed: u64) -> Vec<BatchRequest> {
    let mut rng = SimRng::seed_from_u64(seed);
    let mut requests = Vec::new();
    for _ in 0..4 {
        // One 16-vector group per channel; four stacked 3-operand
        // requests inside it.
        let group = s.alloc_group(16, bits).expect("group");
        for chunk in group.chunks(4) {
            for v in &chunk[..3] {
                store_random(s, v, bits, &mut rng);
            }
            requests.push(BatchRequest {
                op: BitwiseOp::Xor,
                operands: chunk[..3].to_vec(),
                dst: chunk[3].clone(),
            });
        }
    }
    requests
}

/// A batch with host-fallback requests: operands spread over several
/// channels force bus round-trips, and the destinations share a channel
/// with long intra-subarray chains (the bench's adversarial mechanism,
/// smaller).
fn build_fallback_mix(s: &mut PimSystem, bits: u64, seed: u64) -> Vec<BatchRequest> {
    let mut rng = SimRng::seed_from_u64(seed);
    let mut requests = Vec::new();
    let home = s.alloc_group(3, bits).expect("home");
    let r1 = s.alloc_group(2, bits).expect("remote 1");
    let r2 = s.alloc_group(2, bits).expect("remote 2");
    let chain = s.alloc_group(7, bits).expect("chain");
    let mut operands = home[..2].to_vec();
    operands.extend_from_slice(&r1);
    operands.extend_from_slice(&r2);
    for v in &operands {
        store_random(s, v, bits, &mut rng);
    }
    requests.push(BatchRequest {
        op: BitwiseOp::Or,
        operands,
        dst: home[2].clone(),
    });
    for v in &chain[..6] {
        store_random(s, v, bits, &mut rng);
    }
    requests.push(BatchRequest {
        op: BitwiseOp::Xor,
        operands: chain[..6].to_vec(),
        dst: chain[6].clone(),
    });
    requests
}

type Builder = fn(&mut PimSystem) -> Vec<BatchRequest>;

fn shapes() -> Vec<(&'static str, Builder)> {
    vec![
        (
            "rotated",
            (|s| build_rotated(s, 16, 6000, 0xA11)) as Builder,
        ),
        ("stacked", (|s| build_stacked(s, 4096, 0xB22)) as Builder),
        (
            "fallback_mix",
            (|s| build_fallback_mix(s, 4096, 0xC33)) as Builder,
        ),
    ]
}

/// `makespan_ns` is sandwiched: at least every hard lower bound (longest
/// single request, per-channel serialized bus time), at most the
/// request-granularity model, at most the serial stream.
#[test]
fn interleaved_makespan_is_sandwiched() {
    for (name, build) in shapes() {
        let mut s = sys();
        let batch = build(&mut s);
        let report = s.execute_batch(&batch).expect("batch");
        let mk = &report.makespan;

        assert!(
            mk.makespan_ns <= mk.request_granularity_ns + 1e-6,
            "{name}: interleaved {} must not exceed request-granularity {}",
            mk.makespan_ns,
            mk.request_granularity_ns
        );
        assert!(
            (mk.interleave_recovered_ns - (mk.request_granularity_ns - mk.makespan_ns)).abs()
                < 1e-6,
            "{name}: recovered time must equal the model gap"
        );
        assert!(
            mk.makespan_ns <= report.serial_time_ns + 1e-6,
            "{name}: overlap can never lose to the serial stream"
        );

        // Lower bound 1: no request completes faster than its own
        // charged stream (minus the order-dependent MRS prefix).
        let longest = report
            .per_op
            .iter()
            .map(|(_, op)| op.time_ns - op.time.mrs_ns)
            .fold(0.0f64, f64::max);
        assert!(
            mk.makespan_ns >= longest - 1e-6,
            "{name}: makespan {} below the longest request {}",
            mk.makespan_ns,
            longest
        );

        // Lower bound 2: shared (bus + MRS) time serializes per channel
        // in both models.
        let channels = MemConfig::pcm_default().geometry.channels as usize;
        let mut shared_per_channel = vec![0.0f64; channels];
        for (i, op) in &report.per_op {
            let ch = batch[*i].dst.rows()[0].channel as usize;
            shared_per_channel[ch] += op.shared_ns;
        }
        let bus_bound = shared_per_channel.iter().fold(0.0f64, |a, &b| a.max(b));
        assert!(
            mk.makespan_ns >= bus_bound - 1e-6,
            "{name}: makespan {} below the per-channel bus bound {}",
            mk.makespan_ns,
            bus_bound
        );
        assert!(
            mk.rrd_faw_stall_ns >= 0.0 && mk.bus_conflict_stall_ns >= 0.0,
            "{name}: stall accounts must be non-negative"
        );
    }
}

/// The bounded-lookahead plan is a permutation, is deterministic, and
/// never scores worse than the greedy incumbent under the shared
/// `planned_makespan_ns` metric.
#[test]
fn lookahead_plan_is_a_permutation_and_never_worse_than_greedy() {
    for (name, build) in shapes() {
        let mut s = sys();
        let batch = build(&mut s);
        let greedy = s.plan_batch_greedy(&batch);
        let planned = s.plan_batch(&batch);

        let mut sorted = planned.clone();
        sorted.sort_unstable();
        assert_eq!(
            sorted,
            (0..batch.len()).collect::<Vec<_>>(),
            "{name}: the plan must be a permutation of the batch"
        );
        assert_eq!(
            planned,
            s.plan_batch(&batch),
            "{name}: planning must be deterministic"
        );
        let greedy_ns = s.planned_makespan_ns(&batch, &greedy);
        let planned_ns = s.planned_makespan_ns(&batch, &planned);
        assert!(
            planned_ns <= greedy_ns + 1e-9,
            "{name}: lookahead ({planned_ns}) must never lose to greedy ({greedy_ns})"
        );
    }
}

fn assert_close(label: &str, a: f64, b: f64) {
    let scale = a.abs().max(b.abs()).max(1.0);
    assert!(
        (a - b).abs() <= 1e-6 * scale,
        "{label} diverged: {a} vs {b}"
    );
}

fn assert_stats_match(name: &str, serial: &MemStats, pooled: &MemStats) {
    assert_eq!(serial.events, pooled.events, "{name}: event counters");
    assert_eq!(
        serial.reliability, pooled.reliability,
        "{name}: fault/recovery ledgers"
    );
    assert_close("time_ns", serial.time_ns, pooled.time_ns);
    assert_close(
        "energy_pj",
        serial.energy.total_pj(),
        pooled.energy.total_pj(),
    );
}

/// The scheduler's shapes, replayed through the persistent worker-pool
/// session at 1/2/4 workers, are pinned to serial execution: result
/// bits, merged statistics and the fault ledger must all match.
#[test]
fn session_execution_of_scheduled_shapes_matches_serial() {
    for (name, build) in shapes() {
        let mut serial = faulty_sys();
        let batch = build(&mut serial);
        serial.execute_batch_serial(&batch).expect("serial");
        let serial_bits: Vec<Vec<bool>> = batch.iter().map(|r| serial.load(&r.dst)).collect();

        for workers in [1usize, 2, 4] {
            let mut pooled = faulty_sys();
            let batch = build(&mut pooled);
            let mut session = pooled.open_session_with_workers(workers);
            session.submit_batch(&batch).expect("submit");
            session.close().expect("close");
            let bits: Vec<Vec<bool>> = batch.iter().map(|r| pooled.load(&r.dst)).collect();
            assert_eq!(
                serial_bits, bits,
                "{name}: session must be bit-identical (workers={workers})"
            );
            assert_stats_match(name, serial.stats(), pooled.stats());
        }
    }
}
