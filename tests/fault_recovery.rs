//! Cross-crate reliability properties: fault-free bit-identity against
//! pinned pre-fault-engine baselines, determinism of the injected fault
//! stream, and the no-silent-corruption guarantee under the full
//! detect/retry/split/fallback recovery ladder.

use pinatubo_apps::bfs::{bfs_levels_reference, bitmap_bfs};
use pinatubo_apps::{BitmapIndex, Graph, Query};
use pinatubo_core::{BitwiseOp, PinatuboConfig};
use pinatubo_mem::{MainMemory, MemConfig, ReliabilityConfig, ReliabilityStats, RowAddr, RowData};
use pinatubo_nvm::fault::FaultModel;
use pinatubo_nvm::rng::{splitmix64, SimRng};
use pinatubo_nvm::sense_amp::SenseMode;
use pinatubo_nvm::yield_analysis::VariationModel;
use pinatubo_runtime::{MappingPolicy, PimSystem};

fn digest(bits: &[bool]) -> u64 {
    let mut h = 0x5EED_0000_0000_0001u64;
    for chunk in bits.chunks(64) {
        let mut word = 0u64;
        for (i, &b) in chunk.iter().enumerate() {
            word |= u64::from(b) << i;
        }
        h ^= word;
        h = splitmix64(&mut h);
    }
    h
}

fn sys_with(fault: FaultModel, reliability: ReliabilityConfig) -> PimSystem {
    let mut mem = MemConfig::pcm_default();
    mem.fault_model = fault;
    mem.reliability = reliability;
    PimSystem::new(mem, PinatuboConfig::default(), MappingPolicy::SubarrayFirst)
}

/// Scenario A of the pinned baseline: four random 5000-bit vectors
/// through OR-4 / AND / XOR / NOT. Returns the combined result digest.
fn run_scenario_a(sys: &mut PimSystem) -> u64 {
    let mut rng = SimRng::seed_from_u64(0xF00D);
    let len = 5000u64;
    let vs: Vec<_> = (0..4).map(|_| sys.alloc(len).expect("alloc")).collect();
    let pats: Vec<Vec<bool>> = (0..4)
        .map(|_| (0..len).map(|_| rng.gen_bit()).collect())
        .collect();
    for (v, p) in vs.iter().zip(&pats) {
        sys.store(v, p).expect("store");
    }
    let d1 = sys.alloc(len).expect("alloc");
    let d2 = sys.alloc(len).expect("alloc");
    let d3 = sys.alloc(len).expect("alloc");
    let d4 = sys.alloc(len).expect("alloc");
    sys.or_many(&[&vs[0], &vs[1], &vs[2], &vs[3]], &d1)
        .expect("or4");
    sys.bitwise(BitwiseOp::And, &[&vs[0], &vs[1]], &d2)
        .expect("and");
    sys.bitwise(BitwiseOp::Xor, &[&vs[2], &vs[3]], &d3)
        .expect("xor");
    sys.not(&vs[0], &d4).expect("not");
    digest(&sys.load(&d1))
        ^ digest(&sys.load(&d2))
        ^ digest(&sys.load(&d3))
        ^ digest(&sys.load(&d4))
}

fn small_graph() -> Graph {
    Graph::from_edges(
        64,
        &(0..63).map(|i| (i, (i * 7 + 3) % 64)).collect::<Vec<_>>(),
    )
}

/// With `FaultModel::none()` the whole stack must be bit-identical to the
/// pre-fault-engine behavior — pinned digests, exact-float times and
/// energies captured on the seed tree before this subsystem existed.
#[test]
fn fault_free_stack_matches_pinned_baselines() {
    // Scenario A: raw runtime ops.
    let mut sys = PimSystem::pcm_default(MappingPolicy::SubarrayFirst);
    let dig = run_scenario_a(&mut sys);
    assert_eq!(dig, 0xc24c25b6407cd20e);
    assert_eq!(sys.stats().time_ns, 844.4000000000001);
    assert_eq!(sys.stats().energy.total_pj(), 81543.11999999998);
    assert_eq!(sys.stats().events.activates, 3);
    assert_eq!(sys.stats().events.multi_activates, 2);
    assert!(sys.stats().reliability.is_zero());

    // Scenario B: bitmap BFS.
    let mut sys = PimSystem::pcm_default(MappingPolicy::SubarrayFirst);
    let r = bitmap_bfs(&small_graph(), &mut sys).expect("bfs runs");
    let mut h = 0xB0F5u64;
    for l in &r.levels {
        h ^= u64::from(*l).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        h = splitmix64(&mut h);
    }
    assert_eq!(h, 0x7570762cf84ab618);
    assert_eq!(sys.stats().time_ns, 29357.799999999927);

    // Scenario C: bitmap-index queries.
    let mut sys = PimSystem::pcm_default(MappingPolicy::SubarrayFirst);
    let spec = pinatubo_apps::database::TableSpec::star_like();
    let idx = BitmapIndex::build(spec, &mut sys).expect("build");
    let mut qrng = SimRng::seed_from_u64(0xDB);
    let counts: Vec<u64> = (0..3)
        .map(|_| {
            let q = Query::random(idx.spec(), &mut qrng);
            idx.run_query(&q, &mut sys).expect("query").count
        })
        .collect();
    assert_eq!(counts, vec![7185, 1056, 804]);
    assert_eq!(sys.stats().time_ns, 20031.499999999978);
}

/// `FaultModel::none()` is an identity even with every protection knob
/// switched on: the fault hooks must not fire at all, so results, timing,
/// energy and command counts are exactly those of the default config.
#[test]
fn none_model_with_full_protection_is_identity() {
    let mut default_sys = PimSystem::pcm_default(MappingPolicy::SubarrayFirst);
    let default_dig = run_scenario_a(&mut default_sys);

    let mut protected_sys = sys_with(FaultModel::none(), ReliabilityConfig::protected());
    let protected_dig = run_scenario_a(&mut protected_sys);

    assert_eq!(default_dig, protected_dig);
    assert_eq!(default_sys.stats(), protected_sys.stats());
    assert!(protected_sys.stats().reliability.is_zero());
}

/// The injected fault stream is a pure function of the model seed: two
/// runs of the same workload produce identical results *and* identical
/// reliability ledgers, bit for bit.
#[test]
fn same_seed_gives_identical_fault_streams() {
    // Rates sized to the 5000-bit rows: a few flips over the whole run,
    // well within what one retry round recovers.
    let model = FaultModel::with_seed(0xD1CE)
        .with_variation(VariationModel::Gaussian)
        .with_transients(1e-5, 1e-5, 1e-5)
        .with_write_flips(1e-5);
    let run = || {
        let mut sys = sys_with(model, ReliabilityConfig::protected());
        let dig = run_scenario_a(&mut sys);
        (dig, *sys.stats())
    };
    let (dig_a, stats_a) = run();
    let (dig_b, stats_b) = run();
    assert_eq!(dig_a, dig_b);
    assert_eq!(stats_a, stats_b);
    assert_eq!(stats_a.reliability, stats_b.reliability);
    assert!(stats_a.reliability.is_consistent());
}

/// Under stuck-at faults with the full recovery ladder enabled, every
/// workload either completes with *correct* results or reports an
/// explicit uncorrectable error — never a silent wrong bit. Verified
/// writes refuse to leave corrupt data in the array, so whatever later
/// senses read is exact.
#[test]
fn stuck_faults_never_corrupt_silently() {
    let graph = small_graph();
    let reference = bfs_levels_reference(&graph);
    let mut injections = 0u64;
    let mut explicit_failures = 0u64;
    for seed in 0..6u64 {
        let model = FaultModel::with_seed(seed).with_stuck_at(2e-4, 2e-4);
        let mut sys = sys_with(model, ReliabilityConfig::protected());
        match bitmap_bfs(&graph, &mut sys) {
            Ok(r) => assert_eq!(r.levels, reference, "seed {seed}: accepted ⇒ correct"),
            Err(e) => {
                // Only the explicit reliability verdicts are acceptable.
                let msg = e.to_string();
                assert!(
                    msg.contains("verify retries") || msg.contains("parity check"),
                    "seed {seed}: unexpected error {msg}"
                );
                explicit_failures += 1;
            }
        }
        let r = sys.stats().reliability;
        assert_eq!(r.silent_wrong_bits, 0, "seed {seed}: {r:?}");
        assert!(r.is_consistent(), "seed {seed}: {r:?}");
        injections += r.injected_write_faults + r.injected_bit_errors;
    }
    assert!(
        injections > 0,
        "the sweep must actually inject faults somewhere"
    );
    // Not asserted per-seed (whether a stuck cell lands under live data is
    // seed luck), but across six seeds at this density some must fail.
    assert!(explicit_failures > 0, "some seeds must hit stuck cells");
}

/// Transient faults under full protection: the ladder (duplicate sense +
/// retry, parity re-read, RMW fallback) corrects everything it detects,
/// and the workload's results stay exactly right.
#[test]
fn protection_recovers_transient_faults() {
    let graph = small_graph();
    let reference = bfs_levels_reference(&graph);
    let mut detected = 0u64;
    for seed in [0x11u64, 0x22, 0x33] {
        let model = FaultModel::with_seed(seed).with_transients(1e-3, 1e-3, 1e-3);
        let mut sys = sys_with(model, ReliabilityConfig::protected());
        let r = bitmap_bfs(&graph, &mut sys).expect("protected bfs completes");
        assert_eq!(r.levels, reference, "seed {seed}");
        let stats = sys.stats().reliability;
        assert_eq!(stats.silent_wrong_bits, 0, "seed {seed}: {stats:?}");
        assert!(stats.is_consistent(), "seed {seed}: {stats:?}");
        detected += stats.detected_errors;
    }
    assert!(detected > 0, "the transient rate must trip the detectors");
}

/// The reliability ledger sums stay internally consistent through the
/// runtime aggregation (per-op summaries vs the memory's own totals).
#[test]
fn runtime_summaries_aggregate_reliability() {
    let model = FaultModel::with_seed(0xAB).with_transients(1e-4, 1e-4, 1e-4);
    let mut sys = sys_with(model, ReliabilityConfig::protected());
    let len = 2048u64;
    let vecs = sys.alloc_group(5, len).expect("alloc");
    let mut rng = SimRng::seed_from_u64(0xAB);
    for v in &vecs[..4] {
        let bits: Vec<bool> = (0..len).map(|_| rng.gen_bit()).collect();
        sys.store(v, &bits).expect("store");
    }
    let operands: Vec<_> = vecs[..4].iter().collect();
    let mut from_ops = ReliabilityStats::default();
    from_ops += sys.or_many(&operands, &vecs[4]).expect("or").reliability;
    from_ops += sys
        .bitwise(BitwiseOp::Xor, &[&vecs[0], &vecs[1]], &vecs[4])
        .expect("xor")
        .reliability;
    let total = sys.stats().reliability;
    // Op summaries cover exactly the op windows; the memory total adds the
    // setup stores on top, so every op-window counter is bounded by it.
    assert!(total.detected_errors >= from_ops.detected_errors);
    assert!(total.injected_bit_errors >= from_ops.injected_bit_errors);
    assert!(total.sense_retries >= from_ops.sense_retries);
    assert!(from_ops.is_consistent(), "{from_ops:?}");
    assert!(total.is_consistent(), "{total:?}");
}

// ---------------------------------------------------------------------------
// Word-packed vs per-cell-reference fault paths.
//
// The controller ships two implementations of the physical sense/write
// path: the O(words + fault sites) packed default and the O(cols × fan_in)
// per-cell reference it was derived from. Because every stochastic draw is
// a counter-keyed pure function of (seed, channel, event, column), the two
// must agree bit for bit and ledger entry for ledger entry on any command
// sequence. These tests pin that equivalence across seeds, row widths
// (including non-multiple-of-64 tails), fan-ins, both variation models,
// both reliability configurations, and every fault class at once.
// ---------------------------------------------------------------------------

/// Every fault mechanism enabled together, at rates high enough to fire on
/// ~1000-bit rows. The endurance budget is low so a moderately rewritten
/// row crosses it mid-scenario, exercising the wear-driven invalidation of
/// the cached per-row fault sites.
fn all_classes(seed: u64, variation: VariationModel) -> FaultModel {
    FaultModel::with_seed(seed)
        .with_stuck_at(1e-3, 1e-3)
        .with_drift(0.05)
        .with_variation(variation)
        .with_endurance(16, 0.5)
        .with_transients(1e-3, 1e-3, 1e-3)
        .with_write_flips(1e-3)
}

fn physical_mem(model: FaultModel, reliability: ReliabilityConfig, reference: bool) -> MainMemory {
    let mut config = MemConfig::pcm_default();
    config.fault_model = model;
    config.reliability = reliability;
    config.reference_fault_path = reference;
    MainMemory::new(config)
}

/// Drives one memory through a mixed command transcript — pokes, repeated
/// verified writes that wear a row past its endurance budget, then reads
/// and multi-row senses at several fan-ins — and returns everything
/// observable: each command's outcome (the stored/sensed row, or `None`
/// for an explicit error) and the final reliability ledger.
fn drive_physical(
    mem: &mut MainMemory,
    seed: u64,
    cols: u64,
) -> (Vec<Option<RowData>>, ReliabilityStats) {
    let mut rng = SimRng::seed_from_u64(seed);
    let random_row = |rng: &mut SimRng| -> RowData { (0..cols).map(|_| rng.gen_bit()).collect() };
    let rows: Vec<RowAddr> = (0..8).map(|r| RowAddr::new(0, 0, 0, 0, r)).collect();
    let hot = RowAddr::new(0, 0, 0, 0, 8);
    let mut transcript = Vec::new();

    for &row in &rows {
        let data = random_row(&mut rng);
        let ok = mem.poke_row(row, &data).is_ok();
        transcript.push(ok.then(|| mem.peek_row(row).expect("poked").clone()));
    }
    // 24 writes against a mean-16 endurance budget: the hot row crosses
    // into wear-out partway through, growing its fault-site set write by
    // write.
    for _ in 0..24 {
        let data = random_row(&mut rng);
        let ok = mem.write_row_local(hot, data).is_ok();
        transcript.push(ok.then(|| mem.peek_row(hot).expect("written").clone()));
    }
    transcript.push(mem.activate_read(rows[0], cols).ok());
    transcript.push(mem.activate_read(hot, cols).ok());
    for (ops, mode) in [
        (&rows[..2], SenseMode::and(2).expect("AND-2")),
        (&rows[..4], SenseMode::or(4).expect("OR-4")),
        (&rows[..8], SenseMode::or(8).expect("OR-8")),
    ] {
        transcript.push(mem.multi_activate_sense(ops, mode, cols).ok());
        // An unstable protected sense hands recovery to the caller; close
        // the ladder the way the engine's read-modify-write fallback does
        // so the `detected == corrected + uncorrectable` invariant holds.
        match mem.multi_activate_sense_protected(ops, mode, cols) {
            Ok(out) => transcript.push(Some(out)),
            Err(_) => {
                mem.note_rmw_fallback();
                mem.note_recovery_resolved();
                transcript.push(None);
            }
        }
    }
    (transcript, mem.stats().reliability)
}

/// The packed path is bit- and ledger-identical to the per-cell reference
/// over the full matrix: seeds × widths (with non-×64 tails) × variation
/// models × protection on/off, with all fault classes active at once.
#[test]
fn packed_fault_path_matches_reference_exactly() {
    let mut injected = 0u64;
    for seed in [1u64, 2] {
        for cols in [37u64, 130, 1000] {
            for variation in [VariationModel::BoundedUniform, VariationModel::Gaussian] {
                for protected in [false, true] {
                    let reliability = if protected {
                        ReliabilityConfig::protected()
                    } else {
                        ReliabilityConfig::off()
                    };
                    let model = all_classes(seed, variation);
                    let mut packed = physical_mem(model, reliability, false);
                    let mut reference = physical_mem(model, reliability, true);
                    let (packed_out, packed_rel) = drive_physical(&mut packed, seed, cols);
                    let (ref_out, ref_rel) = drive_physical(&mut reference, seed, cols);
                    let ctx =
                        format!("seed {seed}, cols {cols}, {variation:?}, protected {protected}");
                    assert_eq!(packed_out, ref_out, "{ctx}: transcripts diverge");
                    assert_eq!(packed_rel, ref_rel, "{ctx}: ledgers diverge");
                    assert_eq!(
                        packed.stats().events,
                        reference.stats().events,
                        "{ctx}: command streams diverge"
                    );
                    assert_eq!(
                        packed.stats().time_ns,
                        reference.stats().time_ns,
                        "{ctx}: timing diverges"
                    );
                    assert!(packed_rel.is_consistent(), "{ctx}: {packed_rel:?}");
                    injected += packed_rel.injected_bit_errors + packed_rel.injected_write_faults;
                }
            }
        }
    }
    assert!(injected > 0, "the matrix must actually inject faults");
}

/// At the fan-in-128 margin cap with Gaussian variation, senses actually
/// misread (the regime the fault sweep measures). The packed path resolves
/// these through its ambiguous-column band, which must agree with the
/// reference evaluator bit for bit — including which columns flip.
#[test]
fn packed_path_matches_reference_at_the_margin_cap() {
    let fan_in = 128usize;
    let cols = 256u64;
    let mut outputs = Vec::new();
    let mut ledgers = Vec::new();
    for reference in [false, true] {
        let model = FaultModel::with_seed(0x5EED).with_variation(VariationModel::Gaussian);
        let mut mem = physical_mem(model, ReliabilityConfig::off(), reference);
        let mut rng = SimRng::seed_from_u64(0x5EED);
        let rows: Vec<RowAddr> = (0..fan_in)
            .map(|r| RowAddr::new(0, 0, 0, 0, r as u32))
            .collect();
        for &row in &rows {
            // Mostly-zero columns keep the OR near the 0/1 boundary where
            // the Gaussian tails matter.
            let data: RowData = (0..cols).map(|_| rng.gen_bool(0.01)).collect();
            mem.poke_row(row, &data).expect("poke");
        }
        let mode = SenseMode::or(fan_in).expect("margin cap");
        let sensed: Vec<RowData> = (0..20)
            .map(|_| mem.multi_activate_sense(&rows, mode, cols).expect("sense"))
            .collect();
        outputs.push(sensed);
        ledgers.push(mem.stats().reliability);
    }
    assert_eq!(outputs[0], outputs[1], "fan-in-128 senses diverge");
    assert_eq!(ledgers[0], ledgers[1], "fan-in-128 ledgers diverge");
}

/// The SEC-DED read path rides the same packed physical fault machinery,
/// so the PR-4 equivalence matrix must hold under
/// [`ReliabilityConfig::protected_secded`] too: bit-identical transcripts,
/// ledgers (including the new ECC counters), command streams and timing
/// between the packed and per-cell-reference fault paths, with every
/// fault class active at once.
#[test]
fn secded_packed_fault_path_matches_reference_exactly() {
    let mut ecc_activity = 0u64;
    for seed in [1u64, 2] {
        for cols in [37u64, 130, 1000] {
            for variation in [VariationModel::BoundedUniform, VariationModel::Gaussian] {
                let model = all_classes(seed, variation);
                let reliability = ReliabilityConfig::protected_secded();
                let mut packed = physical_mem(model, reliability, false);
                let mut reference = physical_mem(model, reliability, true);
                let (packed_out, packed_rel) = drive_physical(&mut packed, seed, cols);
                let (ref_out, ref_rel) = drive_physical(&mut reference, seed, cols);
                let ctx = format!("secded: seed {seed}, cols {cols}, {variation:?}");
                assert_eq!(packed_out, ref_out, "{ctx}: transcripts diverge");
                assert_eq!(packed_rel, ref_rel, "{ctx}: ledgers diverge");
                assert_eq!(
                    packed.stats().events,
                    reference.stats().events,
                    "{ctx}: command streams diverge"
                );
                assert_eq!(
                    packed.stats().time_ns,
                    reference.stats().time_ns,
                    "{ctx}: timing diverges"
                );
                assert!(packed_rel.is_consistent(), "{ctx}: {packed_rel:?}");
                ecc_activity += packed_rel.ecc_corrected_bits + packed_rel.ecc_detected_double;
            }
        }
    }
    assert!(
        ecc_activity > 0,
        "the matrix must actually exercise the SEC-DED read path"
    );
}

/// Every 2-flip pattern across the whole 72-bit codeword — data+data,
/// data+check, check+check, and pairs involving the overall parity bit —
/// decodes as an explicit double-bit detection. These are exactly the
/// even-weight per-word patterns that alias per-word parity, so none of
/// them may be accepted or miscorrected.
#[test]
fn secded_detects_every_even_parity_aliasing_pair() {
    use pinatubo_mem::secded::{decode, encode, Decode};
    let mut state = 0x0DD5EEDu64;
    for _ in 0..3 {
        let word = splitmix64(&mut state);
        let check = encode(word);
        for i in 0..72u8 {
            for j in (i + 1)..72 {
                let mut w = word;
                let mut c = check;
                for bit in [i, j] {
                    if bit < 64 {
                        w ^= 1u64 << bit;
                    } else {
                        c ^= 1u8 << (bit - 64);
                    }
                }
                assert_eq!(
                    decode(w, c),
                    Decode::Double,
                    "word {word:#x}: flips at codeword bits {i},{j} must be detected"
                );
            }
        }
    }
}

/// Memory-level mirror of the codec property: on rows where stuck cells
/// flip exactly two bits of one word, parity aliases and hands back wrong
/// data, while SEC-DED on the same seed refuses the row explicitly; rows
/// with a single flipped bit come back corrected to the intended data
/// without a single retry-ladder invocation.
#[test]
fn secded_closes_the_parity_aliasing_blind_spot() {
    use pinatubo_mem::{MemError, ProtectionMode};
    const ROWS: u32 = 256;
    const BITS: u64 = 64;
    let memory = |mode: ProtectionMode| {
        let mut config = MemConfig::pcm_default();
        config.fault_model = FaultModel::with_seed(0x0DD).with_stuck_at(5e-3, 5e-3);
        let mut reliability = match mode {
            ProtectionMode::None => ReliabilityConfig::off(),
            ProtectionMode::Parity => ReliabilityConfig::protected(),
            ProtectionMode::SecDed => ReliabilityConfig::protected_secded(),
        };
        reliability.verify_writes = false; // corruption must land
        config.reliability = reliability;
        MainMemory::new(config)
    };
    let addr = |r: u32| RowAddr::new(0, 0, 0, 0, r);
    let image = |r: u32| -> RowData {
        let mut rng = SimRng::seed_from_u64(0x0DD ^ u64::from(r));
        (0..BITS).map(|_| rng.gen_bit()).collect()
    };

    // Classify the deterministic stuck-cell corruption with an unprotected
    // scout; the classification transfers exactly to the measured runs.
    let mut scout = memory(ProtectionMode::None);
    let (mut singles, mut doubles) = (Vec::new(), Vec::new());
    for r in 0..ROWS {
        let want = image(r);
        scout.poke_row(addr(r), &want).expect("scout poke");
        match scout.peek_row(addr(r)).expect("stored").count_diff(&want) {
            1 => singles.push(r),
            2 => doubles.push(r),
            _ => {}
        }
    }
    assert!(
        !singles.is_empty() && !doubles.is_empty(),
        "seed must yield both classes: {} singles, {} doubles",
        singles.len(),
        doubles.len()
    );

    let mut parity = memory(ProtectionMode::Parity);
    let mut secded = memory(ProtectionMode::SecDed);
    for mem in [&mut parity, &mut secded] {
        for &r in singles.iter().chain(&doubles) {
            mem.poke_row(addr(r), &image(r)).expect("poke");
        }
    }
    for &r in &singles {
        let retries_before = secded.stats().reliability.sense_retries;
        let got = secded.activate_read(addr(r), BITS).expect("corrected");
        assert_eq!(got, image(r), "row {r}: corrected to the intended data");
        assert_eq!(
            secded.stats().reliability.sense_retries,
            retries_before,
            "row {r}: in-place correction must not touch the ladder"
        );
        assert!(
            matches!(
                parity.activate_read(addr(r), BITS),
                Err(MemError::UncorrectableRead { .. })
            ),
            "row {r}: parity can only detect an odd flip"
        );
    }
    for &r in &doubles {
        assert!(
            matches!(
                secded.activate_read(addr(r), BITS),
                Err(MemError::UncorrectableRead { .. })
            ),
            "row {r}: a double flip must fail explicitly under SEC-DED"
        );
        let got = parity.activate_read(addr(r), BITS).expect("aliased");
        assert_ne!(got, image(r), "row {r}: parity aliases on even flips");
    }
    let (pr, sr) = (parity.stats().reliability, secded.stats().reliability);
    assert!(pr.is_consistent(), "{pr:?}");
    assert!(sr.is_consistent(), "{sr:?}");
    assert_eq!(sr.silent_wrong_bits, 0, "{sr:?}");
    assert_eq!(sr.ecc_corrected_bits, singles.len() as u64);
    assert_eq!(sr.ecc_detected_double, doubles.len() as u64);
    assert_eq!(pr.silent_wrong_bits, 2 * doubles.len() as u64, "{pr:?}");
    assert_eq!(pr.ecc_corrected_bits, 0);
}

/// The event counters themselves are part of the pinned ledger: every
/// physical sense and every physical write consumes exactly one event on
/// both paths, so retries and verify re-reads advance the fault stream
/// identically.
#[test]
fn both_paths_consume_one_event_per_physical_operation() {
    for reference in [false, true] {
        let model = all_classes(9, VariationModel::Gaussian);
        let mut mem = physical_mem(model, ReliabilityConfig::off(), reference);
        let rows: Vec<RowAddr> = (0..4).map(|r| RowAddr::new(0, 0, 0, 0, r)).collect();
        for &row in &rows {
            let data: RowData = (0..256).map(|i| i % 3 == 0).collect();
            mem.poke_row(row, &data).expect("poke");
        }
        let before = mem.stats().reliability;
        mem.multi_activate_sense(&rows, SenseMode::or(4).expect("OR-4"), 256)
            .expect("sense");
        let after = mem.stats().reliability;
        assert_eq!(
            after.physical_senses - before.physical_senses,
            1,
            "reference={reference}: one sense, one event"
        );
        assert_eq!(
            after.physical_writes, 4,
            "reference={reference}: four pokes, four events"
        );
    }
}
