//! Cross-crate reliability properties: fault-free bit-identity against
//! pinned pre-fault-engine baselines, determinism of the injected fault
//! stream, and the no-silent-corruption guarantee under the full
//! detect/retry/split/fallback recovery ladder.

use pinatubo_apps::bfs::{bfs_levels_reference, bitmap_bfs};
use pinatubo_apps::{BitmapIndex, Graph, Query};
use pinatubo_core::{BitwiseOp, PinatuboConfig};
use pinatubo_mem::{MemConfig, ReliabilityConfig, ReliabilityStats};
use pinatubo_nvm::fault::FaultModel;
use pinatubo_nvm::rng::{splitmix64, SimRng};
use pinatubo_nvm::yield_analysis::VariationModel;
use pinatubo_runtime::{MappingPolicy, PimSystem};

fn digest(bits: &[bool]) -> u64 {
    let mut h = 0x5EED_0000_0000_0001u64;
    for chunk in bits.chunks(64) {
        let mut word = 0u64;
        for (i, &b) in chunk.iter().enumerate() {
            word |= u64::from(b) << i;
        }
        h ^= word;
        h = splitmix64(&mut h);
    }
    h
}

fn sys_with(fault: FaultModel, reliability: ReliabilityConfig) -> PimSystem {
    let mut mem = MemConfig::pcm_default();
    mem.fault_model = fault;
    mem.reliability = reliability;
    PimSystem::new(mem, PinatuboConfig::default(), MappingPolicy::SubarrayFirst)
}

/// Scenario A of the pinned baseline: four random 5000-bit vectors
/// through OR-4 / AND / XOR / NOT. Returns the combined result digest.
fn run_scenario_a(sys: &mut PimSystem) -> u64 {
    let mut rng = SimRng::seed_from_u64(0xF00D);
    let len = 5000u64;
    let vs: Vec<_> = (0..4).map(|_| sys.alloc(len).expect("alloc")).collect();
    let pats: Vec<Vec<bool>> = (0..4)
        .map(|_| (0..len).map(|_| rng.gen_bit()).collect())
        .collect();
    for (v, p) in vs.iter().zip(&pats) {
        sys.store(v, p).expect("store");
    }
    let d1 = sys.alloc(len).expect("alloc");
    let d2 = sys.alloc(len).expect("alloc");
    let d3 = sys.alloc(len).expect("alloc");
    let d4 = sys.alloc(len).expect("alloc");
    sys.or_many(&[&vs[0], &vs[1], &vs[2], &vs[3]], &d1)
        .expect("or4");
    sys.bitwise(BitwiseOp::And, &[&vs[0], &vs[1]], &d2)
        .expect("and");
    sys.bitwise(BitwiseOp::Xor, &[&vs[2], &vs[3]], &d3)
        .expect("xor");
    sys.not(&vs[0], &d4).expect("not");
    digest(&sys.load(&d1))
        ^ digest(&sys.load(&d2))
        ^ digest(&sys.load(&d3))
        ^ digest(&sys.load(&d4))
}

fn small_graph() -> Graph {
    Graph::from_edges(
        64,
        &(0..63).map(|i| (i, (i * 7 + 3) % 64)).collect::<Vec<_>>(),
    )
}

/// With `FaultModel::none()` the whole stack must be bit-identical to the
/// pre-fault-engine behavior — pinned digests, exact-float times and
/// energies captured on the seed tree before this subsystem existed.
#[test]
fn fault_free_stack_matches_pinned_baselines() {
    // Scenario A: raw runtime ops.
    let mut sys = PimSystem::pcm_default(MappingPolicy::SubarrayFirst);
    let dig = run_scenario_a(&mut sys);
    assert_eq!(dig, 0xc24c25b6407cd20e);
    assert_eq!(sys.stats().time_ns, 844.4000000000001);
    assert_eq!(sys.stats().energy.total_pj(), 81543.11999999998);
    assert_eq!(sys.stats().events.activates, 3);
    assert_eq!(sys.stats().events.multi_activates, 2);
    assert!(sys.stats().reliability.is_zero());

    // Scenario B: bitmap BFS.
    let mut sys = PimSystem::pcm_default(MappingPolicy::SubarrayFirst);
    let r = bitmap_bfs(&small_graph(), &mut sys).expect("bfs runs");
    let mut h = 0xB0F5u64;
    for l in &r.levels {
        h ^= u64::from(*l).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        h = splitmix64(&mut h);
    }
    assert_eq!(h, 0x7570762cf84ab618);
    assert_eq!(sys.stats().time_ns, 29357.799999999927);

    // Scenario C: bitmap-index queries.
    let mut sys = PimSystem::pcm_default(MappingPolicy::SubarrayFirst);
    let spec = pinatubo_apps::database::TableSpec::star_like();
    let idx = BitmapIndex::build(spec, &mut sys).expect("build");
    let mut qrng = SimRng::seed_from_u64(0xDB);
    let counts: Vec<u64> = (0..3)
        .map(|_| {
            let q = Query::random(idx.spec(), &mut qrng);
            idx.run_query(&q, &mut sys).expect("query").count
        })
        .collect();
    assert_eq!(counts, vec![7185, 1056, 804]);
    assert_eq!(sys.stats().time_ns, 20031.499999999978);
}

/// `FaultModel::none()` is an identity even with every protection knob
/// switched on: the fault hooks must not fire at all, so results, timing,
/// energy and command counts are exactly those of the default config.
#[test]
fn none_model_with_full_protection_is_identity() {
    let mut default_sys = PimSystem::pcm_default(MappingPolicy::SubarrayFirst);
    let default_dig = run_scenario_a(&mut default_sys);

    let mut protected_sys = sys_with(FaultModel::none(), ReliabilityConfig::protected());
    let protected_dig = run_scenario_a(&mut protected_sys);

    assert_eq!(default_dig, protected_dig);
    assert_eq!(default_sys.stats(), protected_sys.stats());
    assert!(protected_sys.stats().reliability.is_zero());
}

/// The injected fault stream is a pure function of the model seed: two
/// runs of the same workload produce identical results *and* identical
/// reliability ledgers, bit for bit.
#[test]
fn same_seed_gives_identical_fault_streams() {
    // Rates sized to the 5000-bit rows: a few flips over the whole run,
    // well within what one retry round recovers.
    let model = FaultModel::with_seed(0xD1CE)
        .with_variation(VariationModel::Gaussian)
        .with_transients(1e-5, 1e-5, 1e-5)
        .with_write_flips(1e-5);
    let run = || {
        let mut sys = sys_with(model, ReliabilityConfig::protected());
        let dig = run_scenario_a(&mut sys);
        (dig, *sys.stats())
    };
    let (dig_a, stats_a) = run();
    let (dig_b, stats_b) = run();
    assert_eq!(dig_a, dig_b);
    assert_eq!(stats_a, stats_b);
    assert_eq!(stats_a.reliability, stats_b.reliability);
    assert!(stats_a.reliability.is_consistent());
}

/// Under stuck-at faults with the full recovery ladder enabled, every
/// workload either completes with *correct* results or reports an
/// explicit uncorrectable error — never a silent wrong bit. Verified
/// writes refuse to leave corrupt data in the array, so whatever later
/// senses read is exact.
#[test]
fn stuck_faults_never_corrupt_silently() {
    let graph = small_graph();
    let reference = bfs_levels_reference(&graph);
    let mut injections = 0u64;
    let mut explicit_failures = 0u64;
    for seed in 0..6u64 {
        let model = FaultModel::with_seed(seed).with_stuck_at(2e-4, 2e-4);
        let mut sys = sys_with(model, ReliabilityConfig::protected());
        match bitmap_bfs(&graph, &mut sys) {
            Ok(r) => assert_eq!(r.levels, reference, "seed {seed}: accepted ⇒ correct"),
            Err(e) => {
                // Only the explicit reliability verdicts are acceptable.
                let msg = e.to_string();
                assert!(
                    msg.contains("verify retries") || msg.contains("parity check"),
                    "seed {seed}: unexpected error {msg}"
                );
                explicit_failures += 1;
            }
        }
        let r = sys.stats().reliability;
        assert_eq!(r.silent_wrong_bits, 0, "seed {seed}: {r:?}");
        assert!(r.is_consistent(), "seed {seed}: {r:?}");
        injections += r.injected_write_faults + r.injected_bit_errors;
    }
    assert!(
        injections > 0,
        "the sweep must actually inject faults somewhere"
    );
    // Not asserted per-seed (whether a stuck cell lands under live data is
    // seed luck), but across six seeds at this density some must fail.
    assert!(explicit_failures > 0, "some seeds must hit stuck cells");
}

/// Transient faults under full protection: the ladder (duplicate sense +
/// retry, parity re-read, RMW fallback) corrects everything it detects,
/// and the workload's results stay exactly right.
#[test]
fn protection_recovers_transient_faults() {
    let graph = small_graph();
    let reference = bfs_levels_reference(&graph);
    let mut detected = 0u64;
    for seed in [0x11u64, 0x22, 0x33] {
        let model = FaultModel::with_seed(seed).with_transients(1e-3, 1e-3, 1e-3);
        let mut sys = sys_with(model, ReliabilityConfig::protected());
        let r = bitmap_bfs(&graph, &mut sys).expect("protected bfs completes");
        assert_eq!(r.levels, reference, "seed {seed}");
        let stats = sys.stats().reliability;
        assert_eq!(stats.silent_wrong_bits, 0, "seed {seed}: {stats:?}");
        assert!(stats.is_consistent(), "seed {seed}: {stats:?}");
        detected += stats.detected_errors;
    }
    assert!(detected > 0, "the transient rate must trip the detectors");
}

/// The reliability ledger sums stay internally consistent through the
/// runtime aggregation (per-op summaries vs the memory's own totals).
#[test]
fn runtime_summaries_aggregate_reliability() {
    let model = FaultModel::with_seed(0xAB).with_transients(1e-4, 1e-4, 1e-4);
    let mut sys = sys_with(model, ReliabilityConfig::protected());
    let len = 2048u64;
    let vecs = sys.alloc_group(5, len).expect("alloc");
    let mut rng = SimRng::seed_from_u64(0xAB);
    for v in &vecs[..4] {
        let bits: Vec<bool> = (0..len).map(|_| rng.gen_bit()).collect();
        sys.store(v, &bits).expect("store");
    }
    let operands: Vec<_> = vecs[..4].iter().collect();
    let mut from_ops = ReliabilityStats::default();
    from_ops += sys.or_many(&operands, &vecs[4]).expect("or").reliability;
    from_ops += sys
        .bitwise(BitwiseOp::Xor, &[&vecs[0], &vecs[1]], &vecs[4])
        .expect("xor")
        .reliability;
    let total = sys.stats().reliability;
    // Op summaries cover exactly the op windows; the memory total adds the
    // setup stores on top, so every op-window counter is bounded by it.
    assert!(total.detected_errors >= from_ops.detected_errors);
    assert!(total.injected_bit_errors >= from_ops.injected_bit_errors);
    assert!(total.sense_retries >= from_ops.sense_retries);
    assert!(from_ops.is_consistent(), "{from_ops:?}");
    assert!(total.is_consistent(), "{total:?}");
}
