//! Cross-crate integration: the full stack from user API down to the
//! circuit models, exercised end-to-end.

use pinatubo_core::rng::SimRng;
use pinatubo_core::{BitwiseOp, OpClass};
use pinatubo_runtime::{MappingPolicy, PimSystem};

/// A randomized "application": a few hundred mixed bitwise operations over
/// a pool of vectors, checked bit-for-bit against a host-side model, with
/// the command accounting sanity-checked at the end.
#[test]
fn random_program_matches_host_model() {
    let mut rng = SimRng::seed_from_u64(0xE2E);
    let mut sys = PimSystem::pcm_default(MappingPolicy::SubarrayFirst);
    let len = 777u64;

    // A pool of vectors with host-side mirrors.
    let mut pool: Vec<(pinatubo_runtime::PimBitVec, Vec<bool>)> = Vec::new();
    for _ in 0..12 {
        let bits: Vec<bool> = (0..len).map(|_| rng.gen_bit()).collect();
        let vec = sys.alloc(len).expect("allocates");
        sys.store(&vec, &bits).expect("stores");
        pool.push((vec, bits));
    }

    for round in 0..200 {
        let op = match round % 4 {
            0 => BitwiseOp::Or,
            1 => BitwiseOp::And,
            2 => BitwiseOp::Xor,
            _ => BitwiseOp::Not,
        };
        let operand_count = if op == BitwiseOp::Not {
            1
        } else {
            // Leave at least one pool slot free for the destination.
            2 + rng.gen_index(pool.len() - 2)
        };
        let chosen: Vec<usize> = (0..operand_count)
            .map(|_| rng.gen_index(pool.len()))
            .collect();
        // Chained operations reject a destination that aliases an operand
        // (see `PimError::DstAliasesOperands`); pick a non-operand dst.
        let dst_idx = (0..pool.len())
            .find(|i| !chosen.contains(i))
            .expect("pool is larger than any operand set");

        // Host model.
        let mut expect = pool[chosen[0]].1.clone();
        if op == BitwiseOp::Not {
            for b in &mut expect {
                *b = !*b;
            }
        } else {
            for &idx in &chosen[1..] {
                for (e, &b) in expect.iter_mut().zip(&pool[idx].1) {
                    *e = op.apply(*e, b);
                }
            }
        }

        // Device.
        let operands: Vec<&pinatubo_runtime::PimBitVec> =
            chosen.iter().map(|&i| &pool[i].0).collect();
        let dst = pool[dst_idx].0.clone();
        sys.bitwise(op, &operands, &dst).expect("bulk op runs");

        assert_eq!(sys.load(&dst), expect, "round {round}, op {op}");
        pool[dst_idx].1 = expect;
    }

    // Accounting sanity: work happened, time and energy are positive and
    // finite, and the op trace matches the rounds executed.
    let stats = sys.stats();
    assert!(stats.time_ns > 0.0 && stats.time_ns.is_finite());
    assert!(stats.total_energy_pj() > 0.0 && stats.total_energy_pj().is_finite());
    assert_eq!(sys.trace().len(), 200);
    assert!(stats.events.rows_activated > 0);
}

/// The same program executed under every mapping policy produces identical
/// *results* — placement changes cost, never semantics.
#[test]
fn mapping_policy_never_changes_results() {
    let policies = [
        MappingPolicy::SubarrayFirst,
        MappingPolicy::BankInterleave,
        MappingPolicy::random(),
    ];
    let mut outcomes = Vec::new();
    for policy in policies {
        let mut sys = PimSystem::pcm_default(policy);
        let vectors: Vec<_> = (0..8)
            .map(|i| {
                let v = sys.alloc(256).expect("alloc");
                let bits: Vec<bool> = (0..256).map(|j| (i * 31 + j) % 7 == 0).collect();
                sys.store(&v, &bits).expect("store");
                v
            })
            .collect();
        let dst = sys.alloc(256).expect("dst");
        let refs: Vec<_> = vectors.iter().collect();
        sys.or_many(&refs, &dst).expect("or");
        outcomes.push((sys.load(&dst), sys.stats().time_ns));
    }
    assert_eq!(outcomes[0].0, outcomes[1].0);
    assert_eq!(outcomes[0].0, outcomes[2].0);
    // ...but the PIM-aware policy is the cheapest.
    assert!(outcomes[0].1 <= outcomes[1].1);
    assert!(outcomes[0].1 <= outcomes[2].1);
}

/// Vectors spanning several rows keep working across the whole stack.
#[test]
fn multi_row_vectors_end_to_end() {
    let mut sys = PimSystem::pcm_default(MappingPolicy::SubarrayFirst);
    let row_bits = 1u64 << 19;
    let len = row_bits * 2 + 123;
    let a = sys.alloc(len).expect("a");
    let b = sys.alloc(len).expect("b");
    let dst = sys.alloc(len).expect("dst");

    let mut bits = vec![false; len as usize];
    // One bit per segment, including the ragged tail.
    bits[5] = true;
    bits[row_bits as usize + 6] = true;
    bits[len as usize - 1] = true;
    sys.store(&a, &bits).expect("store a");
    sys.bitwise(BitwiseOp::Or, &[&a, &b], &dst).expect("or");
    assert_eq!(sys.count_ones(&dst), 3);

    let trace = sys.trace();
    assert_eq!(trace.len(), 1);
    assert_eq!(trace[0].bits, len);
    assert_eq!(trace[0].locality, OpClass::IntraSubarray);
}
