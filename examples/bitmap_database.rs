//! Database example: a FastBit-style equality-encoded bitmap index whose
//! range queries evaluate as multi-row ORs + an AND chain, all in memory.
//!
//! Run with `cargo run --release --example bitmap_database`.

use pinatubo_apps::database::{BitmapIndex, Query, TableSpec};
use pinatubo_core::rng::SimRng;
use pinatubo_runtime::{MappingPolicy, PimSystem};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = TableSpec {
        rows: 1 << 16,
        attributes: 4,
        bins: 16,
        seed: 1234,
    };
    let mut sys = PimSystem::pcm_default(MappingPolicy::SubarrayFirst);
    let index = BitmapIndex::build(spec, &mut sys)?;
    println!(
        "indexed {} events x {} attributes ({} bins each): {} bitmaps, {:.1} KiB",
        spec.rows,
        spec.attributes,
        spec.bins,
        spec.attributes * spec.bins,
        index.footprint_bytes() as f64 / 1024.0
    );

    let mut rng = SimRng::seed_from_u64(99);
    println!(
        "\n{:<42}{:>10}{:>12}",
        "query (bin ranges per attribute)", "hits", "time (ns)"
    );
    for _ in 0..5 {
        let query = Query::random(&spec, &mut rng);
        let before = sys.stats().time_ns;
        let outcome = index.run_query(&query, &mut sys)?;
        let elapsed = sys.stats().time_ns - before;
        // Cross-check the in-memory evaluation against a scalar scan.
        assert_eq!(outcome.count, index.count_reference(&query));
        println!(
            "{:<42}{:>10}{:>12.0}",
            format!("{:?}", query.ranges),
            outcome.count,
            elapsed
        );
    }

    let stats = sys.stats();
    println!("\nacross the session:");
    println!("  multi-row activations : {}", stats.events.multi_activates);
    println!(
        "  DDR bus bits          : {} (operands never crossed the bus)",
        stats.events.bus_bits
    );
    println!(
        "  total energy          : {:.2} nJ",
        stats.total_energy_pj() / 1000.0
    );
    Ok(())
}
