//! Database example: a FastBit-style equality-encoded bitmap index whose
//! range queries evaluate as multi-row ORs + an AND chain, all in memory —
//! plus an aggregation pushdown, where a measure predicate (`energy >= c`)
//! runs as a bit-serial comparison µ-op over a transposed value column and
//! only the final popcount crosses the bus.
//!
//! Run with `cargo run --release --example bitmap_database`.

use pinatubo_apps::database::{BitmapIndex, Query, TableSpec, ValueColumn};
use pinatubo_core::rng::SimRng;
use pinatubo_runtime::{MappingPolicy, PimSystem};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = TableSpec {
        rows: 1 << 16,
        attributes: 4,
        bins: 16,
        seed: 1234,
    };
    let mut sys = PimSystem::pcm_default(MappingPolicy::SubarrayFirst);
    let index = BitmapIndex::build(spec, &mut sys)?;
    println!(
        "indexed {} events x {} attributes ({} bins each): {} bitmaps, {:.1} KiB",
        spec.rows,
        spec.attributes,
        spec.bins,
        spec.attributes * spec.bins,
        index.footprint_bytes() as f64 / 1024.0
    );

    let mut rng = SimRng::seed_from_u64(99);
    println!(
        "\n{:<42}{:>10}{:>12}",
        "query (bin ranges per attribute)", "hits", "time (ns)"
    );
    for _ in 0..5 {
        let query = Query::random(&spec, &mut rng);
        let before = sys.stats().time_ns;
        let outcome = index.run_query(&query, &mut sys)?;
        let elapsed = sys.stats().time_ns - before;
        // Cross-check the in-memory evaluation against a scalar scan.
        assert_eq!(outcome.count, index.count_reference(&query));
        println!(
            "{:<42}{:>10}{:>12.0}",
            format!("{:?}", query.ranges),
            outcome.count,
            elapsed
        );
    }

    // Aggregation pushdown: filter the same queries by a 12-bit synthetic
    // "energy" measure, evaluated in PIM via the cmp_ge µ-op.
    const ENERGY_BITS: u32 = 12;
    const MIN_ENERGY: u64 = 2600;
    let column = ValueColumn::build(
        ValueColumn::synthetic_values(spec.rows, ENERGY_BITS, 0xE4E2),
        ENERGY_BITS,
        &mut sys,
    )?;
    let mut rng = SimRng::seed_from_u64(99);
    println!(
        "\n{:<42}{:>10}{:>10}{:>12}",
        format!("pushdown: same queries, energy >= {MIN_ENERGY}"),
        "hits",
        "filtered",
        "time (ns)"
    );
    let free_before = sys.allocator().free_rows();
    for _ in 0..5 {
        let query = Query::random(&spec, &mut rng);
        let before = sys.stats().time_ns;
        let base = index.run_query(&query, &mut sys)?;
        let filtered = index.run_query_filtered(&query, &column, MIN_ENERGY, &mut sys)?;
        let elapsed = sys.stats().time_ns - before;
        assert_eq!(
            filtered.count,
            index.count_reference_filtered(&query, &column, MIN_ENERGY)
        );
        println!(
            "{:<42}{:>10}{:>10}{:>12.0}",
            format!("{:?}", query.ranges),
            base.count,
            filtered.count,
            elapsed
        );
    }
    // The comparator's scratch rows and predicate masks are all recycled.
    assert_eq!(sys.allocator().free_rows(), free_before);

    let stats = sys.stats();
    println!("\nacross the session:");
    println!("  multi-row activations : {}", stats.events.multi_activates);
    println!(
        "  DDR bus bits          : {} (operands never crossed the bus)",
        stats.events.bus_bits
    );
    println!(
        "  total energy          : {:.2} nJ",
        stats.total_energy_pj() / 1000.0
    );
    Ok(())
}
