//! Driver-scheduler example: submit a batch of operation requests and let
//! the §5 driver library reorder them — batching mode-register switches,
//! spreading same-rank launches past the tRRD/tFAW gates, and actually
//! executing per-channel queues on worker threads over memory shards.
//!
//! Run with `cargo run --release --example batch_scheduler`.

use pinatubo_core::BitwiseOp;
use pinatubo_runtime::{BatchRequest, MappingPolicy, PimSystem};
use std::time::Instant;

/// 24 independent requests with deliberately thrashing op kinds; the
/// channel-rotate policy keeps each request on one channel and spreads
/// consecutive requests over all four, so the batch shards cleanly.
fn build_batch(
    sys: &mut PimSystem,
    bits: u64,
) -> Result<Vec<BatchRequest>, pinatubo_runtime::RuntimeError> {
    let ops = [BitwiseOp::Or, BitwiseOp::And, BitwiseOp::Xor];
    (0..24)
        .map(|i| {
            let mut group = sys.alloc_group(5, bits)?;
            let dst = group.pop().expect("five vectors");
            Ok(BatchRequest {
                op: ops[i % ops.len()],
                operands: group,
                dst,
            })
        })
        .collect()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bits = 1u64 << 19;

    // Reference: the same scheduled order on the unified memory.
    let mut serial = PimSystem::pcm_default(MappingPolicy::ChannelRotate);
    let batch = build_batch(&mut serial, bits)?;
    let t0 = Instant::now();
    serial.execute_batch_serial(&batch)?;
    let serial_wall = t0.elapsed();

    // The real thing: per-channel shards on scoped worker threads.
    let mut sys = PimSystem::pcm_default(MappingPolicy::ChannelRotate);
    let batch = build_batch(&mut sys, bits)?;
    let t0 = Instant::now();
    let report = sys.execute_batch(&batch)?;
    let parallel_wall = t0.elapsed();

    println!("scheduled a 24-request batch (4-operand, 2^19-bit vectors):");
    println!(
        "  mode-register switches : {} naive -> {} scheduled",
        report.mode_switches_naive, report.mode_switches_scheduled
    );
    println!(
        "  serial command stream  : {:.2} us",
        report.serial_time_ns / 1000.0
    );
    println!(
        "  bank-parallel makespan : {:.2} us ({:.2}x overlap)",
        report.makespan_ns / 1000.0,
        report.channel_parallel_speedup()
    );
    for (channel, t) in report.channel_times_ns.iter().enumerate() {
        println!("    channel {channel}: {:.2} us busy", t / 1000.0);
    }
    let m = &report.makespan;
    println!("  critical-path breakdown:");
    println!(
        "    bus-serialized (DDR + MRS): {:.2} us, bank-lane work: {:.2} us",
        m.bus_serialized_ns / 1000.0,
        m.lane_ns / 1000.0
    );
    println!(
        "    {} bank lanes, {:.0}% of submitted work overlapped away, \
         {:.0} ns tRRD/tFAW launch stall",
        m.lanes_used,
        m.overlapped_fraction() * 100.0,
        m.rrd_faw_stall_ns
    );
    println!(
        "    request-granularity model: {:.2} us; command interleaving \
         recovered {:.0} ns ({:.0} ns spent waiting on busy bus/GDL slots)",
        m.request_granularity_ns / 1000.0,
        m.interleave_recovered_ns,
        m.bus_conflict_stall_ns
    );
    println!(
        "  simulator wall-clock   : serial {:.2} ms, 4 sharded workers {:.2} ms ({:.2}x)",
        serial_wall.as_secs_f64() * 1e3,
        parallel_wall.as_secs_f64() * 1e3,
        serial_wall.as_secs_f64() / parallel_wall.as_secs_f64()
    );
    println!(
        "    (per-channel worker threads; wall-clock gain tracks the host's \
         spare cores, up to the 4 channel shards)"
    );
    Ok(())
}
