//! Driver-scheduler example: submit a batch of operation requests and let
//! the §5 driver library reorder them — batching mode-register switches
//! and overlapping independent work across channels.
//!
//! Run with `cargo run --release --example batch_scheduler`.

use pinatubo_core::BitwiseOp;
use pinatubo_runtime::{BatchRequest, MappingPolicy, PimSystem};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Random placement spreads requests over all four channels.
    let mut sys = PimSystem::pcm_default(MappingPolicy::random());

    // 24 independent requests with deliberately thrashing op kinds.
    let ops = [BitwiseOp::Or, BitwiseOp::And, BitwiseOp::Xor];
    let batch: Vec<BatchRequest> = (0..24)
        .map(|i| {
            let a = sys.alloc(1 << 14)?;
            let b = sys.alloc(1 << 14)?;
            let dst = sys.alloc(1 << 14)?;
            Ok(BatchRequest {
                op: ops[i % ops.len()],
                operands: vec![a, b],
                dst,
            })
        })
        .collect::<Result<_, pinatubo_runtime::RuntimeError>>()?;

    let report = sys.execute_batch(&batch)?;
    println!("scheduled a 24-request batch:");
    println!(
        "  mode-register switches : {} naive -> {} scheduled",
        report.mode_switches_naive, report.mode_switches_scheduled
    );
    println!(
        "  serial command stream  : {:.2} us",
        report.serial_time_ns / 1000.0
    );
    println!(
        "  bank-parallel makespan : {:.2} us ({:.2}x overlap)",
        report.makespan_ns / 1000.0,
        report.channel_parallel_speedup()
    );
    for (channel, t) in report.channel_times_ns.iter().enumerate() {
        println!("    channel {channel}: {:.2} us busy", t / 1000.0);
    }
    let m = &report.makespan;
    println!("  critical-path breakdown:");
    println!(
        "    bus-serialized (DDR + MRS): {:.2} us, bank-lane work: {:.2} us",
        m.bus_serialized_ns / 1000.0,
        m.lane_ns / 1000.0
    );
    println!(
        "    {} bank lanes, {:.0}% of submitted work overlapped away, \
         {:.0} ns tRRD/tFAW launch stall",
        m.lanes_used,
        m.overlapped_fraction() * 100.0,
        m.rrd_faw_stall_ns
    );
    Ok(())
}
