//! Bioinformatics example: comparative k-mer analysis of a synthetic
//! cohort, computed with in-memory set operations (the paper's §3
//! bioinformatics motivation).
//!
//! Run with `cargo run --release --example kmer_analysis`.

use pinatubo_apps::genomics::KmerCohort;
use pinatubo_runtime::{MappingPolicy, PimSystem};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut sys = PimSystem::pcm_default(MappingPolicy::SubarrayFirst);
    // Five descendants of one ancestor genome, 1% substitution rate.
    let samples = KmerCohort::synthetic_samples(5, 20_000, 0.01, 0xD7A);
    let cohort = KmerCohort::load(samples, 8, &mut sys)?;
    println!(
        "cohort of {} samples, k = 8 ({}-bit presence bitmaps)\n",
        cohort.len(),
        cohort.universe_bits()
    );

    let pan = cohort.pan_kmer_count(&mut sys)?;
    let core = cohort.core_kmer_count(&mut sys)?;
    println!("pan-genome k-mers  (one multi-row OR): {pan}");
    println!("core-genome k-mers (chained AND)     : {core}");
    println!(
        "accessory fraction                   : {:.1}%",
        100.0 * (pan - core) as f64 / pan as f64
    );

    println!("\npairwise Jaccard similarity:");
    for a in 0..cohort.len() {
        let row: Vec<String> = (0..cohort.len())
            .map(|b| {
                if a == b {
                    " 1.00".to_owned()
                } else {
                    format!("{:5.2}", cohort.jaccard(a, b, &mut sys).unwrap_or(f64::NAN))
                }
            })
            .collect();
        println!("  {}: {}", cohort.names()[a], row.join(" "));
    }

    println!("\ndistinctive k-mers per sample:");
    for idx in 0..cohort.len() {
        let unique = cohort.distinctive_kmer_count(idx, &mut sys)?;
        println!("  {}: {unique}", cohort.names()[idx]);
    }

    let stats = sys.stats();
    println!(
        "\n{} bulk ops, {:.1} us simulated, {:.1} nJ, {} DDR bus bits",
        sys.trace().len(),
        stats.time_ns / 1000.0,
        stats.total_energy_pj() / 1000.0,
        stats.events.bus_bits
    );
    Ok(())
}
