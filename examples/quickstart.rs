//! Quickstart: allocate bit-vectors in NVM, run bulk bitwise operations in
//! memory, and read the command-level cost back.
//!
//! Run with `cargo run --release --example quickstart`.

use pinatubo_core::BitwiseOp;
use pinatubo_runtime::{MappingPolicy, PimSystem, RuntimeError};

fn main() -> Result<(), RuntimeError> {
    // A Pinatubo system over the paper's PCM main memory, with the
    // PIM-aware allocator that co-locates related bit-vectors.
    let mut sys = PimSystem::pcm_default(MappingPolicy::SubarrayFirst);

    // pim_malloc: sixteen 4096-bit vectors plus a destination, placed in
    // one subarray so the operation runs as a single multi-row activation.
    let len = 4096;
    let mut vectors = sys.alloc_group(17, len)?;
    let dst = vectors
        .pop()
        .expect("seventeenth vector is the destination");

    // Give each vector one set bit.
    for (i, v) in vectors.iter().enumerate() {
        let mut bits = vec![false; len as usize];
        bits[i * 37] = true;
        sys.store(v, &bits)?;
    }

    // One 16-operand OR — a single reference-shifted sense in the array.
    let operands: Vec<_> = vectors.iter().collect();
    let summary = sys.or_many(&operands, &dst)?;

    println!("16-operand OR over {len}-bit vectors:");
    println!("  locality class : {}", summary.class);
    println!("  simulated time : {:.1} ns", summary.time_ns);
    println!("  energy         : {:.1} pJ", summary.energy_pj);
    println!("  result ones    : {}", sys.count_ones(&dst));

    // Follow up with AND / XOR / NOT through the same API.
    let inverted = sys.alloc(len)?;
    sys.not(&dst, &inverted)?;
    let both = sys.alloc(len)?;
    sys.bitwise(BitwiseOp::And, &[&dst, &inverted], &both)?;
    println!(
        "  x AND NOT x    : {} ones (always zero)",
        sys.count_ones(&both)
    );

    // The command-level statistics the figures are built from.
    let stats = sys.stats();
    println!("\ncommand-level account:");
    println!("  multi-row activations : {}", stats.events.multi_activates);
    println!("  rows opened           : {}", stats.events.rows_activated);
    println!("  sense passes          : {}", stats.events.sense_passes);
    println!("  row writes            : {}", stats.events.row_writes);
    println!("  DDR bus bits          : {}", stats.events.bus_bits);
    println!(
        "  total energy          : {:.1} pJ",
        stats.total_energy_pj()
    );
    Ok(())
}
