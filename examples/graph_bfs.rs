//! Graph processing example: bitmap BFS where each level's neighbor union
//! is ONE multi-row OR over the frontier's adjacency rows.
//!
//! Run with `cargo run --release --example graph_bfs`.

use pinatubo_apps::bfs::{bitmap_bfs, frontier_bfs};
use pinatubo_apps::graph::{Graph, GraphProfile};
use pinatubo_runtime::{MappingPolicy, PimSystem};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A dense synthetic collaboration graph (dblp-like), scaled down so
    // the adjacency-bitmap variant is cheap to print.
    let graph = Graph::synthetic(&GraphProfile::dblp().scaled(1024));
    println!(
        "graph: {} vertices, {} edges",
        graph.node_count(),
        graph.edge_count()
    );

    // Variant 1: adjacency-bitmap BFS — every level ORs the frontier's
    // adjacency rows in one multi-row activation (up to 128 rows each).
    let mut sys = PimSystem::pcm_default(MappingPolicy::SubarrayFirst);
    let result = bitmap_bfs(&graph, &mut sys)?;
    let reached = result.levels.iter().filter(|&&l| l > 0).count();
    println!("\nadjacency-bitmap BFS:");
    println!("  components       : {}", result.components);
    println!("  levels processed : {}", result.total_levels);
    println!("  vertices beyond the sources: {reached}");
    println!("  bulk ops issued  : {}", result.run.trace.len());
    let widest = result
        .run
        .trace
        .iter()
        .map(|o| o.operand_count)
        .max()
        .unwrap_or(0);
    println!("  widest OR fan-in : {widest} rows");
    println!(
        "  simulated time   : {:.2} us",
        sys.stats().time_ns / 1000.0
    );

    // Variant 2: direction-optimizing frontier-bitmap BFS — the
    // paper-scale Graph workload.
    let mut sys = PimSystem::pcm_default(MappingPolicy::SubarrayFirst);
    let result = frontier_bfs(&graph, &mut sys)?;
    println!("\nfrontier-bitmap BFS (direction-optimizing):");
    println!("  bitmap levels    : {}", result.bitmap_levels);
    println!("  scalar levels    : {}", result.scalar_levels);
    println!("  bulk ops issued  : {}", result.run.trace.len());
    println!(
        "  simulated time   : {:.2} us",
        sys.stats().time_ns / 1000.0
    );
    Ok(())
}
