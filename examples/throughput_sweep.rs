//! A compact version of the Fig. 9 experiment: equivalent OR bandwidth
//! versus vector length and fan-in, straight from the public executor API —
//! followed by a sustained multi-batch throughput comparison of the
//! persistent-session engine against the per-batch barriered executor,
//! with the same stream also driven through the multi-tenant serving
//! layer (admission control + deficit round-robin on top of a session).
//!
//! Run with `cargo run --release --example throughput_sweep`.

use pinatubo_baselines::{BitwiseExecutor, PinatuboExecutor, SimdCpu};
use pinatubo_core::{BitwiseOp, BulkOp, PinatuboConfig};
use pinatubo_mem::MemConfig;
use pinatubo_runtime::{BatchRequest, MappingPolicy, PimSystem};
use pinatubo_serve::{PimServer, ServeConfig, ServeError, TenantConfig};
use std::sync::Arc;
use std::time::Instant;

/// One round's worth of independent single-channel requests, rotated over
/// the channels (the same shape `bench_parallel` uses).
fn build_batch(s: &mut PimSystem, count: usize, bits: u64) -> Vec<BatchRequest> {
    let ops = [BitwiseOp::Or, BitwiseOp::And, BitwiseOp::Xor];
    (0..count)
        .map(|g| {
            let group = s.alloc_group(3, bits).expect("allocation fits");
            let pattern: Vec<bool> = (0..bits).map(|i| (i * 7 + g as u64) % 3 == 0).collect();
            s.store(&group[0], &pattern).expect("store");
            BatchRequest {
                op: ops[g % ops.len()],
                operands: group[..2].to_vec(),
                dst: group[2].clone(),
            }
        })
        .collect()
}

fn streaming_system() -> PimSystem {
    PimSystem::new(
        MemConfig::pcm_default(),
        PinatuboConfig::default(),
        MappingPolicy::ChannelRotate,
    )
}

/// Sustained multi-batch throughput: the same `rounds x count` request
/// stream through the per-batch barriered executor (split/absorb + thread
/// spawn every batch) and through one persistent session (workers spawned
/// once, one dirty-delta sync at close). Reports batches per second.
fn sustained_throughput(count: usize, bits: u64, rounds: usize) -> (f64, f64) {
    let mut barriered = streaming_system();
    let batch = build_batch(&mut barriered, count, bits);
    let t0 = Instant::now();
    for _ in 0..rounds {
        barriered.execute_batch(&batch).expect("barriered batch");
    }
    let barriered_bps = rounds as f64 / t0.elapsed().as_secs_f64();

    let mut pooled = streaming_system();
    let batch = build_batch(&mut pooled, count, bits);
    let t0 = Instant::now();
    let mut session = pooled.open_session();
    for _ in 0..rounds {
        session.submit_batch(&batch).expect("pooled batch");
    }
    session.close().expect("session close");
    let pooled_bps = rounds as f64 / t0.elapsed().as_secs_f64();

    (barriered_bps, pooled_bps)
}

/// The same sustained stream through the serving layer: one registered
/// tenant, the round's requests as one shared slab, bounded admission
/// queues and the deficit scheduler between the stream and the session.
/// What this column shows is the serving layer's overhead (or lack of
/// it) on top of the raw pooled session.
fn sustained_serve(count: usize, bits: u64, rounds: usize) -> f64 {
    let mut server = PimServer::new(
        streaming_system(),
        ServeConfig {
            workers: 1,
            channel_queue_capacity: count.max(1),
            quantum: count as u64,
            sync_every_rounds: 4,
        },
    );
    let tenant = server.register(TenantConfig {
        name: "sweep".into(),
        weight: 1,
        row_quota: 4 * count as u64 * bits.div_ceil(1 << 19).max(1),
    });
    let ops = [BitwiseOp::Or, BitwiseOp::And, BitwiseOp::Xor];
    let requests: Vec<BatchRequest> = (0..count)
        .map(|g| {
            let group = server
                .alloc_group(tenant, 3, bits)
                .expect("allocation fits");
            let pattern: Vec<bool> = (0..bits).map(|i| (i * 7 + g as u64) % 3 == 0).collect();
            server.store(&group[0], &pattern).expect("store");
            BatchRequest {
                op: ops[g % ops.len()],
                operands: group[..2].to_vec(),
                dst: group[2].clone(),
            }
        })
        .collect();
    let slab = Arc::new(requests);
    let t0 = Instant::now();
    let mut session = server.open();
    for _ in 0..rounds {
        loop {
            match session.submit(tenant, Arc::clone(&slab)) {
                Ok(()) => break,
                Err(ServeError::QueueFull { .. }) => {
                    session.advance().expect("advance");
                }
                Err(e) => panic!("unexpected submit error: {e}"),
            }
        }
    }
    let report = session.finish().expect("finish");
    assert_eq!(report.tenants[0].batches_completed, rounds as u64);
    assert!(report.starved_tenants().is_empty());
    rounds as f64 / t0.elapsed().as_secs_f64()
}

fn main() {
    let mut pim = PinatuboExecutor::multi_row();
    let mut cpu = SimdCpu::with_pcm();
    cpu.set_workload_footprint(Some(4 << 30)); // streaming workload

    println!(
        "{:<12}{:>16}{:>16}{:>16}{:>12}",
        "length", "2-row (GB/s)", "128-row (GB/s)", "SIMD (GB/s)", "128 vs SIMD"
    );
    for len_log2 in [12u32, 14, 16, 19] {
        let bits = 1u64 << len_log2;
        let two = BulkOp::intra(BitwiseOp::Or, 2, bits);
        let wide = BulkOp::intra(BitwiseOp::Or, 128, bits);
        let r2 = pim.execute(&two);
        let r128 = pim.execute(&wide);
        let rcpu = cpu.execute(&wide);
        println!(
            "{:<12}{:>16.1}{:>16.1}{:>16.1}{:>11.0}x",
            format!("2^{len_log2} bits"),
            r2.throughput_gbps(two.operand_bits()),
            r128.throughput_gbps(wide.operand_bits()),
            rcpu.throughput_gbps(wide.operand_bits()),
            rcpu.time_ns / r128.time_ns
        );
    }

    println!();
    println!("Sustained batch streams: persistent session vs per-batch barriers vs serving layer");
    println!(
        "{:<22}{:>20}{:>20}{:>18}{:>10}",
        "stream", "barriered (batch/s)", "session (batch/s)", "serve (batch/s)", "ratio"
    );
    for (count, bits_log2, rounds) in [(16usize, 12u32, 16usize), (24, 14, 8), (48, 16, 4)] {
        let (barriered_bps, pooled_bps) = sustained_throughput(count, 1 << bits_log2, rounds);
        let serve_bps = sustained_serve(count, 1 << bits_log2, rounds);
        println!(
            "{:<22}{:>20.0}{:>20.0}{:>18.0}{:>9.2}x",
            format!("{count} req x 2^{bits_log2} bits"),
            barriered_bps,
            pooled_bps,
            serve_bps,
            pooled_bps / barriered_bps
        );
    }
}
