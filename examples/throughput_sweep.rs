//! A compact version of the Fig. 9 experiment: equivalent OR bandwidth
//! versus vector length and fan-in, straight from the public executor API.
//!
//! Run with `cargo run --release --example throughput_sweep`.

use pinatubo_baselines::{BitwiseExecutor, PinatuboExecutor, SimdCpu};
use pinatubo_core::{BitwiseOp, BulkOp};

fn main() {
    let mut pim = PinatuboExecutor::multi_row();
    let mut cpu = SimdCpu::with_pcm();
    cpu.set_workload_footprint(Some(4 << 30)); // streaming workload

    println!(
        "{:<12}{:>16}{:>16}{:>16}{:>12}",
        "length", "2-row (GB/s)", "128-row (GB/s)", "SIMD (GB/s)", "128 vs SIMD"
    );
    for len_log2 in [12u32, 14, 16, 19] {
        let bits = 1u64 << len_log2;
        let two = BulkOp::intra(BitwiseOp::Or, 2, bits);
        let wide = BulkOp::intra(BitwiseOp::Or, 128, bits);
        let r2 = pim.execute(&two);
        let r128 = pim.execute(&wide);
        let rcpu = cpu.execute(&wide);
        println!(
            "{:<12}{:>16.1}{:>16.1}{:>16.1}{:>11.0}x",
            format!("2^{len_log2} bits"),
            r2.throughput_gbps(two.operand_bits()),
            r128.throughput_gbps(wide.operand_bits()),
            rcpu.throughput_gbps(wide.operand_bits()),
            rcpu.time_ns / r128.time_ns
        );
    }
}
