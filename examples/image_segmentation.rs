//! Image processing example: bit-plane threshold masks and band
//! segmentation computed entirely with in-memory bitwise operations
//! (the fast color segmentation use-case the paper's §3 motivates).
//!
//! Run with `cargo run --release --example image_segmentation`.

use pinatubo_apps::image::{segment_band, BitPlaneChannel};
use pinatubo_runtime::{MappingPolicy, PimSystem};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (width, height) = (96, 32);
    let mut sys = PimSystem::pcm_default(MappingPolicy::SubarrayFirst);
    let pixels = BitPlaneChannel::synthetic_pixels(width, height, 42);
    let channel = BitPlaneChannel::load(pixels, &mut sys)?;
    println!(
        "loaded a {width}x{height} 8-bit frame as {} bit planes of {} bits",
        BitPlaneChannel::PLANES,
        channel.len()
    );

    // A bright-region band: 120 < pixel <= 255.
    let segment = segment_band(&[&channel], 120, 255, &mut sys)?;
    let bits = sys.load(&segment);

    // ASCII rendering of the segmentation mask.
    println!("\nsegment (pixel > 120):");
    for y in 0..height {
        let row: String = (0..width)
            .map(|x| if bits[y * width + x] { '#' } else { '.' })
            .collect();
        println!("  {row}");
    }

    let stats = sys.stats();
    println!("\nbitwise work, all in-memory:");
    println!("  bulk ops           : {}", sys.trace().len());
    println!("  simulated time     : {:.2} us", stats.time_ns / 1000.0);
    println!(
        "  energy             : {:.2} nJ",
        stats.total_energy_pj() / 1000.0
    );
    println!("  DDR bus bits moved : {}", stats.events.bus_bits);
    Ok(())
}
