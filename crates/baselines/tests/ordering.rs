//! Cross-executor ordering tests: the qualitative results the paper's
//! evaluation reports must hold for any reasonable calibration —
//! who wins, and by roughly what factor.

use pinatubo_baselines::{
    AcPimExecutor, BitwiseExecutor, ExecReport, IdealExecutor, PinatuboExecutor, SdramExecutor,
    SimdCpu,
};
use pinatubo_core::{BitwiseOp, BulkOp};

fn run(x: &mut dyn BitwiseExecutor, op: &BulkOp) -> ExecReport {
    x.execute(op)
}

/// The headline claim: multi-row Pinatubo accelerates bulk OR by hundreds
/// of times over the SIMD processor and saves four-plus orders of
/// magnitude of energy (paper abstract: ~500× and ~28000×).
#[test]
fn pinatubo_128_headline_ratios() {
    let op = BulkOp::intra(BitwiseOp::Or, 128, 1 << 19);
    let mut simd = SimdCpu::with_pcm();
    simd.set_workload_footprint(Some(4 << 30)); // streaming workload
    let cpu = run(&mut simd, &op);
    let pim = run(&mut PinatuboExecutor::multi_row(), &op);

    let speedup = cpu.time_ns / pim.time_ns;
    assert!(
        (100.0..3000.0).contains(&speedup),
        "speedup {speedup:.0}x should be in the paper's ~500x band"
    );
    let saving = cpu.energy_pj / pim.energy_pj;
    assert!(
        (3.0e3..2.0e5).contains(&saving),
        "energy saving {saving:.0}x should be in the paper's ~28000x band"
    );
}

/// S-DRAM beats Pinatubo-2 on very long vectors (bigger row buffer, no SA
/// mux serialization) but loses to Pinatubo-128 (paper §6.2: "the advantage
/// of NVM's multi-row operations still dominates", 22× on average).
#[test]
fn sdram_vs_pinatubo_crossover() {
    let long_2row = BulkOp::intra(BitwiseOp::Or, 2, 1 << 19);
    let sdram = run(&mut SdramExecutor::new(), &long_2row);
    let pin2 = run(&mut PinatuboExecutor::two_row(), &long_2row);
    assert!(
        sdram.time_ns < pin2.time_ns,
        "S-DRAM ({} ns) should beat Pinatubo-2 ({} ns) on full-row 2-row ops",
        sdram.time_ns,
        pin2.time_ns
    );

    let wide = BulkOp::intra(BitwiseOp::Or, 128, 1 << 19);
    let sdram_wide = run(&mut SdramExecutor::new(), &wide);
    let pin128 = run(&mut PinatuboExecutor::multi_row(), &wide);
    let ratio = sdram_wide.time_ns / pin128.time_ns;
    assert!(
        ratio > 5.0,
        "Pinatubo-128 should dominate S-DRAM on wide ORs (got {ratio:.1}x, paper reports 22x)"
    );
}

/// AC-PIM is slower than Pinatubo in every single case (paper §6.2,
/// second observation).
#[test]
fn acpim_never_beats_pinatubo() {
    for operands in [2usize, 4, 16, 128] {
        for bits in [1u64 << 10, 1 << 14, 1 << 19] {
            let op = BulkOp::intra(BitwiseOp::Or, operands, bits);
            let ac = run(&mut AcPimExecutor::new(), &op);
            let pin = run(&mut PinatuboExecutor::multi_row(), &op);
            assert!(
                ac.time_ns > pin.time_ns,
                "AC-PIM must be slower at {operands} operands x {bits} bits"
            );
        }
    }
}

/// AC-PIM saves the least energy of the in/near-memory solutions: analog
/// computing (Pinatubo, S-DRAM) beats digital gates (paper §6.2).
#[test]
fn acpim_saves_least_energy_of_the_pim_solutions() {
    let op = BulkOp::intra(BitwiseOp::Or, 2, 1 << 19);
    let ac = run(&mut AcPimExecutor::new(), &op);
    let pin2 = run(&mut PinatuboExecutor::two_row(), &op);
    let sdram = run(&mut SdramExecutor::new(), &op);
    assert!(ac.energy_pj > pin2.energy_pj);
    assert!(ac.energy_pj > sdram.energy_pj);
}

/// Everything in-memory still beats the processor on streaming bulk ops.
#[test]
fn every_pim_solution_beats_streaming_simd() {
    let op = BulkOp::intra(BitwiseOp::Or, 8, 1 << 19);
    let mut simd = SimdCpu::with_pcm();
    simd.set_workload_footprint(Some(4 << 30));
    let cpu = run(&mut simd, &op);
    for x in [
        &mut AcPimExecutor::new() as &mut dyn BitwiseExecutor,
        &mut SdramExecutor::new(),
        &mut PinatuboExecutor::two_row(),
        &mut PinatuboExecutor::multi_row(),
    ] {
        let r = x.execute(&op);
        assert!(
            r.time_ns < cpu.time_ns,
            "{} must beat SIMD on streaming bulk OR",
            x.name()
        );
        assert!(r.energy_pj < cpu.energy_pj, "{} must save energy", x.name());
    }
}

/// The ideal executor bounds everything from below.
#[test]
fn ideal_is_a_lower_bound() {
    let op = BulkOp::intra(BitwiseOp::And, 2, 1 << 16);
    let ideal = run(&mut IdealExecutor::new(), &op);
    assert_eq!(ideal.time_ns, 0.0);
    let pin = run(&mut PinatuboExecutor::multi_row(), &op);
    assert!(pin.time_ns > ideal.time_ns);
}

/// Equivalent bandwidth of a 128-row OR exceeds the memory-internal
/// bandwidth region and approaches the paper's "~1000× DDR3 bus" claim.
#[test]
fn multi_row_or_exceeds_internal_bandwidth() {
    let op = BulkOp::intra(BitwiseOp::Or, 128, 1 << 19);
    let r = run(&mut PinatuboExecutor::multi_row(), &op);
    let gbps = r.throughput_gbps(op.operand_bits());
    // DDR3-1600 x 4 channels = 51.2 GB/s; "beyond internal bandwidth"
    // means an equivalent bandwidth orders of magnitude above the bus.
    assert!(
        gbps > 1_000.0,
        "128-row OR equivalent bandwidth {gbps:.0} GB/s should be in the TB/s region"
    );
}
