//! The SIMD processor baseline.
//!
//! An analytic model of the paper's Sniper-simulated host: a 4-core,
//! 4-issue out-of-order x86 at 3.3 GHz with 128-bit SSE/AVX units and a
//! 32 KB / 256 KB / 6 MB cache hierarchy (§6.1). Bulk bitwise kernels are
//! streaming loops, so the model is roofline-shaped: execution time is the
//! maximum of compute time and data-movement time at the level of the
//! hierarchy the working set lives in, and energy charges data movement,
//! pipeline activity and package power over that time.
//!
//! The same CPU model prices the *scalar* (non-bitwise) portion of the
//! real applications, which is what limits overall speedup in Fig. 12.

use crate::{BitwiseExecutor, ExecReport};
use pinatubo_core::{ArithOp, BitwiseOp, BulkOp};

/// 1 W sustained for 1 ns is 1000 pJ.
const PJ_PER_WATT_NS: f64 = 1000.0;

/// Which main memory the CPU is attached to. The paper pairs the SIMD
/// baseline with DRAM when comparing against S-DRAM and with PCM when
/// comparing against AC-PIM and Pinatubo.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HostMemory {
    /// 4-channel DDR3-1600 DRAM.
    Dram,
    /// The paper's 1T1R PCM main memory (slow, asymmetric writes).
    Pcm,
}

/// One level of the data-supply hierarchy: sustainable bandwidth and
/// per-bit access energy.
#[derive(Debug, Clone, Copy, PartialEq)]
struct SupplyLevel {
    capacity_bytes: u64,
    bandwidth_gbps: f64,
    read_pj_per_bit: f64,
    write_pj_per_bit: f64,
}

/// The SIMD processor model.
///
/// Constructed by [`SimdCpu::with_dram`] or [`SimdCpu::with_pcm`]; fields
/// are private and calibrated, with the workload-footprint hint as the one
/// run-time knob (see [`SimdCpu::set_workload_footprint`]).
#[derive(Debug, Clone, PartialEq)]
pub struct SimdCpu {
    name: String,
    memory_kind: HostMemory,
    cores: u32,
    freq_ghz: f64,
    simd_bits: u32,
    /// SIMD bitwise ops issued per cycle per core (two vector ALU ports).
    simd_ops_per_cycle: f64,
    /// Scalar instructions per cycle per core.
    scalar_ipc: f64,
    l1: SupplyLevel,
    l2: SupplyLevel,
    l3: SupplyLevel,
    mem: SupplyLevel,
    /// Pipeline (fetch/decode/issue/retire) energy per data bit processed.
    pipeline_pj_per_bit: f64,
    /// Energy per scalar instruction.
    scalar_pj_per_instr: f64,
    /// Package power burned while the kernel runs (cores + uncore).
    package_power_w: f64,
    /// Fixed per-operation overhead (loop setup, function call).
    op_overhead_ns: f64,
    /// If set, cache-level selection uses this workload footprint instead
    /// of the single op's working set.
    workload_footprint_bytes: Option<u64>,
}

impl SimdCpu {
    fn new(name: &str, memory_kind: HostMemory, mem: SupplyLevel) -> Self {
        SimdCpu {
            name: name.to_owned(),
            memory_kind,
            cores: 4,
            freq_ghz: 3.3,
            simd_bits: 128,
            simd_ops_per_cycle: 2.0,
            scalar_ipc: 2.0,
            l1: SupplyLevel {
                capacity_bytes: 32 * 1024,
                bandwidth_gbps: 400.0,
                read_pj_per_bit: 0.3,
                write_pj_per_bit: 0.3,
            },
            l2: SupplyLevel {
                capacity_bytes: 256 * 1024,
                bandwidth_gbps: 200.0,
                read_pj_per_bit: 0.8,
                write_pj_per_bit: 0.8,
            },
            l3: SupplyLevel {
                capacity_bytes: 6 * 1024 * 1024,
                bandwidth_gbps: 100.0,
                read_pj_per_bit: 2.0,
                write_pj_per_bit: 2.0,
            },
            mem,
            pipeline_pj_per_bit: 5.0,
            scalar_pj_per_instr: 60.0,
            package_power_w: 55.0,
            op_overhead_ns: 20.0,
            workload_footprint_bytes: None,
        }
    }

    /// CPU attached to 4-channel DDR3-1600 DRAM.
    #[must_use]
    pub fn with_dram() -> Self {
        SimdCpu::new(
            "SIMD/DRAM",
            HostMemory::Dram,
            SupplyLevel {
                capacity_bytes: u64::MAX,
                bandwidth_gbps: 35.0,
                read_pj_per_bit: 16.0,
                write_pj_per_bit: 16.0,
            },
        )
    }

    /// CPU attached to the paper's PCM main memory. Streaming reads are
    /// bus/array limited; writes are further throttled by PCM's 151 ns
    /// write pulse behind the write buffers.
    #[must_use]
    pub fn with_pcm() -> Self {
        SimdCpu::new(
            "SIMD/PCM",
            HostMemory::Pcm,
            SupplyLevel {
                capacity_bytes: u64::MAX,
                bandwidth_gbps: 15.4,
                read_pj_per_bit: 20.0,
                write_pj_per_bit: 48.0,
            },
        )
    }

    /// Tells the cache model the total footprint of the running workload.
    ///
    /// A single 2-row op over short vectors looks L1-resident on its own,
    /// but when the workload cycles through thousands of such vectors the
    /// reuse distance exceeds every cache. The figure harnesses set this
    /// from the workload definition (Table 1's vector counts).
    pub fn set_workload_footprint(&mut self, bytes: Option<u64>) {
        self.workload_footprint_bytes = bytes;
    }

    /// The supply level a working set of `bytes` streams from.
    fn level_for(&self, bytes: u64) -> &SupplyLevel {
        let effective = self.workload_footprint_bytes.unwrap_or(bytes).max(bytes);
        if effective <= self.l1.capacity_bytes {
            &self.l1
        } else if effective <= self.l2.capacity_bytes {
            &self.l2
        } else if effective <= self.l3.capacity_bytes {
            &self.l3
        } else {
            &self.mem
        }
    }

    /// Aggregate SIMD throughput in bits per nanosecond.
    fn simd_bits_per_ns(&self) -> f64 {
        f64::from(self.simd_bits) * self.simd_ops_per_cycle * f64::from(self.cores) * self.freq_ghz
    }

    /// Prices a lane-wise integer kernel (`runtime::microcode`'s
    /// competition): `lanes` elements of `width_bits` each, processed with
    /// packed-integer SIMD (one `paddb`/`pcmpgt`/`pminu`-class op per
    /// vector of lanes). Two-operand ops stream both inputs; constant
    /// comparisons stream one. Comparison results are written as packed
    /// one-bit masks; arithmetic results are full-width.
    #[must_use]
    pub fn arith_report(&self, op: ArithOp, lanes: u64, width_bits: u32) -> ExecReport {
        // Lanes are stored at the next power-of-two element width the
        // SIMD ISA supports (8/16/32/64-bit packed integers).
        let elem_bits = u64::from(width_bits.next_power_of_two().max(8));
        let read_vectors: u64 = if op.takes_constant() { 1 } else { 2 };
        let read_bits = read_vectors * lanes * elem_bits;
        let write_bits = if op.result_is_mask() {
            lanes
        } else {
            lanes * elem_bits
        };
        let working_set = (read_bits + write_bits) / 8;
        let level = *self.level_for(working_set);

        let move_ns = (read_bits as f64 / 8.0) / level.bandwidth_gbps
            + (write_bits as f64 / 8.0) / self.mem_or_level_write_bw(&level);
        let elems_per_vec = f64::from(self.simd_bits) / elem_bits as f64;
        let vector_ops = lanes as f64 / elems_per_vec;
        let compute_ns =
            vector_ops / (self.simd_ops_per_cycle * f64::from(self.cores) * self.freq_ghz);
        let time_ns = move_ns.max(compute_ns) + self.op_overhead_ns;

        let energy_pj = read_bits as f64 * (level.read_pj_per_bit + self.pipeline_pj_per_bit)
            + write_bits as f64 * (level.write_pj_per_bit + self.pipeline_pj_per_bit)
            + self.package_power_w * time_ns * PJ_PER_WATT_NS;
        ExecReport { time_ns, energy_pj }
    }

    /// Prices converting one `lanes × width_bits` vector between the
    /// bit-transposed plane layout the PIM kernels compute on and the
    /// lane-major packed-integer layout the SIMD units need (either
    /// direction). In a Pinatubo deployment the canonical layout is
    /// bit-transposed, so a host falling back to packed SIMD pays this
    /// once per distinct input it gathers and once per result it
    /// scatters back — a cost the raw [`SimdCpu::arith_report`] roofline
    /// ignores.
    ///
    /// The conversion streams the `width_bits` planes and writes the
    /// packed elements (or vice versa); compute is shuffle-bound
    /// (`pmovmskb`/`pdep`-style bit gathering), modeled at a quarter of
    /// the streaming SIMD rate over the plane bits.
    #[must_use]
    pub fn transpose_report(&self, lanes: u64, width_bits: u32) -> ExecReport {
        let elem_bits = u64::from(width_bits.next_power_of_two().max(8));
        let plane_bits = lanes * u64::from(width_bits);
        let packed_bits = lanes * elem_bits;
        let working_set = (plane_bits + packed_bits) / 8;
        let level = *self.level_for(working_set);

        let move_ns = (plane_bits as f64 / 8.0) / level.bandwidth_gbps
            + (packed_bits as f64 / 8.0) / self.mem_or_level_write_bw(&level);
        let compute_ns = plane_bits as f64 / (self.simd_bits_per_ns() / 4.0);
        let time_ns = move_ns.max(compute_ns) + self.op_overhead_ns;

        let energy_pj = plane_bits as f64 * (level.read_pj_per_bit + self.pipeline_pj_per_bit)
            + packed_bits as f64 * (level.write_pj_per_bit + self.pipeline_pj_per_bit)
            + self.package_power_w * time_ns * PJ_PER_WATT_NS;
        ExecReport { time_ns, energy_pj }
    }

    /// Prices scalar (non-bitwise) application work: `instructions`
    /// executed while touching `bytes` of data. Used for the overall
    /// application results (Fig. 12), where this part is common to every
    /// executor.
    #[must_use]
    pub fn scalar_report(&self, instructions: u64, bytes: u64) -> ExecReport {
        let level = self.level_for(bytes.max(1));
        let compute_ns =
            instructions as f64 / (self.scalar_ipc * f64::from(self.cores) * self.freq_ghz);
        let move_ns = bytes as f64 / level.bandwidth_gbps;
        let time_ns = compute_ns.max(move_ns);
        let energy_pj = instructions as f64 * self.scalar_pj_per_instr
            + bytes as f64 * 8.0 * level.read_pj_per_bit
            + self.package_power_w * time_ns * PJ_PER_WATT_NS;
        ExecReport { time_ns, energy_pj }
    }
}

impl BitwiseExecutor for SimdCpu {
    fn name(&self) -> &str {
        &self.name
    }

    fn execute(&mut self, op: &BulkOp) -> ExecReport {
        // NOT reads one vector; everything else reads all operands. Every
        // op writes one result vector.
        let read_vectors = if op.op == BitwiseOp::Not {
            1
        } else {
            op.operand_count
        } as u64;
        let read_bits = read_vectors * op.bits;
        let write_bits = op.bits;
        let working_set = (read_bits + write_bits) / 8;
        let level = *self.level_for(working_set);

        // Roofline: data movement vs SIMD ALU passes.
        let move_ns = (read_bits as f64 / 8.0) / level.bandwidth_gbps
            + (write_bits as f64 / 8.0) / self.mem_or_level_write_bw(&level);
        let passes = read_vectors.max(2) - 1; // n operands need n-1 combine passes
        let compute_ns = (passes * op.bits) as f64 / self.simd_bits_per_ns();
        let time_ns = move_ns.max(compute_ns) + self.op_overhead_ns;

        let energy_pj = read_bits as f64 * (level.read_pj_per_bit + self.pipeline_pj_per_bit)
            + write_bits as f64 * (level.write_pj_per_bit + self.pipeline_pj_per_bit)
            + self.package_power_w * time_ns * PJ_PER_WATT_NS;
        ExecReport { time_ns, energy_pj }
    }
}

impl SimdCpu {
    /// Which main memory this CPU is attached to.
    #[must_use]
    pub fn memory_kind(&self) -> HostMemory {
        self.memory_kind
    }

    /// Write bandwidth: results are written through to the level the data
    /// lives in (write-allocate caches push dirty lines down eventually).
    fn mem_or_level_write_bw(&self, level: &SupplyLevel) -> f64 {
        if level.capacity_bytes == u64::MAX {
            // Memory-resident: writes pay the memory write bandwidth, which
            // PCM's long write pulse throttles hard.
            match self.memory_kind {
                HostMemory::Pcm => self.mem.bandwidth_gbps * 0.42,
                HostMemory::Dram => self.mem.bandwidth_gbps * 0.6,
            }
        } else {
            level.bandwidth_gbps
        }
    }
}

/// The scalar reference path for the bit-serial arithmetic µ-ops: the
/// host loop every compiled µ-program is verified against, bit for bit.
/// `b` is the second operand vector or `None` for broadcast-constant ops
/// (the constant then comes from `konst`).
///
/// # Panics
///
/// If `b` is shorter than `a`.
#[must_use]
pub fn arith_reference(
    op: ArithOp,
    a: &[u64],
    b: Option<&[u64]>,
    konst: u64,
    width_bits: u32,
) -> Vec<u64> {
    a.iter()
        .enumerate()
        .map(|(i, &x)| {
            let rhs = b.map_or(konst, |b| b[i]);
            op.eval_lane(x, rhs, width_bits)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pinatubo_core::BitwiseOp;

    #[test]
    fn big_vectors_are_memory_bound() {
        let mut cpu = SimdCpu::with_pcm();
        // A workload cycling through many vectors defeats the caches.
        cpu.set_workload_footprint(Some(4 << 30));
        let op = BulkOp::intra(BitwiseOp::Or, 2, 1 << 19);
        let r = cpu.execute(&op);
        // 2 × 64 KB reads at 15.4 GB/s alone exceed 8 µs.
        assert!(r.time_ns > 8_000.0, "got {}", r.time_ns);
    }

    #[test]
    fn small_cached_vectors_are_fast() {
        let mut cpu = SimdCpu::with_pcm();
        let op = BulkOp::intra(BitwiseOp::Or, 2, 1 << 10);
        let r = cpu.execute(&op);
        assert!(
            r.time_ns < 100.0,
            "L1-resident op should take ~overhead, got {}",
            r.time_ns
        );
    }

    #[test]
    fn footprint_hint_defeats_caching() {
        let op = BulkOp::intra(BitwiseOp::Or, 2, 1 << 10);
        let mut cached = SimdCpu::with_pcm();
        let fast = cached.execute(&op);
        let mut streaming = SimdCpu::with_pcm();
        streaming.set_workload_footprint(Some(4 << 30));
        let slow = streaming.execute(&op);
        assert!(slow.time_ns > fast.time_ns);
        assert!(slow.energy_pj > fast.energy_pj);
    }

    #[test]
    fn dram_host_is_faster_than_pcm_host() {
        let op = BulkOp::intra(BitwiseOp::Or, 4, 1 << 19);
        let mut dram = SimdCpu::with_dram();
        let mut pcm = SimdCpu::with_pcm();
        for cpu in [&mut dram, &mut pcm] {
            cpu.set_workload_footprint(Some(4 << 30));
        }
        let d = dram.execute(&op);
        let p = pcm.execute(&op);
        assert!(d.time_ns < p.time_ns);
    }

    #[test]
    fn more_operands_cost_more() {
        let mut cpu = SimdCpu::with_pcm();
        let small = cpu.execute(&BulkOp::intra(BitwiseOp::Or, 2, 1 << 16));
        let big = cpu.execute(&BulkOp::intra(BitwiseOp::Or, 64, 1 << 16));
        assert!(big.time_ns > 10.0 * small.time_ns);
    }

    #[test]
    fn not_reads_one_vector() {
        let mut cpu = SimdCpu::with_pcm();
        let not = cpu.execute(&BulkOp::intra(BitwiseOp::Not, 1, 1 << 19));
        let or2 = cpu.execute(&BulkOp::intra(BitwiseOp::Or, 2, 1 << 19));
        assert!(not.time_ns < or2.time_ns);
    }

    #[test]
    fn scalar_report_scales() {
        let cpu = SimdCpu::with_pcm();
        let small = cpu.scalar_report(1_000, 1_000);
        let big = cpu.scalar_report(1_000_000, 1_000_000);
        assert!(big.time_ns > small.time_ns);
        assert!(big.energy_pj > small.energy_pj);
    }

    #[test]
    fn name_reflects_memory() {
        assert_eq!(SimdCpu::with_pcm().name(), "SIMD/PCM");
        assert_eq!(SimdCpu::with_dram().name(), "SIMD/DRAM");
    }

    #[test]
    fn arith_report_scales_with_lanes_and_width() {
        let mut cpu = SimdCpu::with_pcm();
        cpu.set_workload_footprint(Some(4 << 30));
        let small = cpu.arith_report(ArithOp::Add, 1 << 10, 8);
        let more_lanes = cpu.arith_report(ArithOp::Add, 1 << 16, 8);
        let wider = cpu.arith_report(ArithOp::Add, 1 << 16, 32);
        assert!(more_lanes.time_ns > small.time_ns);
        assert!(wider.time_ns > more_lanes.time_ns);
        assert!(wider.energy_pj > more_lanes.energy_pj);
    }

    #[test]
    fn arith_masks_write_less_than_vectors() {
        let mut cpu = SimdCpu::with_pcm();
        cpu.set_workload_footprint(Some(4 << 30));
        let cmp = cpu.arith_report(ArithOp::CmpGe, 1 << 16, 32);
        let add = cpu.arith_report(ArithOp::Add, 1 << 16, 32);
        assert!(cmp.energy_pj < add.energy_pj);
        // A constant threshold streams one input instead of two.
        let thr = cpu.arith_report(ArithOp::ThresholdConst, 1 << 16, 32);
        assert!(thr.time_ns < cmp.time_ns);
    }

    #[test]
    fn transpose_report_scales_and_is_material() {
        let mut cpu = SimdCpu::with_pcm();
        cpu.set_workload_footprint(Some(4 << 30));
        let small = cpu.transpose_report(1 << 10, 8);
        let more_lanes = cpu.transpose_report(1 << 16, 8);
        let wider = cpu.transpose_report(1 << 16, 32);
        assert!(more_lanes.time_ns > small.time_ns);
        assert!(wider.time_ns > more_lanes.time_ns);
        assert!(wider.energy_pj > more_lanes.energy_pj);
        // Converting an input is comparable to streaming it once — it
        // must cost something real relative to the kernel itself.
        let kernel = cpu.arith_report(ArithOp::Add, 1 << 16, 32);
        let conv = cpu.transpose_report(1 << 16, 32);
        assert!(conv.time_ns > 0.2 * kernel.time_ns);
    }

    #[test]
    fn arith_reference_matches_eval_lane() {
        let a = [0u64, 255, 17, 128];
        let b = [255u64, 255, 42, 127];
        assert_eq!(
            arith_reference(ArithOp::Sub, &a, Some(&b), 0, 8),
            vec![1, 0, 231, 1]
        );
        assert_eq!(
            arith_reference(ArithOp::ThresholdConst, &a, None, 127, 8),
            vec![0, 1, 0, 1]
        );
    }
}
