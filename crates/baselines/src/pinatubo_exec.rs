//! Pinatubo as a trace executor.
//!
//! Unlike the analytic baselines, this executor *replays* each abstract
//! [`BulkOp`] on the real [`PinatuboEngine`]: it synthesizes a row
//! placement matching the op's recorded locality class, issues the bulk
//! operation, and reports the engine's measured time/energy delta. Costs
//! therefore come from the same command-level accounting the rest of the
//! simulator uses — there is no separate Pinatubo cost model to drift out
//! of sync.

use crate::{BitwiseExecutor, ExecReport};
use pinatubo_core::{BitwiseOp, BulkOp, OpClass, PinatuboConfig, PinatuboEngine};
use pinatubo_mem::{MemConfig, RowAddr};

/// The Pinatubo executor.
#[derive(Debug)]
pub struct PinatuboExecutor {
    engine: PinatuboEngine,
    name: String,
}

impl PinatuboExecutor {
    /// Full multi-row Pinatubo on PCM (the paper's "Pinatubo-128" — the
    /// 128 emerges from the PCM sense margin).
    #[must_use]
    pub fn multi_row() -> Self {
        PinatuboExecutor::with_config(
            "Pinatubo-128",
            MemConfig::pcm_default(),
            PinatuboConfig::multi_row(),
        )
    }

    /// Two-row Pinatubo on PCM (the paper's "Pinatubo-2").
    #[must_use]
    pub fn two_row() -> Self {
        PinatuboExecutor::with_config(
            "Pinatubo-2",
            MemConfig::pcm_default(),
            PinatuboConfig::two_row(),
        )
    }

    /// A specific fan-in cap on the default PCM memory (the Fig. 9 sweep).
    #[must_use]
    pub fn with_fan_in(fan_in: usize) -> Self {
        PinatuboExecutor::with_config(
            &format!("Pinatubo-{fan_in}"),
            MemConfig::pcm_default(),
            PinatuboConfig::with_fan_in(fan_in),
        )
    }

    /// Fully custom memory + engine configuration (technology ablations).
    #[must_use]
    pub fn with_config(name: &str, mem: MemConfig, config: PinatuboConfig) -> Self {
        PinatuboExecutor {
            engine: PinatuboEngine::new(mem, config),
            name: name.to_owned(),
        }
    }

    /// The wrapped engine (e.g. to inspect class counters after a trace).
    #[must_use]
    pub fn engine(&self) -> &PinatuboEngine {
        &self.engine
    }

    /// Synthesizes operand/destination rows matching a locality class.
    ///
    /// Costs in the engine are data-independent, so the rows' contents do
    /// not matter — only their placement does.
    fn placement(&self, locality: OpClass, operand_count: usize) -> (Vec<RowAddr>, RowAddr) {
        let g = self.engine.memory().geometry();
        let rows_per_sub = g.rows_per_subarray;
        let place = |i: u32| -> RowAddr {
            match locality {
                OpClass::IntraSubarray => RowAddr::new(0, 0, 0, 0, i % (rows_per_sub - 1)),
                OpClass::InterSubarray => RowAddr::new(
                    0,
                    0,
                    0,
                    i % g.subarrays_per_bank,
                    (i / g.subarrays_per_bank) % rows_per_sub,
                ),
                OpClass::InterBank => RowAddr::new(
                    0,
                    0,
                    i % g.banks_per_chip,
                    (i / g.banks_per_chip) % g.subarrays_per_bank,
                    0,
                ),
                OpClass::HostFallback => RowAddr::new(
                    i % g.channels,
                    (i / g.channels) % g.ranks_per_channel,
                    0,
                    0,
                    (i / (g.channels * g.ranks_per_channel)) % rows_per_sub,
                ),
            }
        };
        let operands: Vec<RowAddr> = (0..operand_count as u32).map(place).collect();
        // Destination placed to *preserve* the class: in the same subarray
        // for intra ops, in a different unit otherwise.
        let dst = match locality {
            OpClass::IntraSubarray => RowAddr::new(0, 0, 0, 0, rows_per_sub - 1),
            OpClass::InterSubarray => {
                RowAddr::new(0, 0, 0, g.subarrays_per_bank - 1, rows_per_sub - 1)
            }
            OpClass::InterBank => RowAddr::new(
                0,
                0,
                g.banks_per_chip - 1,
                g.subarrays_per_bank - 1,
                rows_per_sub - 1,
            ),
            OpClass::HostFallback => RowAddr::new(
                g.channels - 1,
                g.ranks_per_channel - 1,
                g.banks_per_chip - 1,
                g.subarrays_per_bank - 1,
                rows_per_sub - 1,
            ),
        };
        (operands, dst)
    }
}

impl BitwiseExecutor for PinatuboExecutor {
    fn name(&self) -> &str {
        &self.name
    }

    fn execute(&mut self, op: &BulkOp) -> ExecReport {
        let row_bits = self.engine.memory().geometry().logical_row_bits();
        let operand_count = if op.op == BitwiseOp::Not {
            1
        } else {
            op.operand_count.max(2)
        };
        let (operands, dst) = self.placement(op.locality, operand_count);

        // Vectors longer than a row span rank-serial segments (Fig. 9's
        // turning point B): same command sequence per segment, summed.
        let mut report = ExecReport::zero();
        let mut remaining = op.bits;
        while remaining > 0 {
            let cols = remaining.min(row_bits);
            let outcome = self
                .engine
                .bulk_op(op.op, &operands, dst, cols)
                .expect("synthesized placement is always valid");
            report.time_ns += outcome.time_ns();
            report.energy_pj += outcome.energy_pj();
            remaining -= cols;
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multi_row_beats_two_row_on_wide_ors() {
        let op = BulkOp::intra(BitwiseOp::Or, 128, 1 << 19);
        let multi = PinatuboExecutor::multi_row().execute(&op);
        let two = PinatuboExecutor::two_row().execute(&op);
        assert!(multi.time_ns < two.time_ns / 4.0);
        assert!(multi.energy_pj < two.energy_pj);
    }

    #[test]
    fn replay_honours_locality() {
        let mut x = PinatuboExecutor::multi_row();
        let intra = BulkOp::intra(BitwiseOp::Or, 4, 1 << 14);
        let mut host = intra;
        host.locality = OpClass::HostFallback;
        let r_intra = x.execute(&intra);
        let r_host = x.execute(&host);
        assert!(r_host.time_ns > r_intra.time_ns);
        assert!(r_host.energy_pj > r_intra.energy_pj);
        assert!(x.engine().stats().host_fallback > 0);
        assert!(x.engine().stats().intra_subarray > 0);
    }

    #[test]
    fn long_vectors_cost_per_segment() {
        let mut x = PinatuboExecutor::multi_row();
        let one = x.execute(&BulkOp::intra(BitwiseOp::Or, 2, 1 << 19));
        let four = x.execute(&BulkOp::intra(BitwiseOp::Or, 2, 4 << 19));
        assert!(four.time_ns > 3.5 * one.time_ns);
    }

    #[test]
    fn not_executes_with_one_operand() {
        let mut x = PinatuboExecutor::multi_row();
        let r = x.execute(&BulkOp::intra(BitwiseOp::Not, 1, 1 << 10));
        assert!(r.time_ns > 0.0);
    }

    #[test]
    fn names_reflect_configuration() {
        assert_eq!(PinatuboExecutor::multi_row().name(), "Pinatubo-128");
        assert_eq!(PinatuboExecutor::two_row().name(), "Pinatubo-2");
        assert_eq!(PinatuboExecutor::with_fan_in(16).name(), "Pinatubo-16");
    }
}
