//! The AC-PIM baseline: an accelerator-in-memory that computes every
//! bitwise operation with digital logic gates at the buffers (§6.1 —
//! "even the intra-subarray operations are implemented with digital logic
//! gates as shown in Fig. 8(b)").
//!
//! AC-PIM avoids the DDR bus like Pinatubo does, but pays for it twice:
//!
//! * **time** — every operand row must be read out through the SA mux and
//!   *streamed through a logic datapath* of finite width, instead of being
//!   combined for free inside one analog sense;
//! * **energy** — every bit moves over global data lines and toggles CMOS
//!   gates, instead of staying as an analog current on the bit line;
//! * **area** — the per-column datapath costs ~6.4% of the chip (Fig. 13).

use crate::{BitwiseExecutor, ExecReport};
use pinatubo_core::{BitwiseOp, BulkOp};
use pinatubo_nvm::energy::EnergyParams;
use pinatubo_nvm::timing::TimingParams;

/// The accelerator-in-memory executor, on the same PCM array as Pinatubo.
#[derive(Debug, Clone)]
pub struct AcPimExecutor {
    timing: TimingParams,
    energy: EnergyParams,
    /// Bits of one logical row.
    row_bits: u64,
    /// Bits per sense pass through the SA mux.
    bits_per_pass: u64,
    /// Width of the digital combine datapath.
    logic_width_bits: u64,
}

impl AcPimExecutor {
    /// AC-PIM on the paper's PCM main memory (512-bit datapath).
    #[must_use]
    pub fn new() -> Self {
        AcPimExecutor {
            timing: TimingParams::pcm_ddr3_1600(),
            energy: EnergyParams::pcm(),
            row_bits: 1 << 19,
            bits_per_pass: 1 << 14,
            logic_width_bits: 512,
        }
    }

    /// Prices reading one operand segment of `cols` bits and streaming it
    /// through the logic datapath.
    fn operand_ns(&self, cols: u64) -> f64 {
        let passes = cols.div_ceil(self.bits_per_pass);
        let stream_cycles = cols.div_ceil(self.logic_width_bits);
        self.timing.t_rcd_ns
            + passes as f64 * self.timing.t_cl_ns
            + stream_cycles as f64 * self.timing.t_gdl_cycle_ns
            + self.timing.t_rp_ns
    }

    fn segment_report(&self, op: &BulkOp, cols: u64) -> ExecReport {
        let reads = if op.op == BitwiseOp::Not {
            1
        } else {
            op.operand_count
        } as u64;
        let time_ns = reads as f64 * self.operand_ns(cols) + self.timing.t_wr_ns;
        let moved = reads * cols;
        let energy_pj = self.energy.activate_pj(reads as usize, self.row_bits)
            + self.energy.sense_pj(moved)
            + self.energy.gdl_pj(moved)
            + self.energy.logic_pj(moved)
            + self.energy.write_pj(cols)
            + self.energy.precharge_pj(self.row_bits) * reads as f64;
        ExecReport { time_ns, energy_pj }
    }
}

impl Default for AcPimExecutor {
    fn default() -> Self {
        AcPimExecutor::new()
    }
}

impl BitwiseExecutor for AcPimExecutor {
    fn name(&self) -> &str {
        "AC-PIM"
    }

    fn execute(&mut self, op: &BulkOp) -> ExecReport {
        let full = op.bits / self.row_bits;
        let rem = op.bits % self.row_bits;
        let mut report = ExecReport::zero();
        if full > 0 {
            let per = self.segment_report(op, self.row_bits);
            report.time_ns += per.time_ns * full as f64;
            report.energy_pj += per.energy_pj * full as f64;
        }
        if rem > 0 {
            report += self.segment_report(op, rem);
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streaming_makes_acpim_slow() {
        let mut ac = AcPimExecutor::new();
        let r = ac.execute(&BulkOp::intra(BitwiseOp::Or, 2, 1 << 19));
        // Two operands × 1024 GDL cycles each at 1.25 ns already exceed
        // 2.5 µs.
        assert!(r.time_ns > 2_500.0, "got {}", r.time_ns);
    }

    #[test]
    fn cost_scales_linearly_with_operands() {
        let mut ac = AcPimExecutor::new();
        let two = ac.execute(&BulkOp::intra(BitwiseOp::Or, 2, 1 << 19));
        let four = ac.execute(&BulkOp::intra(BitwiseOp::Or, 4, 1 << 19));
        assert!(four.time_ns > 1.8 * two.time_ns);
        // Energy grows sub-linearly because the single result write is
        // shared, but per-operand movement still dominates.
        assert!(four.energy_pj > 1.5 * two.energy_pj);
    }

    #[test]
    fn long_vectors_split_into_segments() {
        let mut ac = AcPimExecutor::new();
        let one = ac.execute(&BulkOp::intra(BitwiseOp::Or, 2, 1 << 19));
        let three = ac.execute(&BulkOp::intra(BitwiseOp::Or, 2, 3 << 19));
        assert!((three.time_ns - 3.0 * one.time_ns).abs() < 1e-6);
    }

    #[test]
    fn not_reads_one_operand() {
        let mut ac = AcPimExecutor::new();
        let not = ac.execute(&BulkOp::intra(BitwiseOp::Not, 1, 1 << 19));
        let or2 = ac.execute(&BulkOp::intra(BitwiseOp::Or, 2, 1 << 19));
        assert!(not.time_ns < or2.time_ns);
    }
}
