//! The S-DRAM baseline: in-DRAM bulk bitwise AND/OR via charge sharing
//! (Seshadri et al., CAL 2015 — the paper's reference \[22\]).
//!
//! Mechanism and costs:
//!
//! * DRAM reads are destructive, so operands must first be **copied** into
//!   a designated compute-row group (RowClone-style: back-to-back
//!   activations). This copy overhead is the paper's main criticism.
//! * A **triple-row activation** over the two operand copies plus a
//!   pre-initialized control row computes a bit-wise majority, giving AND
//!   (control = 0) or OR (control = 1) — two operands per step, never more.
//! * The result is copied out to its destination row.
//! * XOR and INV are not supported in DRAM and fall back to the SIMD/DRAM
//!   processor path.
//!
//! Because DRAM SAs are not column-muxed the way large NVM SAs are, one
//! activation computes over the full logical row — the "larger row buffer"
//! advantage that lets S-DRAM beat Pinatubo-2 on very long vectors
//! (paper §6.2) while losing badly to multi-row Pinatubo-128.

use crate::simd::SimdCpu;
use crate::{BitwiseExecutor, ExecReport};
use pinatubo_core::{BitwiseOp, BulkOp};
use pinatubo_nvm::energy::EnergyParams;
use pinatubo_nvm::timing::TimingParams;

/// The in-DRAM computation executor.
#[derive(Debug, Clone)]
pub struct SdramExecutor {
    timing: TimingParams,
    energy: EnergyParams,
    /// Bits of one logical (rank-wide) DRAM row.
    row_bits: u64,
    /// CPU used for the operations DRAM charge sharing cannot express.
    cpu_fallback: SimdCpu,
}

impl SdramExecutor {
    /// A 4-channel DDR3-1600 system with the default 2^19-bit logical row.
    #[must_use]
    pub fn new() -> Self {
        SdramExecutor {
            timing: TimingParams::ddr3_1600(),
            energy: EnergyParams::dram(),
            row_bits: 1 << 19,
            cpu_fallback: SimdCpu::with_dram(),
        }
    }

    /// Forwards the workload-footprint hint to the CPU fallback (XOR/INV
    /// ops take that path).
    pub fn set_workload_footprint(&mut self, bytes: Option<u64>) {
        self.cpu_fallback.set_workload_footprint(bytes);
    }

    /// One RowClone-style row copy: activate source, activate destination
    /// before precharge, restore, precharge.
    fn copy_ns(&self) -> f64 {
        self.timing.t_rcd_ns + self.timing.t_wr_ns + self.timing.t_rp_ns
    }

    /// One triple-row activation (simultaneous charge sharing) plus
    /// precharge.
    fn triple_activate_ns(&self) -> f64 {
        1.5 * self.timing.t_rcd_ns + self.timing.t_rp_ns
    }

    /// Prices an n-operand AND/OR over one row segment.
    fn segment_report(&self, operand_count: usize) -> ExecReport {
        let n = operand_count as u64;
        // Copies: every operand in, one control-row init, one result out.
        let copies = n + 2;
        // Chained 2-at-a-time combines.
        let triple_acts = n - 1;
        let time_ns =
            copies as f64 * self.copy_ns() + triple_acts as f64 * self.triple_activate_ns();
        // Each copy touches two rows (src activate + dst activate), each
        // triple activation three rows; DRAM activation energy includes the
        // destructive-read restore.
        let rows_activated = copies * 2 + triple_acts * 3;
        let energy_pj = self
            .energy
            .activate_pj(rows_activated as usize, self.row_bits)
            + self.energy.precharge_pj(self.row_bits) * (copies + triple_acts) as f64;
        ExecReport { time_ns, energy_pj }
    }
}

impl Default for SdramExecutor {
    fn default() -> Self {
        SdramExecutor::new()
    }
}

impl BitwiseExecutor for SdramExecutor {
    fn name(&self) -> &str {
        "S-DRAM"
    }

    fn execute(&mut self, op: &BulkOp) -> ExecReport {
        match op.op {
            BitwiseOp::And | BitwiseOp::Or => {
                // Row-granular: short vectors still pay full-row costs, long
                // vectors span serial row segments.
                let segments = op.bits.div_ceil(self.row_bits);
                let per_segment = self.segment_report(op.operand_count);
                ExecReport {
                    time_ns: per_segment.time_ns * segments as f64,
                    energy_pj: per_segment.energy_pj * segments as f64,
                }
            }
            // Charge sharing cannot produce XOR or INV; the data takes the
            // conventional path through the CPU.
            BitwiseOp::Xor | BitwiseOp::Not => self.cpu_fallback.execute(op),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn or_is_row_granular() {
        let mut s = SdramExecutor::new();
        let short = s.execute(&BulkOp::intra(BitwiseOp::Or, 2, 1 << 10));
        let long = s.execute(&BulkOp::intra(BitwiseOp::Or, 2, 1 << 19));
        // Same number of row operations → same cost.
        assert!((short.time_ns - long.time_ns).abs() < 1e-9);
        // Two rows' worth crosses into a second segment.
        let double = s.execute(&BulkOp::intra(BitwiseOp::Or, 2, 1 << 20));
        assert!((double.time_ns - 2.0 * long.time_ns).abs() < 1e-9);
    }

    #[test]
    fn xor_falls_back_to_cpu() {
        let mut s = SdramExecutor::new();
        let mut cpu = SimdCpu::with_dram();
        let op = BulkOp::intra(BitwiseOp::Xor, 2, 1 << 19);
        let via_sdram = s.execute(&op);
        let via_cpu = cpu.execute(&op);
        assert!((via_sdram.time_ns - via_cpu.time_ns).abs() < 1e-9);
    }

    #[test]
    fn chaining_scales_with_operands() {
        let mut s = SdramExecutor::new();
        let two = s.execute(&BulkOp::intra(BitwiseOp::Or, 2, 1 << 19));
        let eight = s.execute(&BulkOp::intra(BitwiseOp::Or, 8, 1 << 19));
        assert!(eight.time_ns > 2.0 * two.time_ns);
    }

    #[test]
    fn copy_overhead_dominates_a_two_row_op() {
        let s = SdramExecutor::new();
        let copies = 4.0 * s.copy_ns();
        let compute = s.triple_activate_ns();
        assert!(
            copies > 2.0 * compute,
            "the paper's criticism: copies dwarf the op"
        );
    }
}
