//! The executors the paper evaluates Pinatubo against (§6.1).
//!
//! Every executor prices the same abstract [`BulkOp`] trace, so comparisons
//! hold the *work* constant and vary only the hardware:
//!
//! * [`simd::SimdCpu`] — a 4-core, 3.3 GHz out-of-order processor with
//!   128-bit SSE/AVX units and a 32 KB / 256 KB / 6 MB cache hierarchy,
//!   attached to DRAM or PCM main memory (the paper's Sniper-simulated
//!   baseline);
//! * [`sdram::SdramExecutor`] — in-DRAM charge-sharing bitwise ops
//!   (Seshadri et al. \[22\]): operands must first be *copied* to a compute
//!   row group (DRAM reads are destructive), then a triple-row activation
//!   produces a 2-row AND/OR; XOR and INV fall back to the CPU;
//! * [`acpim::AcPimExecutor`] — an accelerator-in-memory that computes
//!   every operation with digital gates at the buffers (Fig. 8b applied
//!   pervasively);
//! * [`pinatubo_exec::PinatuboExecutor`] — Pinatubo itself, priced by
//!   replaying the trace on the real [`pinatubo_core::PinatuboEngine`];
//! * [`ideal::IdealExecutor`] — zero-cost bitwise ops (the "Ideal" series
//!   of Fig. 12).
//!
//! # Example
//!
//! ```
//! use pinatubo_baselines::{BitwiseExecutor, ExecReport};
//! use pinatubo_baselines::pinatubo_exec::PinatuboExecutor;
//! use pinatubo_baselines::simd::SimdCpu;
//! use pinatubo_core::{BitwiseOp, BulkOp};
//!
//! let op = BulkOp::intra(BitwiseOp::Or, 128, 1 << 19);
//! let mut pim = PinatuboExecutor::multi_row();
//! let mut cpu = SimdCpu::with_pcm();
//! let speedup = cpu.execute(&op).time_ns / pim.execute(&op).time_ns;
//! assert!(speedup > 100.0, "multi-row OR should win by orders of magnitude");
//! ```

#![warn(missing_docs)]

pub mod acpim;
pub mod ideal;
pub mod pinatubo_exec;
pub mod sdram;
pub mod simd;

pub use acpim::AcPimExecutor;
pub use ideal::IdealExecutor;
pub use pinatubo_exec::PinatuboExecutor;
pub use sdram::SdramExecutor;
pub use simd::SimdCpu;

use pinatubo_core::BulkOp;
use std::ops::{Add, AddAssign};

/// The cost of executing some work on one executor.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ExecReport {
    /// Simulated time, nanoseconds.
    pub time_ns: f64,
    /// Energy, picojoules.
    pub energy_pj: f64,
}

impl ExecReport {
    /// A zero-cost report.
    #[must_use]
    pub fn zero() -> Self {
        ExecReport::default()
    }

    /// Throughput in gigabytes per second for `bits` of work done in this
    /// report's time (the paper's Fig. 9 metric counts *operand* bits).
    ///
    /// Returns infinity for zero-time reports (the ideal executor).
    #[must_use]
    pub fn throughput_gbps(&self, bits: u64) -> f64 {
        let bytes = bits as f64 / 8.0;
        bytes / self.time_ns
    }
}

impl Add for ExecReport {
    type Output = ExecReport;
    fn add(self, rhs: ExecReport) -> ExecReport {
        ExecReport {
            time_ns: self.time_ns + rhs.time_ns,
            energy_pj: self.energy_pj + rhs.energy_pj,
        }
    }
}

impl AddAssign for ExecReport {
    fn add_assign(&mut self, rhs: ExecReport) {
        *self = *self + rhs;
    }
}

/// Anything that can execute a bulk bitwise operation and report its cost.
///
/// Implementations are stateful (Pinatubo's executor owns a memory whose
/// mode register caches across ops), hence `&mut self`.
pub trait BitwiseExecutor {
    /// Display name used in figure output ("SIMD", "S-DRAM", …).
    fn name(&self) -> &str;

    /// Prices one bulk operation.
    fn execute(&mut self, op: &BulkOp) -> ExecReport;

    /// Prices a whole trace (sum of per-op reports).
    fn execute_trace(&mut self, trace: &[BulkOp]) -> ExecReport {
        trace
            .iter()
            .fold(ExecReport::zero(), |acc, op| acc + self.execute(op))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reports_add() {
        let a = ExecReport {
            time_ns: 1.0,
            energy_pj: 2.0,
        };
        let b = ExecReport {
            time_ns: 3.0,
            energy_pj: 4.0,
        };
        let c = a + b;
        assert!((c.time_ns - 4.0).abs() < 1e-12);
        assert!((c.energy_pj - 6.0).abs() < 1e-12);
    }

    #[test]
    fn throughput_counts_operand_bytes() {
        let r = ExecReport {
            time_ns: 100.0,
            energy_pj: 0.0,
        };
        // 8000 bits = 1000 bytes in 100 ns = 10 GB/s.
        assert!((r.throughput_gbps(8000) - 10.0).abs() < 1e-12);
    }
}
