//! The ideal executor: bitwise operations at zero time and zero energy.
//!
//! Fig. 12's "Ideal" series uses this to show the upper bound Amdahl's law
//! allows — Pinatubo "almost achieves the ideal acceleration" because the
//! bitwise portion all but vanishes from the application.

use crate::{BitwiseExecutor, ExecReport};
use pinatubo_core::BulkOp;

/// An executor whose bitwise operations are free.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IdealExecutor;

impl IdealExecutor {
    /// Creates the ideal executor.
    #[must_use]
    pub fn new() -> Self {
        IdealExecutor
    }
}

impl BitwiseExecutor for IdealExecutor {
    fn name(&self) -> &str {
        "Ideal"
    }

    fn execute(&mut self, _op: &BulkOp) -> ExecReport {
        ExecReport::zero()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pinatubo_core::{BitwiseOp, BulkOp};

    #[test]
    fn everything_is_free() {
        let mut x = IdealExecutor::new();
        let r = x.execute(&BulkOp::intra(BitwiseOp::Or, 128, 1 << 20));
        assert_eq!(r, ExecReport::zero());
        let trace = vec![BulkOp::intra(BitwiseOp::Xor, 2, 1 << 19); 10];
        assert_eq!(x.execute_trace(&trace), ExecReport::zero());
    }
}
