//! Bit-serial arithmetic µ-programs over bit-transposed vectors.
//!
//! The paper's engine stops at bulk OR/AND/XOR/INV; SIMDRAM (PAPERS.md)
//! shows these primitives synthesize integer arithmetic when the data is
//! laid out *bit-transposed*: plane `k` is a memory row holding bit `k`
//! of every lane, so one bulk operation over planes is one bit-step of a
//! ripple chain over all lanes at once.
//!
//! This module is that promotion into the runtime ISA, in three layers:
//!
//! 1. [`TransposedVec`] — the bit-sliced layout, allocated as one
//!    page-aligned row group by [`crate::alloc::PimAllocator::alloc_transposed`];
//! 2. [`MicroProgram`] — one arithmetic op ([`ArithOp`]) over transposed
//!    operands, expanded into a boolean expression DAG per output bit
//!    (ripple-carry adder, borrow-chain comparator, compare-select mux);
//! 3. [`compile`] — the perf core: a batch of µ-programs is hash-consed
//!    into *one* DAG (common-subexpression elimination shares carry and
//!    borrow chains across programs), algebraically simplified, same-op
//!    chains are fused into multi-operand requests, and scratch planes
//!    are recycled by last-use liveness before the flattened
//!    [`BatchRequest`] list goes to the existing `plan_batch` lookahead
//!    beam. The compiled batch streams through [`ExecSession`] unchanged.
//!
//! Fusion/CSE is gated by [`CompileOptions`], so benchmarks can measure
//! the optimized pipeline against naive per-program expansion
//! ([`CompileOptions::unoptimized`]) on identical inputs.

use crate::bitvec::PimBitVec;
use crate::isa::PimInstruction;
use crate::pool::ExecSession;
use crate::scheduler::{BatchRequest, ScheduleReport};
use crate::system::PimSystem;
use crate::RuntimeError;
use pinatubo_core::{ArithOp, BitwiseOp};
use std::collections::{HashMap, HashSet};

/// A bit-transposed (bit-sliced) integer vector: plane `k` holds bit `k`
/// (LSB first) of every lane, one full memory-row group per plane.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransposedVec {
    planes: Vec<PimBitVec>,
    lanes: u64,
}

impl TransposedVec {
    /// Wraps already-allocated planes (plane `k` = bit `k`, LSB first).
    /// Each plane must hold exactly `lanes` bits.
    #[must_use]
    pub fn from_planes(planes: Vec<PimBitVec>, lanes: u64) -> Self {
        assert!(
            (1..=64).contains(&planes.len()),
            "a transposed vector needs 1..=64 planes, got {}",
            planes.len()
        );
        for p in &planes {
            assert_eq!(
                p.len_bits(),
                lanes,
                "every bit-plane must hold exactly one bit per lane"
            );
        }
        TransposedVec { planes, lanes }
    }

    /// Number of integer lanes.
    #[must_use]
    pub fn lanes(&self) -> u64 {
        self.lanes
    }

    /// Lane width in bits (= number of planes).
    #[must_use]
    pub fn width_bits(&self) -> u32 {
        self.planes.len() as u32
    }

    /// The bit-planes, LSB first.
    #[must_use]
    pub fn planes(&self) -> &[PimBitVec] {
        &self.planes
    }
}

impl PimSystem {
    /// Allocates a [`TransposedVec`] of `lanes` integers, `width_bits`
    /// bits each — `width_bits` page-aligned planes placed as one row
    /// group (see [`crate::alloc::PimAllocator::alloc_transposed`]).
    ///
    /// # Errors
    ///
    /// See [`crate::alloc::PimAllocator::alloc`].
    pub fn alloc_transposed(
        &mut self,
        lanes: u64,
        width_bits: u32,
    ) -> Result<TransposedVec, RuntimeError> {
        let planes = self.alloc_transposed_planes(lanes, width_bits)?;
        Ok(TransposedVec { planes, lanes })
    }

    /// Stores integer lanes into a transposed vector (host-side
    /// transpose; uncharged setup traffic like [`PimSystem::store`]).
    /// Values are masked to the lane width; missing tail lanes stay zero.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::StoreTooLong`] if more lanes are offered than the
    /// vector holds.
    pub fn store_lanes(&mut self, vec: &TransposedVec, values: &[u64]) -> Result<(), RuntimeError> {
        if values.len() as u64 > vec.lanes {
            return Err(RuntimeError::StoreTooLong {
                capacity_bits: vec.lanes,
                got_bits: values.len() as u64,
            });
        }
        for (k, plane) in vec.planes.iter().enumerate() {
            let bits: Vec<bool> = values.iter().map(|&v| v >> k & 1 == 1).collect();
            self.store(plane, &bits)?;
        }
        Ok(())
    }

    /// Reads a transposed vector back as integer lanes (uncharged
    /// verification helper, like [`PimSystem::load`]).
    #[must_use]
    pub fn load_lanes(&self, vec: &TransposedVec) -> Vec<u64> {
        let mut out = vec![0u64; vec.lanes as usize];
        for (k, plane) in vec.planes.iter().enumerate() {
            for (i, bit) in self.load(plane).into_iter().enumerate() {
                if bit {
                    out[i] |= 1u64 << k;
                }
            }
        }
        out
    }
}

/// Where a µ-program writes its result.
#[derive(Debug, Clone)]
pub enum MicroOut {
    /// A full-width transposed result (Add/Sub/Max/Min).
    Vector(TransposedVec),
    /// A one-bit-per-lane mask (comparisons).
    Mask(PimBitVec),
}

/// One bit-serial arithmetic operation over transposed operands.
///
/// Constructors validate shapes eagerly (matching widths and lane
/// counts); expansion into bitwise requests happens at [`compile`] time
/// so a whole batch shares one expression DAG.
#[derive(Debug, Clone)]
pub struct MicroProgram {
    op: ArithOp,
    a: TransposedVec,
    b: Option<TransposedVec>,
    konst: u64,
    out: MicroOut,
}

impl MicroProgram {
    fn binary(op: ArithOp, a: &TransposedVec, b: &TransposedVec, out: MicroOut) -> Self {
        assert_eq!(a.width_bits(), b.width_bits(), "operand widths must match");
        assert_eq!(a.lanes(), b.lanes(), "operand lane counts must match");
        let prog = MicroProgram {
            op,
            a: a.clone(),
            b: Some(b.clone()),
            konst: 0,
            out,
        };
        prog.check_out();
        prog
    }

    fn check_out(&self) {
        match &self.out {
            MicroOut::Vector(dst) => {
                assert!(
                    !self.op.result_is_mask(),
                    "{} produces a mask, not a vector",
                    self.op
                );
                assert_eq!(dst.width_bits(), self.a.width_bits());
                assert_eq!(dst.lanes(), self.a.lanes());
            }
            MicroOut::Mask(dst) => {
                assert!(
                    self.op.result_is_mask(),
                    "{} produces a vector, not a mask",
                    self.op
                );
                assert_eq!(dst.len_bits(), self.a.lanes());
            }
        }
    }

    /// `dst = a + b` (lane-wise, wrapping).
    #[must_use]
    pub fn add(a: &TransposedVec, b: &TransposedVec, dst: &TransposedVec) -> Self {
        Self::binary(ArithOp::Add, a, b, MicroOut::Vector(dst.clone()))
    }

    /// `dst = a - b` (lane-wise, two's-complement wrapping).
    #[must_use]
    pub fn sub(a: &TransposedVec, b: &TransposedVec, dst: &TransposedVec) -> Self {
        Self::binary(ArithOp::Sub, a, b, MicroOut::Vector(dst.clone()))
    }

    /// `mask = a >= b` (lane-wise, unsigned).
    #[must_use]
    pub fn cmp_ge(a: &TransposedVec, b: &TransposedVec, mask: &PimBitVec) -> Self {
        Self::binary(ArithOp::CmpGe, a, b, MicroOut::Mask(mask.clone()))
    }

    /// `mask = a < b` (lane-wise, unsigned).
    #[must_use]
    pub fn cmp_lt(a: &TransposedVec, b: &TransposedVec, mask: &PimBitVec) -> Self {
        Self::binary(ArithOp::CmpLt, a, b, MicroOut::Mask(mask.clone()))
    }

    /// `dst = max(a, b)` (lane-wise, unsigned compare-select).
    #[must_use]
    pub fn max(a: &TransposedVec, b: &TransposedVec, dst: &TransposedVec) -> Self {
        Self::binary(ArithOp::Max, a, b, MicroOut::Vector(dst.clone()))
    }

    /// `dst = min(a, b)` (lane-wise, unsigned compare-select).
    #[must_use]
    pub fn min(a: &TransposedVec, b: &TransposedVec, dst: &TransposedVec) -> Self {
        Self::binary(ArithOp::Min, a, b, MicroOut::Vector(dst.clone()))
    }

    /// `mask = a > constant` (lane-wise, unsigned). The constant's
    /// bit-planes are uniform, so they fold away at compile time — the
    /// chain degenerates to one AND or OR per bit position.
    #[must_use]
    pub fn threshold_const(a: &TransposedVec, constant: u64, mask: &PimBitVec) -> Self {
        let prog = MicroProgram {
            op: ArithOp::ThresholdConst,
            a: a.clone(),
            b: None,
            konst: constant & ArithOp::lane_mask(a.width_bits()),
            out: MicroOut::Mask(mask.clone()),
        };
        prog.check_out();
        prog
    }

    /// `mask = a >= constant` — [`MicroProgram::threshold_const`] shifted
    /// by one (`a >= c` ⟺ `a > c - 1`, and `a >= 0` is constant true).
    #[must_use]
    pub fn cmp_ge_const(a: &TransposedVec, constant: u64, mask: &PimBitVec) -> Self {
        let width = a.width_bits();
        let c = constant.min(ArithOp::lane_mask(width).saturating_add(1));
        let prog = MicroProgram {
            op: ArithOp::CmpGe,
            a: a.clone(),
            b: None,
            konst: c,
            out: MicroOut::Mask(mask.clone()),
        };
        prog.check_out();
        prog
    }

    /// `dst = a << shift` (lane-wise, logical). In the transposed layout
    /// this is a pure plane-index remap — output plane `k` is input plane
    /// `k - shift`, with the vacated low planes constant zero — so it
    /// compiles to zero logic gates: only the output copy/zeroing
    /// requests remain. Shifts at or beyond the lane width produce zero.
    #[must_use]
    pub fn shl_const(a: &TransposedVec, shift: u32, dst: &TransposedVec) -> Self {
        let prog = MicroProgram {
            op: ArithOp::ShlConst,
            a: a.clone(),
            b: None,
            konst: u64::from(shift.min(a.width_bits())),
            out: MicroOut::Vector(dst.clone()),
        };
        prog.check_out();
        prog
    }

    /// `dst = a >> shift` (lane-wise, logical) — the mirror plane-index
    /// remap of [`MicroProgram::shl_const`]: output plane `k` is input
    /// plane `k + shift`, with the vacated high planes constant zero.
    #[must_use]
    pub fn shr_const(a: &TransposedVec, shift: u32, dst: &TransposedVec) -> Self {
        let prog = MicroProgram {
            op: ArithOp::ShrConst,
            a: a.clone(),
            b: None,
            konst: u64::from(shift.min(a.width_bits())),
            out: MicroOut::Vector(dst.clone()),
        };
        prog.check_out();
        prog
    }

    /// The arithmetic operation.
    #[must_use]
    pub fn op(&self) -> ArithOp {
        self.op
    }

    /// The result location.
    #[must_use]
    pub fn out(&self) -> &MicroOut {
        &self.out
    }

    /// Output planes, in bit order (one plane for masks).
    fn out_planes(&self) -> Vec<PimBitVec> {
        match &self.out {
            MicroOut::Vector(v) => v.planes.clone(),
            MicroOut::Mask(m) => vec![m.clone()],
        }
    }

    /// Scalar reference result for one lane (delegates to
    /// [`ArithOp::eval_lane`]; the second operand is the lane of `b` or
    /// the broadcast constant).
    #[must_use]
    pub fn reference_lane(&self, a: u64, b: u64) -> u64 {
        let rhs = if self.b.is_some() { b } else { self.konst };
        // `cmp_ge_const` stores a konst that may exceed the lane range by
        // one (the constant-false encoding); eval_lane would mask it.
        if self.b.is_none() && self.konst > ArithOp::lane_mask(self.a.width_bits()) {
            return 0;
        }
        self.op.eval_lane(a, rhs, self.a.width_bits())
    }
}

/// Compiler switches: both on by default (the optimized pipeline);
/// [`CompileOptions::unoptimized`] keeps only the constant folding any
/// hand-rolled bit-serial ladder would do, for A/B measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompileOptions {
    /// Hash-cons the batch into one DAG: identical subexpressions
    /// (shared carry/borrow chains, repeated plane terms) are computed
    /// once, plus algebraic simplification (idempotence, complement,
    /// absorption, double negation).
    pub cse: bool,
    /// Flatten single-use chains of the same associative op into one
    /// multi-operand request (one scratch write instead of one per
    /// pairwise step; OR additionally exploits multi-row activation
    /// fan-in).
    pub fuse: bool,
}

impl CompileOptions {
    /// Fusion and CSE on.
    #[must_use]
    pub fn optimized() -> Self {
        CompileOptions {
            cse: true,
            fuse: true,
        }
    }

    /// Naive per-program expansion (constant folding only).
    #[must_use]
    pub fn unoptimized() -> Self {
        CompileOptions {
            cse: false,
            fuse: false,
        }
    }
}

impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions::optimized()
    }
}

/// One node of the boolean expression DAG. Gate args are node indices,
/// always smaller than the node's own index (construction is bottom-up),
/// so index order is a topological order.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum Expr {
    /// An operand plane (index into `Builder::inputs`).
    Input(usize),
    /// A uniform plane (folded away except as an output root).
    Const(bool),
    /// Negation.
    Not(usize),
    /// An associative gate: Or, And or Xor over ≥ 2 args.
    Gate(BitwiseOp, Vec<usize>),
}

/// DAG builder with always-on constant folding and opt-in hash-consing +
/// algebraic simplification.
struct Builder {
    opts: CompileOptions,
    exprs: Vec<Expr>,
    memo: HashMap<Expr, usize>,
    inputs: Vec<PimBitVec>,
    input_nodes: HashMap<u64, usize>,
    const_nodes: [Option<usize>; 2],
    /// Output plane id → producing node: a later program reading a plane
    /// this batch writes consumes the *value*, never a stale row. Always
    /// on — it is a correctness rule, not an optimization (output copies
    /// are emitted after all gate requests).
    written: HashMap<u64, usize>,
    /// Every output plane id in the batch, for read-before-write checks.
    dst_ids: HashSet<u64>,
}

impl Builder {
    fn new(opts: CompileOptions, dst_ids: HashSet<u64>) -> Self {
        Builder {
            opts,
            exprs: Vec::new(),
            memo: HashMap::new(),
            inputs: Vec::new(),
            input_nodes: HashMap::new(),
            const_nodes: [None, None],
            written: HashMap::new(),
            dst_ids,
        }
    }

    fn push(&mut self, e: Expr) -> usize {
        self.exprs.push(e);
        self.exprs.len() - 1
    }

    fn intern(&mut self, e: Expr) -> usize {
        if self.opts.cse {
            if let Some(&n) = self.memo.get(&e) {
                return n;
            }
            let n = self.push(e.clone());
            self.memo.insert(e, n);
            n
        } else {
            self.push(e)
        }
    }

    fn constant(&mut self, v: bool) -> usize {
        let slot = usize::from(v);
        if let Some(n) = self.const_nodes[slot] {
            return n;
        }
        let n = self.push(Expr::Const(v));
        self.const_nodes[slot] = Some(n);
        n
    }

    fn input(&mut self, plane: &PimBitVec) -> usize {
        if let Some(&n) = self.written.get(&plane.id()) {
            return n;
        }
        assert!(
            !self.dst_ids.contains(&plane.id()),
            "µ-program input plane {} is overwritten later in the same batch \
             (destinations must be fresh or read only after their producer)",
            plane.id()
        );
        if let Some(&n) = self.input_nodes.get(&plane.id()) {
            return n;
        }
        let idx = self.inputs.len();
        self.inputs.push(plane.clone());
        let n = self.push(Expr::Input(idx));
        self.input_nodes.insert(plane.id(), n);
        n
    }

    fn not(&mut self, x: usize) -> usize {
        match self.exprs[x] {
            Expr::Const(v) => self.constant(!v),
            Expr::Not(y) => y,
            _ => self.intern(Expr::Not(x)),
        }
    }

    /// Builds `op(args…)` for an associative op, folding constants
    /// (always) and simplifying algebraically (when `cse`).
    fn gate(&mut self, op: BitwiseOp, args: Vec<usize>) -> usize {
        debug_assert!(op.is_binary());
        // Constant folding: uniform planes never cost a request.
        let mut parity = false; // XOR: each true operand flips the result
        let mut kept: Vec<usize> = Vec::with_capacity(args.len());
        for a in args {
            match (op, &self.exprs[a]) {
                (BitwiseOp::Or, Expr::Const(true)) | (BitwiseOp::And, Expr::Const(false)) => {
                    return self.constant(matches!(op, BitwiseOp::Or));
                }
                (BitwiseOp::Or, Expr::Const(false)) | (BitwiseOp::And, Expr::Const(true)) => {}
                (BitwiseOp::Xor, Expr::Const(v)) => parity ^= v,
                _ => kept.push(a),
            }
        }
        if self.opts.cse {
            kept.sort_unstable();
            match op {
                // Idempotence: x OP x = x.
                BitwiseOp::Or | BitwiseOp::And => kept.dedup(),
                // Self-inverse: x ^ x = 0.
                BitwiseOp::Xor => {
                    let mut out = Vec::with_capacity(kept.len());
                    for a in kept {
                        if out.last() == Some(&a) {
                            out.pop();
                        } else {
                            out.push(a);
                        }
                    }
                    kept = out;
                }
                BitwiseOp::Not => unreachable!(),
            }
            // Complement: x against ¬x decides OR/AND outright.
            if kept.len() >= 2 && matches!(op, BitwiseOp::Or | BitwiseOp::And) {
                let set: HashSet<usize> = kept.iter().copied().collect();
                for &a in &kept {
                    if let Expr::Not(y) = self.exprs[a] {
                        if set.contains(&y) {
                            return self.constant(matches!(op, BitwiseOp::Or));
                        }
                    }
                }
            }
            // Absorption: or(x, and(…, ¬x, …)) = or(x, and(…)) — the
            // borrow-chain shape `carry' = a | (carry & ¬a)`.
            if op == BitwiseOp::Or && kept.len() == 2 {
                for (i, j) in [(0, 1), (1, 0)] {
                    let (x, g) = (kept[j], kept[i]);
                    if let Expr::Gate(BitwiseOp::And, gargs) = &self.exprs[g] {
                        let gargs = gargs.clone();
                        let trimmed: Vec<usize> = gargs
                            .iter()
                            .copied()
                            .filter(|&n| !matches!(self.exprs[n], Expr::Not(y) if y == x))
                            .collect();
                        if trimmed.len() < gargs.len() {
                            let inner = self.gate(BitwiseOp::And, trimmed);
                            return self.gate(BitwiseOp::Or, vec![x, inner]);
                        }
                    }
                }
            }
        }
        let base = match kept.len() {
            0 => self.constant(matches!(op, BitwiseOp::And)),
            1 => kept[0],
            _ => self.intern(Expr::Gate(op, kept)),
        };
        if parity {
            self.not(base)
        } else {
            base
        }
    }

    /// Operand planes of `v` as input nodes, LSB first.
    fn plane_nodes(&mut self, v: &TransposedVec) -> Vec<usize> {
        v.planes.iter().map(|p| self.input(p)).collect()
    }

    /// Ripple carry chain for `a + b_in + carry_in`: per bit,
    /// `x = a ⊕ b`, `sum = x ⊕ carry`, `carry' = (a ∧ b) ∨ (carry ∧ x)`.
    /// Sums are built only when requested (comparisons need the carry
    /// alone); unused final carries die in the reachability pass.
    fn ripple_chain(
        &mut self,
        a: &[usize],
        b: &[usize],
        carry_in: usize,
        want_sums: bool,
    ) -> (Vec<usize>, usize) {
        let mut carry = carry_in;
        let mut sums = Vec::new();
        for k in 0..a.len() {
            let x = self.gate(BitwiseOp::Xor, vec![a[k], b[k]]);
            if want_sums {
                sums.push(self.gate(BitwiseOp::Xor, vec![x, carry]));
            }
            let g = self.gate(BitwiseOp::And, vec![a[k], b[k]]);
            let p = self.gate(BitwiseOp::And, vec![carry, x]);
            carry = self.gate(BitwiseOp::Or, vec![g, p]);
        }
        (sums, carry)
    }

    /// `a ≥ b` as the carry-out of `a + ¬b + 1` (no borrow materialized).
    fn ge_chain(&mut self, a: &[usize], b: &[usize]) -> usize {
        let nb: Vec<usize> = b.iter().map(|&x| self.not(x)).collect();
        let t = self.constant(true);
        self.ripple_chain(a, &nb, t, false).1
    }

    /// Carry-out of `a + ¬c + 1` for a constant `c ≥ 1` whose uniform
    /// planes fold away: per bit, `carry' = carry ∧ aₖ` (c-bit 1) or
    /// `aₖ ∨ (carry ∧ ¬aₖ)` (c-bit 0; absorption reduces it to
    /// `aₖ ∨ carry`). The seed is the k = 0 step with carry-in 1 folded:
    /// `a₀` or constant true.
    fn ge_const_chain(&mut self, a: &[usize], c: u64) -> usize {
        debug_assert!(c >= 1);
        let mut carry = if c & 1 == 1 {
            a[0]
        } else {
            self.constant(true)
        };
        for (k, &ak) in a.iter().enumerate().skip(1) {
            carry = if c >> k & 1 == 1 {
                self.gate(BitwiseOp::And, vec![carry, ak])
            } else {
                let na = self.not(ak);
                let t = self.gate(BitwiseOp::And, vec![carry, na]);
                self.gate(BitwiseOp::Or, vec![ak, t])
            };
        }
        carry
    }

    /// Expands one µ-program; returns `(root node, output plane)` pairs.
    fn build_program(&mut self, p: &MicroProgram) -> Vec<(usize, PimBitVec)> {
        let a = self.plane_nodes(&p.a);
        let width = p.a.width_bits();
        let max = ArithOp::lane_mask(width);
        let roots: Vec<usize> = match (p.op, &p.b) {
            (ArithOp::Add, Some(b)) => {
                let b = self.plane_nodes(b);
                let f = self.constant(false);
                self.ripple_chain(&a, &b, f, true).0
            }
            (ArithOp::Sub, Some(b)) => {
                let b = self.plane_nodes(b);
                let nb: Vec<usize> = b.iter().map(|&x| self.not(x)).collect();
                let t = self.constant(true);
                self.ripple_chain(&a, &nb, t, true).0
            }
            (ArithOp::CmpGe, Some(b)) => {
                let b = self.plane_nodes(b);
                vec![self.ge_chain(&a, &b)]
            }
            (ArithOp::CmpLt, Some(b)) => {
                let b = self.plane_nodes(b);
                let ge = self.ge_chain(&a, &b);
                vec![self.not(ge)]
            }
            (ArithOp::Max | ArithOp::Min, Some(b)) => {
                let b = self.plane_nodes(b);
                let ge = self.ge_chain(&a, &b);
                let nge = self.not(ge);
                // Compare-select: the winner's plane through the mask.
                let (am, bm) = if p.op == ArithOp::Max {
                    (ge, nge)
                } else {
                    (nge, ge)
                };
                (0..width as usize)
                    .map(|k| {
                        let ta = self.gate(BitwiseOp::And, vec![a[k], am]);
                        let tb = self.gate(BitwiseOp::And, vec![b[k], bm]);
                        self.gate(BitwiseOp::Or, vec![ta, tb])
                    })
                    .collect()
            }
            (ArithOp::ThresholdConst, None) => {
                // a > c ⟺ a ≥ c + 1; a > max is constant false.
                if p.konst >= max {
                    vec![self.constant(false)]
                } else {
                    vec![self.ge_const_chain(&a, p.konst + 1)]
                }
            }
            (ArithOp::CmpGe, None) => {
                if p.konst == 0 {
                    vec![self.constant(true)]
                } else if p.konst > max {
                    vec![self.constant(false)]
                } else {
                    vec![self.ge_const_chain(&a, p.konst)]
                }
            }
            (ArithOp::ShlConst, None) => {
                // Plane-index remap, no gates: output plane k reads input
                // plane k - s; the vacated low planes are constant zero.
                let s = usize::try_from(p.konst).unwrap_or(usize::MAX);
                (0..width as usize)
                    .map(|k| {
                        if k >= s {
                            a[k - s]
                        } else {
                            self.constant(false)
                        }
                    })
                    .collect()
            }
            (ArithOp::ShrConst, None) => {
                let s = usize::try_from(p.konst).unwrap_or(usize::MAX);
                (0..width as usize)
                    .map(|k| {
                        if k.checked_add(s).is_some_and(|i| i < width as usize) {
                            a[k + s]
                        } else {
                            self.constant(false)
                        }
                    })
                    .collect()
            }
            _ => unreachable!("constructors pair operands with operations"),
        };
        let outputs: Vec<(usize, PimBitVec)> = roots.into_iter().zip(p.out_planes()).collect();
        for (root, plane) in &outputs {
            self.written.insert(plane.id(), *root);
        }
        outputs
    }
}

/// A µ-program's compiled form: the flattened request list (already in a
/// dependence-respecting order) plus the scratch planes it owns.
#[derive(Debug)]
pub struct CompiledBatch {
    requests: Vec<BatchRequest>,
    scratch: Vec<PimBitVec>,
    live_gates: usize,
}

impl CompiledBatch {
    /// The bulk-bitwise requests, in a valid serial order. Hand them to
    /// [`PimSystem::execute_batch`] / [`ExecSession::submit_batch`]
    /// directly, or through the convenience methods below.
    #[must_use]
    pub fn requests(&self) -> &[BatchRequest] {
        &self.requests
    }

    /// Scratch planes the batch recycled via liveness (the peak live
    /// count, not one per intermediate value).
    #[must_use]
    pub fn scratch_planes(&self) -> usize {
        self.scratch.len()
    }

    /// Live gate nodes after CSE/fusion (requests minus output copies).
    #[must_use]
    pub fn live_gates(&self) -> usize {
        self.live_gates
    }

    /// Runs the batch through the lookahead planner and channel-parallel
    /// executor.
    ///
    /// # Errors
    ///
    /// See [`PimSystem::execute_batch`].
    pub fn execute(&self, sys: &mut PimSystem) -> Result<ScheduleReport, RuntimeError> {
        sys.execute_batch(&self.requests)
    }

    /// Runs the batch one request at a time (the reference path).
    ///
    /// # Errors
    ///
    /// See [`PimSystem::execute_batch_serial`].
    pub fn execute_serial(&self, sys: &mut PimSystem) -> Result<ScheduleReport, RuntimeError> {
        sys.execute_batch_serial(&self.requests)
    }

    /// Streams the batch through a persistent [`ExecSession`] unchanged —
    /// µ-programs are ordinary batch requests to the pool.
    ///
    /// # Errors
    ///
    /// See [`ExecSession::submit_batch`].
    pub fn submit(&self, session: &mut ExecSession<'_>) -> Result<Vec<usize>, RuntimeError> {
        session.submit_batch(&self.requests)
    }

    /// Lowers the batch to the wire ISA: one [`PimInstruction`] per row
    /// segment, in request order.
    #[must_use]
    pub fn instructions(&self, row_bits: u64) -> Vec<PimInstruction> {
        crate::isa::instructions_for_requests(&self.requests, row_bits)
    }

    /// Returns the scratch planes to the allocator (the destination
    /// vectors stay live — they belong to the caller). Returns how many
    /// rows were released.
    pub fn release(self, sys: &mut PimSystem) -> usize {
        sys.release_vecs(self.scratch.iter())
    }
}

/// Where a node's value lives during lowering.
#[derive(Debug, Clone)]
enum AbsLoc {
    Plane(PimBitVec),
    Slot(usize),
}

/// A request whose operands are still abstract locations.
struct AbsReq {
    op: BitwiseOp,
    args: Vec<AbsLoc>,
    dst: AbsLoc,
}

/// Compiles a batch of µ-programs into one [`CompiledBatch`].
///
/// All programs are expanded into a single expression DAG (hash-consed
/// across programs when `opts.cse`), single-use same-op chains are
/// flattened into multi-operand requests when `opts.fuse`, and interior
/// values get scratch planes recycled by last-use liveness — the peak
/// live count is allocated as one group. Write-after-read hazards from
/// slot recycling are resolved by the batch scheduler's dependence
/// analysis, which all execution paths (serial, planned, session pool)
/// share.
///
/// # Panics
///
/// On shape errors: mixed lane counts in one batch, duplicate
/// destination planes, or a destination plane also read as a fresh input
/// (read a written plane only *after* its producing program).
///
/// # Errors
///
/// [`RuntimeError::OutOfMemory`] if the scratch group does not fit.
pub fn compile(
    programs: &[MicroProgram],
    opts: CompileOptions,
    sys: &mut PimSystem,
) -> Result<CompiledBatch, RuntimeError> {
    let lanes = match programs.first() {
        Some(p) => p.a.lanes(),
        None => {
            return Ok(CompiledBatch {
                requests: Vec::new(),
                scratch: Vec::new(),
                live_gates: 0,
            })
        }
    };
    let mut dst_ids = HashSet::new();
    for p in programs {
        assert_eq!(
            p.a.lanes(),
            lanes,
            "every µ-program in a batch must share one lane count"
        );
        for plane in p.out_planes() {
            assert!(
                dst_ids.insert(plane.id()),
                "two µ-programs write output plane {}",
                plane.id()
            );
        }
    }

    // 1. Expand every program into the shared DAG.
    let mut b = Builder::new(opts, dst_ids);
    let mut outputs: Vec<(usize, PimBitVec, PimBitVec)> = Vec::new();
    for p in programs {
        let seed = p.a.planes[0].clone();
        for (root, plane) in b.build_program(p) {
            outputs.push((root, plane, seed.clone()));
        }
    }
    let n = b.exprs.len();
    let node_args = |e: &Expr| -> Vec<usize> {
        match e {
            Expr::Not(x) => vec![*x],
            Expr::Gate(_, args) => args.clone(),
            _ => Vec::new(),
        }
    };

    // 2. Reachability + use counts from the output roots.
    let mut reach = vec![false; n];
    let mut stack: Vec<usize> = outputs.iter().map(|o| o.0).collect();
    while let Some(i) = stack.pop() {
        if std::mem::replace(&mut reach[i], true) {
            continue;
        }
        stack.extend(node_args(&b.exprs[i]));
    }
    let mut uses = vec![0usize; n];
    for (i, _) in reach.iter().enumerate().filter(|(_, r)| **r) {
        for a in node_args(&b.exprs[i]) {
            uses[a] += 1;
        }
    }
    for o in &outputs {
        uses[o.0] += 1;
    }

    // 3. Fusion: a single-use same-op child of an associative gate is
    //    inlined into its parent's operand list — its scratch write and
    //    pairwise decomposition steps disappear (OR further rides the
    //    multi-row-activation fan-in).
    let mut eff: Vec<Option<Vec<usize>>> = vec![None; n];
    let mut killed = vec![false; n];
    if opts.fuse {
        for i in 0..n {
            let Expr::Gate(op, args) = &b.exprs[i] else {
                continue;
            };
            if !reach[i] {
                continue;
            }
            let (op, args) = (*op, args.clone());
            let mut flat = Vec::with_capacity(args.len());
            let mut changed = false;
            for a in args {
                match &b.exprs[a] {
                    Expr::Gate(cop, cargs) if *cop == op && uses[a] == 1 => {
                        flat.extend(eff[a].clone().unwrap_or_else(|| cargs.clone()));
                        killed[a] = true;
                        changed = true;
                    }
                    _ => flat.push(a),
                }
            }
            if changed {
                if opts.cse {
                    let mut simplified = flat.clone();
                    simplified.sort_unstable();
                    match op {
                        BitwiseOp::Or | BitwiseOp::And => simplified.dedup(),
                        BitwiseOp::Xor => {
                            let mut out = Vec::with_capacity(simplified.len());
                            for a in simplified {
                                if out.last() == Some(&a) {
                                    out.pop();
                                } else {
                                    out.push(a);
                                }
                            }
                            simplified = out;
                        }
                        BitwiseOp::Not => unreachable!(),
                    }
                    // A degenerate list (< 2 operands) keeps the raw
                    // flattening: duplicate operands are still correct
                    // (x|x, x&x, x^x all have defined request semantics).
                    if simplified.len() >= 2 {
                        flat = simplified;
                    }
                }
                eff[i] = Some(flat);
            }
        }
    }
    let eff_args = |i: usize, exprs: &[Expr], eff: &[Option<Vec<usize>>]| -> Vec<usize> {
        match &eff[i] {
            Some(v) => v.clone(),
            None => node_args(&exprs[i]),
        }
    };

    // 4. Final use counts over the fused DAG (liveness for slot reuse).
    let live: Vec<usize> = (0..n)
        .filter(|&i| reach[i] && !killed[i] && matches!(b.exprs[i], Expr::Not(_) | Expr::Gate(..)))
        .collect();
    let mut remaining = vec![0usize; n];
    for &i in &live {
        for a in eff_args(i, &b.exprs, &eff) {
            remaining[a] += 1;
        }
    }
    for o in &outputs {
        remaining[o.0] += 1;
    }

    // First output plane per gate root: the gate writes it directly;
    // extra outputs of the same root are copies.
    let mut root_plane: HashMap<usize, PimBitVec> = HashMap::new();
    for (root, plane, _) in &outputs {
        if matches!(b.exprs[*root], Expr::Not(_) | Expr::Gate(..)) {
            root_plane.entry(*root).or_insert_with(|| plane.clone());
        }
    }

    // 5. Schedule (index order is topological) with linear-scan slot
    //    recycling. A node's destination is fixed *before* its operands'
    //    slots are freed, so no request aliases dst with an operand.
    let mut loc: Vec<Option<AbsLoc>> = vec![None; n];
    for (slot, expr) in loc.iter_mut().zip(&b.exprs) {
        if let Expr::Input(idx) = expr {
            *slot = Some(AbsLoc::Plane(b.inputs[*idx].clone()));
        }
    }
    let mut abs: Vec<AbsReq> = Vec::with_capacity(live.len() + outputs.len());
    let mut free_slots: Vec<usize> = Vec::new();
    let mut slot_count = 0usize;
    for &i in &live {
        let (op, args) = match &b.exprs[i] {
            Expr::Not(x) => (BitwiseOp::Not, vec![*x]),
            Expr::Gate(op, _) => (*op, eff_args(i, &b.exprs, &eff)),
            _ => unreachable!("live nodes are gates"),
        };
        let dst = match root_plane.get(&i) {
            Some(plane) => AbsLoc::Plane(plane.clone()),
            None => AbsLoc::Slot(free_slots.pop().unwrap_or_else(|| {
                slot_count += 1;
                slot_count - 1
            })),
        };
        let arg_locs: Vec<AbsLoc> = args
            .iter()
            .map(|&a| loc[a].clone().expect("operands precede their gate"))
            .collect();
        abs.push(AbsReq {
            op,
            args: arg_locs,
            dst: dst.clone(),
        });
        loc[i] = Some(dst);
        for a in args {
            remaining[a] -= 1;
            if remaining[a] == 0 {
                if let Some(AbsLoc::Slot(s)) = loc[a] {
                    free_slots.push(s);
                }
            }
        }
    }
    let live_gates = abs.len();

    // 6. Output materialization for roots without a direct write: second
    //    outputs of a shared root, plain copies of an input, and constant
    //    planes (xor(p, p) = 0, inverted for all-ones).
    for (root, plane, seed) in &outputs {
        match &b.exprs[*root] {
            Expr::Not(_) | Expr::Gate(..) => {
                let first = &root_plane[root];
                if first.id() != plane.id() {
                    let src = AbsLoc::Plane(first.clone());
                    abs.push(AbsReq {
                        op: BitwiseOp::Or,
                        args: vec![src.clone(), src],
                        dst: AbsLoc::Plane(plane.clone()),
                    });
                }
            }
            Expr::Input(idx) => {
                let src = AbsLoc::Plane(b.inputs[*idx].clone());
                abs.push(AbsReq {
                    op: BitwiseOp::Or,
                    args: vec![src.clone(), src],
                    dst: AbsLoc::Plane(plane.clone()),
                });
            }
            Expr::Const(v) => {
                let seed = AbsLoc::Plane(seed.clone());
                abs.push(AbsReq {
                    op: BitwiseOp::Xor,
                    args: vec![seed.clone(), seed],
                    dst: AbsLoc::Plane(plane.clone()),
                });
                if *v {
                    abs.push(AbsReq {
                        op: BitwiseOp::Not,
                        args: vec![AbsLoc::Plane(plane.clone())],
                        dst: AbsLoc::Plane(plane.clone()),
                    });
                }
            }
        }
    }

    // 7. Materialize scratch (one group, placed together like any other
    //    co-operated vectors) and resolve the abstract locations.
    let scratch = if slot_count > 0 {
        sys.alloc_group(slot_count, lanes)?
    } else {
        Vec::new()
    };
    let resolve = |l: &AbsLoc| -> PimBitVec {
        match l {
            AbsLoc::Plane(p) => p.clone(),
            AbsLoc::Slot(s) => scratch[*s].clone(),
        }
    };
    let requests: Vec<BatchRequest> = abs
        .iter()
        .map(|r| BatchRequest {
            op: r.op,
            operands: r.args.iter().map(&resolve).collect(),
            dst: resolve(&r.dst),
        })
        .collect();
    Ok(CompiledBatch {
        requests,
        scratch,
        live_gates,
    })
}

/// Compile, execute through the lookahead planner, and release scratch —
/// the one-call path applications use.
///
/// # Errors
///
/// See [`compile`] and [`PimSystem::execute_batch`].
pub fn run(
    programs: &[MicroProgram],
    opts: CompileOptions,
    sys: &mut PimSystem,
) -> Result<ScheduleReport, RuntimeError> {
    let batch = compile(programs, opts, sys)?;
    let report = batch.execute(sys);
    batch.release(sys);
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::MappingPolicy;
    use pinatubo_core::rng::SimRng;

    fn sys() -> PimSystem {
        PimSystem::pcm_default(MappingPolicy::SubarrayFirst)
    }

    fn lanes_of(rng: &mut SimRng, count: usize, width: u32) -> Vec<u64> {
        let max = ArithOp::lane_mask(width);
        let mut v: Vec<u64> = (0..count).map(|_| rng.gen_range_u64(0, max + 1)).collect();
        // Pin extremes so wrap/borrow corners are always exercised.
        let pins = [0, max, max - 1, 1, max / 2];
        for (slot, pin) in v.iter_mut().zip(pins) {
            *slot = pin;
        }
        v
    }

    #[test]
    fn transposed_store_load_round_trips() {
        let mut s = sys();
        let v = s.alloc_transposed(100, 8).expect("alloc");
        assert_eq!(v.width_bits(), 8);
        assert_eq!(v.lanes(), 100);
        let vals: Vec<u64> = (0..100).map(|i| (i * 37) % 256).collect();
        s.store_lanes(&v, &vals).expect("store");
        assert_eq!(s.load_lanes(&v), vals);
        assert!(matches!(
            s.store_lanes(&v, &vec![0; 101]),
            Err(RuntimeError::StoreTooLong { .. })
        ));
    }

    #[test]
    fn add_matches_reference_fused_and_unfused() {
        for opts in [CompileOptions::optimized(), CompileOptions::unoptimized()] {
            let mut s = sys();
            let mut rng = SimRng::seed_from_u64(7);
            let a = s.alloc_transposed(70, 8).expect("a");
            let bb = s.alloc_transposed(70, 8).expect("b");
            let dst = s.alloc_transposed(70, 8).expect("dst");
            let av = lanes_of(&mut rng, 70, 8);
            let bv = lanes_of(&mut rng, 70, 8);
            s.store_lanes(&a, &av).expect("store a");
            s.store_lanes(&bb, &bv).expect("store b");
            run(&[MicroProgram::add(&a, &bb, &dst)], opts, &mut s).expect("run");
            let want: Vec<u64> = av
                .iter()
                .zip(&bv)
                .map(|(&x, &y)| ArithOp::Add.eval_lane(x, y, 8))
                .collect();
            assert_eq!(s.load_lanes(&dst), want, "opts {opts:?}");
        }
    }

    #[test]
    fn chained_programs_read_values_not_stale_rows() {
        // dst of program 0 feeds program 1 in the same batch; both
        // pipelines must see the produced value.
        for opts in [CompileOptions::optimized(), CompileOptions::unoptimized()] {
            let mut s = sys();
            let a = s.alloc_transposed(16, 8).expect("a");
            let bb = s.alloc_transposed(16, 8).expect("b");
            let mid = s.alloc_transposed(16, 8).expect("mid");
            let dst = s.alloc_transposed(16, 8).expect("dst");
            let av: Vec<u64> = (0..16).collect();
            let bv: Vec<u64> = (0..16).map(|i| 240 + i).collect();
            s.store_lanes(&a, &av).expect("store a");
            s.store_lanes(&bb, &bv).expect("store b");
            let batch = [
                MicroProgram::add(&a, &bb, &mid),
                MicroProgram::max(&mid, &a, &dst),
            ];
            run(&batch, opts, &mut s).expect("run");
            let want: Vec<u64> = av
                .iter()
                .zip(&bv)
                .map(|(&x, &y)| {
                    let m = ArithOp::Add.eval_lane(x, y, 8);
                    ArithOp::Max.eval_lane(m, x, 8)
                })
                .collect();
            assert_eq!(s.load_lanes(&dst), want, "opts {opts:?}");
        }
    }

    #[test]
    fn threshold_extremes_compile_to_constant_planes() {
        let mut s = sys();
        let a = s.alloc_transposed(32, 8).expect("a");
        let hi = s.alloc(32).expect("hi");
        let lo = s.alloc(32).expect("lo");
        let vals: Vec<u64> = (0..32).map(|i| i * 8).collect();
        s.store_lanes(&a, &vals).expect("store");
        let batch = [
            MicroProgram::threshold_const(&a, 255, &hi), // a > max: never
            MicroProgram::cmp_ge_const(&a, 0, &lo),      // a >= 0: always
        ];
        let compiled = compile(&batch, CompileOptions::default(), &mut s).expect("compile");
        assert_eq!(compiled.live_gates(), 0, "constant roots need no gates");
        compiled.execute(&mut s).expect("execute");
        assert_eq!(s.count_ones(&hi), 0);
        assert_eq!(s.count_ones(&lo), 32);
    }

    #[test]
    fn cse_shares_chains_across_programs() {
        let mut s = sys();
        let a = s.alloc_transposed(64, 16).expect("a");
        let bb = s.alloc_transposed(64, 16).expect("b");
        let d1 = s.alloc_transposed(64, 16).expect("d1");
        let ge = s.alloc(64).expect("ge");
        let lt = s.alloc(64).expect("lt");
        let batch = [
            MicroProgram::sub(&a, &bb, &d1),
            MicroProgram::cmp_ge(&a, &bb, &ge),
            MicroProgram::cmp_lt(&a, &bb, &lt),
        ];
        let fused = compile(&batch, CompileOptions::optimized(), &mut s).expect("fused");
        let naive = compile(&batch, CompileOptions::unoptimized(), &mut s).expect("naive");
        assert!(
            fused.requests().len() * 3 < naive.requests().len() * 2,
            "shared borrow chain must cut the request count by over a third \
             (fused {}, naive {})",
            fused.requests().len(),
            naive.requests().len()
        );
        let freed = fused.scratch_planes() + naive.scratch_planes();
        let before = s.allocator().free_rows();
        fused.release(&mut s);
        naive.release(&mut s);
        assert_eq!(
            s.allocator().free_rows(),
            before + freed as u64,
            "released scratch must round-trip free_rows"
        );
    }

    #[test]
    fn scratch_is_recycled_by_liveness() {
        let mut s = sys();
        let a = s.alloc_transposed(64, 32).expect("a");
        let bb = s.alloc_transposed(64, 32).expect("b");
        let dst = s.alloc_transposed(64, 32).expect("dst");
        let compiled = compile(
            &[MicroProgram::add(&a, &bb, &dst)],
            CompileOptions::default(),
            &mut s,
        )
        .expect("compile");
        assert!(
            compiled.scratch_planes() * 3 < compiled.live_gates(),
            "slot recycling must keep scratch well below one plane per gate \
             ({} slots for {} gates)",
            compiled.scratch_planes(),
            compiled.live_gates()
        );
        compiled.release(&mut s);
    }

    #[test]
    #[should_panic(expected = "overwritten later in the same batch")]
    fn read_before_write_of_a_destination_panics() {
        let mut s = sys();
        let a = s.alloc_transposed(16, 8).expect("a");
        let bb = s.alloc_transposed(16, 8).expect("b");
        let dst = s.alloc_transposed(16, 8).expect("dst");
        // Program 0 reads `dst` before program 1 overwrites it.
        let batch = [
            MicroProgram::add(&dst, &a, &bb),
            MicroProgram::add(&a, &a, &dst),
        ];
        let _ = compile(&batch, CompileOptions::default(), &mut s);
    }

    #[test]
    #[should_panic(expected = "two µ-programs write output plane")]
    fn duplicate_destinations_panic() {
        let mut s = sys();
        let a = s.alloc_transposed(16, 8).expect("a");
        let dst = s.alloc_transposed(16, 8).expect("dst");
        let batch = [
            MicroProgram::add(&a, &a, &dst),
            MicroProgram::sub(&a, &a, &dst),
        ];
        let _ = compile(&batch, CompileOptions::default(), &mut s);
    }

    #[test]
    fn empty_batch_compiles_to_nothing() {
        let mut s = sys();
        let compiled = compile(&[], CompileOptions::default(), &mut s).expect("empty");
        assert!(compiled.requests().is_empty());
        let report = compiled.execute(&mut s).expect("execute");
        assert_eq!(report.per_op.len(), 0);
    }
}
