//! The extended PIM instruction set and its binary encoding.
//!
//! The paper's driver library "issues extended instruction for PIM \[3\]",
//! which the hardware control path translates into DDR commands plus
//! mode-register writes (§5, Fig. 4). This module defines those
//! instructions and a compact binary wire format, so the software stack
//! can be exercised end-to-end: program → instructions → words → decoded
//! instructions → engine execution.
//!
//! # Wire format
//!
//! Each instruction is a header word followed by one packed row address
//! per operand and one for the destination:
//!
//! ```text
//! header  [63:56] opcode   (OR=1, AND=2, XOR=3, NOT=4)
//!         [55:40] operand count
//!         [39:0]  column count (bits per row segment)
//! addr    [39:0]  packed row address (channel·rank·bank·subarray·row)
//! ```

use crate::RuntimeError;
use pinatubo_core::{BitwiseOp, PimError, PinatuboEngine};
use pinatubo_mem::{MemGeometry, RowAddr};
use std::error::Error;
use std::fmt;

/// One extended PIM instruction, at row granularity (the driver segments
/// long bit-vectors before encoding).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PimInstruction {
    /// The bulk operation.
    pub op: BitwiseOp,
    /// Operand rows.
    pub operands: Vec<RowAddr>,
    /// Destination row.
    pub dst: RowAddr,
    /// Columns (bits) covered.
    pub cols: u64,
}

impl PimInstruction {
    /// Executes the instruction on an engine.
    ///
    /// # Errors
    ///
    /// Propagates engine errors.
    pub fn execute(
        &self,
        engine: &mut PinatuboEngine,
    ) -> Result<pinatubo_core::OpOutcome, PimError> {
        engine.bulk_op(self.op, &self.operands, self.dst, self.cols)
    }

    /// Encodes to the binary wire format.
    #[must_use]
    pub fn encode(&self, geometry: &MemGeometry) -> Vec<u64> {
        let opcode: u64 = match self.op {
            BitwiseOp::Or => 1,
            BitwiseOp::And => 2,
            BitwiseOp::Xor => 3,
            BitwiseOp::Not => 4,
        };
        let header =
            (opcode << 56) | ((self.operands.len() as u64 & 0xFFFF) << 40) | (self.cols & COL_MASK);
        let mut words = Vec::with_capacity(self.operands.len() + 2);
        words.push(header);
        for row in &self.operands {
            words.push(row.to_linear(geometry));
        }
        words.push(self.dst.to_linear(geometry));
        words
    }

    /// Decodes one instruction from the front of `words`, returning it and
    /// the number of words consumed.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] on truncated streams, unknown opcodes or
    /// out-of-range addresses.
    pub fn decode(
        geometry: &MemGeometry,
        words: &[u64],
    ) -> Result<(PimInstruction, usize), DecodeError> {
        let &header = words.first().ok_or(DecodeError::Truncated { needed: 1 })?;
        let op = match header >> 56 {
            1 => BitwiseOp::Or,
            2 => BitwiseOp::And,
            3 => BitwiseOp::Xor,
            4 => BitwiseOp::Not,
            other => {
                return Err(DecodeError::UnknownOpcode {
                    opcode: other as u8,
                })
            }
        };
        let operand_count = ((header >> 40) & 0xFFFF) as usize;
        let cols = header & COL_MASK;
        let needed = operand_count + 2;
        if words.len() < needed {
            return Err(DecodeError::Truncated { needed });
        }
        let decode_addr = |word: u64| -> Result<RowAddr, DecodeError> {
            if word >= geometry.total_rows() {
                return Err(DecodeError::AddressOutOfRange { linear: word });
            }
            Ok(RowAddr::from_linear(geometry, word))
        };
        let operands = words[1..=operand_count]
            .iter()
            .copied()
            .map(decode_addr)
            .collect::<Result<Vec<_>, _>>()?;
        let dst = decode_addr(words[operand_count + 1])?;
        Ok((
            PimInstruction {
                op,
                operands,
                dst,
                cols,
            },
            needed,
        ))
    }
}

/// 40-bit column-count field.
const COL_MASK: u64 = (1 << 40) - 1;

/// Encodes a whole instruction stream.
#[must_use]
pub fn encode_stream(geometry: &MemGeometry, instructions: &[PimInstruction]) -> Vec<u64> {
    instructions
        .iter()
        .flat_map(|i| i.encode(geometry))
        .collect()
}

/// Decodes a whole instruction stream.
///
/// # Errors
///
/// Returns the first [`DecodeError`] encountered.
pub fn decode_stream(
    geometry: &MemGeometry,
    mut words: &[u64],
) -> Result<Vec<PimInstruction>, DecodeError> {
    let mut out = Vec::new();
    while !words.is_empty() {
        let (instruction, consumed) = PimInstruction::decode(geometry, words)?;
        out.push(instruction);
        words = &words[consumed..];
    }
    Ok(out)
}

/// Lowers batch requests to the wire ISA: one instruction per row
/// segment, in request order — how a compiled µ-program batch leaves the
/// driver library. The serial instruction order respects the requests'
/// read/write dependences by construction, so `execute_stream` on the
/// result reproduces the batch's bits.
#[must_use]
pub fn instructions_for_requests(
    requests: &[crate::scheduler::BatchRequest],
    row_bits: u64,
) -> Vec<PimInstruction> {
    let mut out = Vec::new();
    for request in requests {
        for (i, dst_row, seg_bits) in request.dst.segments(row_bits) {
            out.push(PimInstruction {
                op: request.op,
                operands: request.operands.iter().map(|v| v.rows()[i]).collect(),
                dst: dst_row,
                cols: seg_bits,
            });
        }
    }
    out
}

/// Executes a decoded stream on an engine, stopping at the first failure.
///
/// # Errors
///
/// Wraps the failing engine error.
pub fn execute_stream(
    engine: &mut PinatuboEngine,
    instructions: &[PimInstruction],
) -> Result<(), RuntimeError> {
    for instruction in instructions {
        instruction.execute(engine)?;
    }
    Ok(())
}

/// Errors decoding the binary instruction format.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum DecodeError {
    /// The stream ended mid-instruction.
    Truncated {
        /// Words the instruction needed.
        needed: usize,
    },
    /// The header carried an unknown opcode.
    UnknownOpcode {
        /// The offending opcode byte.
        opcode: u8,
    },
    /// A packed address exceeds the geometry's row count.
    AddressOutOfRange {
        /// The offending linear row index.
        linear: u64,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated { needed } => {
                write!(f, "instruction stream truncated: {needed} words needed")
            }
            DecodeError::UnknownOpcode { opcode } => write!(f, "unknown PIM opcode {opcode:#x}"),
            DecodeError::AddressOutOfRange { linear } => {
                write!(f, "packed row address {linear} outside the geometry")
            }
        }
    }
}

impl Error for DecodeError {}

#[cfg(test)]
mod tests {
    use super::*;
    use pinatubo_core::PinatuboConfig;
    use pinatubo_mem::{MemConfig, RowData};

    fn geometry() -> MemGeometry {
        MemGeometry::pcm_default()
    }

    fn sample_instruction() -> PimInstruction {
        PimInstruction {
            op: BitwiseOp::Or,
            operands: vec![
                RowAddr::new(0, 0, 0, 0, 1),
                RowAddr::new(0, 0, 0, 0, 2),
                RowAddr::new(0, 0, 0, 0, 3),
            ],
            dst: RowAddr::new(0, 0, 0, 0, 9),
            cols: 4096,
        }
    }

    #[test]
    fn encode_decode_round_trips() {
        let g = geometry();
        let instruction = sample_instruction();
        let words = instruction.encode(&g);
        assert_eq!(words.len(), 5);
        let (decoded, consumed) = PimInstruction::decode(&g, &words).expect("decodes");
        assert_eq!(consumed, 5);
        assert_eq!(decoded, instruction);
    }

    #[test]
    fn stream_round_trips() {
        let g = geometry();
        let instructions = vec![
            sample_instruction(),
            PimInstruction {
                op: BitwiseOp::Not,
                operands: vec![RowAddr::new(1, 1, 3, 7, 500)],
                dst: RowAddr::new(1, 1, 3, 7, 501),
                cols: 1 << 19,
            },
        ];
        let words = encode_stream(&g, &instructions);
        let decoded = decode_stream(&g, &words).expect("decodes");
        assert_eq!(decoded, instructions);
    }

    #[test]
    fn truncated_stream_is_rejected() {
        let g = geometry();
        let words = sample_instruction().encode(&g);
        assert_eq!(
            PimInstruction::decode(&g, &words[..2]),
            Err(DecodeError::Truncated { needed: 5 })
        );
        assert!(decode_stream(&g, &words[..words.len() - 1]).is_err());
    }

    #[test]
    fn unknown_opcode_is_rejected() {
        let g = geometry();
        let mut words = sample_instruction().encode(&g);
        words[0] |= 0xFF << 56;
        assert!(matches!(
            PimInstruction::decode(&g, &words),
            Err(DecodeError::UnknownOpcode { .. })
        ));
    }

    #[test]
    fn out_of_range_address_is_rejected() {
        let g = geometry();
        let mut words = sample_instruction().encode(&g);
        words[1] = g.total_rows();
        assert_eq!(
            PimInstruction::decode(&g, &words),
            Err(DecodeError::AddressOutOfRange {
                linear: g.total_rows()
            })
        );
    }

    #[test]
    fn decoded_stream_executes_on_the_engine() {
        let g = geometry();
        let mut engine = PinatuboEngine::new(MemConfig::pcm_default(), PinatuboConfig::default());
        let instruction = sample_instruction();
        engine
            .memory_mut()
            .poke_row(instruction.operands[1], &RowData::from_bits(&[true, true]))
            .expect("poke");

        let words = instruction.encode(&g);
        let decoded = decode_stream(&g, &words).expect("decodes");
        execute_stream(&mut engine, &decoded).expect("executes");
        assert_eq!(
            engine
                .memory()
                .peek_row(instruction.dst)
                .expect("written")
                .bits(2),
            vec![true, true]
        );
    }

    #[test]
    fn decode_error_display() {
        assert!(DecodeError::Truncated { needed: 3 }
            .to_string()
            .contains("3 words"));
        assert!(DecodeError::UnknownOpcode { opcode: 9 }
            .to_string()
            .contains("0x9"));
    }
}
