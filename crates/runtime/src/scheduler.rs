//! The driver-library scheduler (§5: the dynamic linked driver "first
//! optimizes and reschedules the operation requests, and then issues
//! extended instruction for PIM").
//!
//! Two optimizations are modelled:
//!
//! * **Mode-register batching** — the SA reference configuration is a
//!   mode-register write; executing all ORs, then all ANDs, … (where data
//!   dependences allow) avoids reconfiguration thrash.
//! * **Channel and bank parallelism** — channels have independent
//!   command/data buses, and banks within a channel have independent
//!   sense-amplifier stripes, so the ACT/sense/write phases of requests on
//!   different banks may overlap. What *cannot* overlap within a channel
//!   is the shared bus (DDR bursts, mode-register sets), and overlapping
//!   activations on one rank must respect the tRRD/tFAW inter-activation
//!   constraints. The engine's accounting is a single serial command
//!   stream; the scheduler replays each request's cost through a
//!   critical-path model (one cursor per bank lane, one per channel bus,
//!   a rolling four-ACT window per rank) and reports the resulting
//!   *makespan* in a [`MakespanReport`] alongside the serial sum.
//!
//! Reordering is dependence-aware: requests are grouped into topological
//! levels by row conflicts (read-after-write, write-after-anything), and
//! only reordered within a level. [`PimSystem::plan_batch`] goes further
//! than the static level/mode sort: a greedy list schedule dispatches,
//! at every step, the dependence-ready request with the earliest
//! estimated completion under the same critical-path model the report
//! uses — spreading same-rank launches past the tRRD/tFAW gates and
//! keeping every channel bus busy.
//!
//! Execution is *actually* parallel, not just modeled:
//! [`PimSystem::execute_batch`] partitions the memory into per-channel
//! shards ([`pinatubo_mem::MainMemory::split_channel`]), runs each
//! channel's scheduled queue on scoped worker threads, and merges state
//! and statistics back deterministically (`absorb`). Per-channel
//! fault-injection streams and explicit mode-register priming keep the
//! results bit- and stats-identical to serial execution of the same
//! order (on the shipped presets, whose command streams never stall),
//! independent of the worker count.

use crate::bitvec::PimBitVec;
use crate::system::{bitwise_on_engine, OpSummary, PimSystem};
use crate::RuntimeError;
use pinatubo_core::{BitwiseOp, BulkOp, OpClass};
use pinatubo_mem::{PimConfig, ReliabilityStats, RowAddr};
use std::collections::{BTreeMap, HashMap, HashSet};

/// One queued operation request.
#[derive(Debug, Clone)]
pub struct BatchRequest {
    /// The bulk operation.
    pub op: BitwiseOp,
    /// Operand vectors.
    pub operands: Vec<PimBitVec>,
    /// Destination vector.
    pub dst: PimBitVec,
}

impl BatchRequest {
    /// Rows this request reads.
    fn reads(&self) -> impl Iterator<Item = RowAddr> + '_ {
        self.operands.iter().flat_map(|v| v.rows().iter().copied())
    }

    /// Rows this request writes.
    fn writes(&self) -> impl Iterator<Item = RowAddr> + '_ {
        self.dst.rows().iter().copied()
    }

    /// Whether `self` must stay ordered after `earlier`.
    fn depends_on(&self, earlier: &BatchRequest) -> bool {
        let earlier_writes: HashSet<RowAddr> = earlier.writes().collect();
        // RAW: we read something it wrote. WAW: we write something it
        // wrote. WAR: we write something it read.
        if self.reads().any(|r| earlier_writes.contains(&r)) {
            return true;
        }
        if self.writes().any(|w| earlier_writes.contains(&w)) {
            return true;
        }
        let our_writes: HashSet<RowAddr> = self.writes().collect();
        earlier.reads().any(|r| our_writes.contains(&r))
    }
}

/// What a scheduled batch cost.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleReport {
    /// Sum of per-op times — the single-command-stream account.
    pub serial_time_ns: f64,
    /// Completion time under the bank-level critical-path model.
    pub makespan_ns: f64,
    /// Per-channel busy times (sum of each channel's request times).
    pub channel_times_ns: Vec<f64>,
    /// Mode-register switches the submitted order would have issued.
    pub mode_switches_naive: u64,
    /// Mode-register switches after reordering.
    pub mode_switches_scheduled: u64,
    /// The critical-path breakdown behind `makespan_ns`.
    pub makespan: MakespanReport,
    /// Per-request summaries, in *scheduled* execution order, paired with
    /// the request's index in the submitted batch.
    pub per_op: Vec<(usize, OpSummary)>,
}

impl ScheduleReport {
    /// Speedup of overlapped completion over the serial stream.
    #[must_use]
    pub fn channel_parallel_speedup(&self) -> f64 {
        if self.makespan_ns == 0.0 {
            1.0
        } else {
            self.serial_time_ns / self.makespan_ns
        }
    }
}

/// The bank-level critical-path account of one batch: where the time went
/// and how much of it overlapped away.
///
/// Each request is split into a *shared* segment (DDR-bus bursts +
/// mode-register sets, serialized on the channel's bus) and a *lane*
/// segment (ACT/sense/write/GDL/precharge, local to the destination's
/// bank). Lanes of different banks run concurrently; a request's first
/// activation additionally waits out tRRD after the rank's previous
/// activation and tFAW after its fourth-most-recent one. Activations
/// *inside* one request are already serialized by the request's own lane
/// time (≥ a full command each), so only request launches need gating.
#[derive(Debug, Clone, PartialEq)]
pub struct MakespanReport {
    /// Completion time of the critical path over all bank lanes.
    pub makespan_ns: f64,
    /// Channel-serialized (bus + MRS) time, summed over requests.
    pub bus_serialized_ns: f64,
    /// Bank-local, overlappable time, summed over requests.
    pub lane_ns: f64,
    /// Launch delay inserted by the tRRD/tFAW gates.
    pub rrd_faw_stall_ns: f64,
    /// Distinct (channel, rank, bank) lanes the batch touched.
    pub lanes_used: usize,
    /// Completion time of each channel.
    pub channel_completion_ns: Vec<f64>,
    /// Fault-injection and recovery counters summed over the batch.
    pub reliability: ReliabilityStats,
}

impl MakespanReport {
    /// An empty account over `channels` channels.
    #[must_use]
    pub fn empty(channels: usize) -> Self {
        MakespanReport {
            makespan_ns: 0.0,
            bus_serialized_ns: 0.0,
            lane_ns: 0.0,
            rrd_faw_stall_ns: 0.0,
            lanes_used: 0,
            channel_completion_ns: vec![0.0; channels],
            reliability: ReliabilityStats::default(),
        }
    }

    /// Fraction of the total submitted work that overlapped away:
    /// `1 − makespan / (shared + lane)`. Zero for an empty batch.
    #[must_use]
    pub fn overlapped_fraction(&self) -> f64 {
        let total = self.bus_serialized_ns + self.lane_ns;
        if total == 0.0 {
            0.0
        } else {
            1.0 - self.makespan_ns / total
        }
    }
}

/// Computes the dependence-respecting, mode-grouped execution order.
/// Returns indices into `requests`.
#[must_use]
pub fn schedule(requests: &[BatchRequest]) -> Vec<usize> {
    // Topological levels by conflict: level(i) = 1 + max level of any
    // earlier conflicting request.
    let mut levels = vec![0usize; requests.len()];
    for i in 0..requests.len() {
        for j in 0..i {
            if requests[i].depends_on(&requests[j]) {
                levels[i] = levels[i].max(levels[j] + 1);
            }
        }
    }
    let mut order: Vec<usize> = (0..requests.len()).collect();
    // Stable sort: primary by level (dependences), secondary by operation
    // kind (mode-register batching).
    order.sort_by_key(|&i| (levels[i], mode_rank(requests[i].op)));
    order
}

/// Stable grouping key for mode-register batching.
fn mode_rank(op: BitwiseOp) -> u8 {
    match op {
        BitwiseOp::Or => 0,
        BitwiseOp::And => 1,
        BitwiseOp::Xor => 2,
        BitwiseOp::Not => 3,
    }
}

/// Counts adjacent operation-kind transitions (≈ mode-register switches).
fn mode_switches(ops: impl Iterator<Item = BitwiseOp>) -> u64 {
    let mut switches = 0;
    let mut last = None;
    for op in ops {
        if last.is_some_and(|l| l != op) {
            switches += 1;
        }
        last = Some(op);
    }
    switches
}

/// The sense-amp reference configuration a bulk op leaves behind: every
/// engine path (including host fallbacks) sets the mode register to the
/// op's configuration before touching data, so the register's value after
/// any request is a pure function of that request's op. The parallel
/// executor uses this to prime each shard with exactly the mode the
/// serial stream would have had, keeping MRS accounting identical.
pub(crate) fn mode_for(op: BitwiseOp) -> PimConfig {
    match op {
        BitwiseOp::Or => PimConfig::Or,
        BitwiseOp::And => PimConfig::And,
        BitwiseOp::Xor => PimConfig::Xor,
        BitwiseOp::Not => PimConfig::Inv,
    }
}

/// The single channel a request is confined to, if any: a request whose
/// operand and destination rows all live on one channel can run on that
/// channel's shard; anything else (a vector straddling channels) needs
/// the unified memory.
pub(crate) fn home_channel(request: &BatchRequest) -> Option<u32> {
    let c = request.dst.rows()[0].channel;
    request
        .dst
        .rows()
        .iter()
        .chain(request.operands.iter().flat_map(|v| v.rows().iter()))
        .all(|r| r.channel == c)
        .then_some(c)
}

/// Coarse analytic cost of one request, for the list scheduler's lookahead.
/// Only the *relative* magnitudes matter (which candidate finishes first),
/// so the model is deliberately simple: chained two-row primitives, one
/// sense pass block per segment, GDL hops for inter-subarray/bank moves,
/// and bus bursts for host fallbacks.
#[derive(Debug, Clone, Copy, Default)]
struct EstCost {
    time_ns: f64,
    shared_ns: f64,
    activations: u64,
}

impl PimSystem {
    fn estimate_request(&self, request: &BatchRequest) -> EstCost {
        let mem = self.engine().memory();
        let g = mem.geometry();
        let t = &mem.config().timing;
        let row_bits = g.logical_row_bits();
        let k = request.operands.len().max(1);
        let mut est = EstCost::default();
        for (i, dst_row, seg_bits) in request.dst.segments(row_bits) {
            let mut rows: Vec<RowAddr> = request
                .operands
                .iter()
                .filter_map(|v| v.rows().get(i).copied())
                .collect();
            rows.push(dst_row);
            let class = OpClass::classify(&rows);
            let passes = g.sense_passes(seg_bits) as f64;
            let read = t.multi_activate_ns(2) + passes * t.t_cl_ns + t.t_rp_ns;
            let write = t.t_wr_ns + t.t_rp_ns;
            let steps = match request.op {
                BitwiseOp::Not => 1,
                _ => k.saturating_sub(1).max(1),
            };
            match class {
                OpClass::IntraSubarray => {
                    est.time_ns += steps as f64 * (read + write);
                    est.activations += steps as u64;
                }
                OpClass::InterSubarray | OpClass::InterBank => {
                    let gdl = g.gdl_cycles(seg_bits) as f64 * t.t_gdl_cycle_ns;
                    est.time_ns += k as f64 * (read + gdl) + write + gdl;
                    est.activations += k as u64;
                }
                OpClass::HostFallback => {
                    let shared = (k as f64 + 1.0) * t.bus_transfer_ns(seg_bits);
                    est.time_ns += k as f64 * read + write + shared;
                    est.shared_ns += shared;
                    est.activations += k as u64;
                }
            }
        }
        est
    }

    /// Computes the makespan-minimizing execution order: a greedy list
    /// schedule over the dependence-ready set, simulating the same
    /// critical-path model [`MakespanReport`] accounts (bank-lane and
    /// channel-bus cursors, rolling tRRD/tFAW window per rank) with the
    /// analytic cost estimates. At each step the ready request with the
    /// earliest estimated completion is dispatched — which spreads
    /// same-rank launches to dodge tRRD/tFAW gates, schedules bank- and
    /// channel-parallel work ahead of bus-hogging host fallbacks, and
    /// breaks ties toward the current mode (MRS batching) and then the
    /// lowest submission index (determinism).
    #[must_use]
    pub fn plan_batch(&self, requests: &[BatchRequest]) -> Vec<usize> {
        let n = requests.len();
        let mut deps: Vec<Vec<usize>> = vec![Vec::new(); n];
        for i in 0..n {
            for j in 0..i {
                if requests[i].depends_on(&requests[j]) {
                    deps[i].push(j);
                }
            }
        }
        let est: Vec<EstCost> = requests.iter().map(|r| self.estimate_request(r)).collect();
        let timing = self.engine().memory().config().timing.clone();
        let channels = self.engine().memory().geometry().channels as usize;

        let mut done = vec![false; n];
        let mut order = Vec::with_capacity(n);
        let mut bus_free = vec![0.0f64; channels];
        let mut lane_free: HashMap<(u32, u32, u32), f64> = HashMap::new();
        let mut act_history: HashMap<(u32, u32), Vec<f64>> = HashMap::new();
        let mut last_op: Option<BitwiseOp> = None;

        let place = |i: usize,
                     bus_free: &[f64],
                     lane_free: &HashMap<(u32, u32, u32), f64>,
                     act_history: &HashMap<(u32, u32), Vec<f64>>|
         -> (f64, f64) {
            let home = requests[i].dst.rows()[0];
            let lane = (home.channel, home.rank, home.bank);
            let ready =
                bus_free[home.channel as usize].max(lane_free.get(&lane).copied().unwrap_or(0.0));
            let start = if est[i].activations > 0 {
                let history = act_history
                    .get(&(home.channel, home.rank))
                    .map_or(&[][..], Vec::as_slice);
                timing.earliest_activation_ns(history, ready)
            } else {
                ready
            };
            (start, start + est[i].time_ns)
        };

        for _ in 0..n {
            let mut best: Option<(usize, f64)> = None;
            for i in 0..n {
                if done[i] || deps[i].iter().any(|&j| !done[j]) {
                    continue;
                }
                let (_, end) = place(i, &bus_free, &lane_free, &act_history);
                let better = match best {
                    None => true,
                    Some((bi, bend)) => {
                        end + 1e-9 < bend
                            || ((end - bend).abs() <= 1e-9
                                && last_op == Some(requests[i].op)
                                && last_op != Some(requests[bi].op))
                    }
                };
                if better {
                    best = Some((i, end));
                }
            }
            let (i, _) = best.expect("a dependence-ready request always exists");
            let (start, end) = place(i, &bus_free, &lane_free, &act_history);
            let home = requests[i].dst.rows()[0];
            if est[i].activations > 0 {
                let history = act_history.entry((home.channel, home.rank)).or_default();
                history.push(start);
                if history.len() > 4 {
                    history.remove(0);
                }
            }
            bus_free[home.channel as usize] = start + est[i].shared_ns;
            lane_free.insert((home.channel, home.rank, home.bank), end);
            done[i] = true;
            last_op = Some(requests[i].op);
            order.push(i);
        }
        order
    }

    /// Executes a batch of requests through the driver scheduler, running
    /// single-channel requests on per-channel memory shards with scoped
    /// worker threads (one shard per channel touched; the default worker
    /// count is the channel count).
    ///
    /// Results are identical to executing the batch in submission order
    /// (reordering respects data dependences), and — on the shipped
    /// timing presets, whose serial command streams never stall — the
    /// merged statistics are identical to serial execution of the same
    /// scheduled order. The report additionally accounts the mode-switch
    /// savings and the channel-parallel makespan.
    ///
    /// # Errors
    ///
    /// Returns the earliest-scheduled failing request's error. Each
    /// channel queue stops at its first failure; already-completed work
    /// (including on other channels) stays committed, like the serial
    /// path's partial progress.
    pub fn execute_batch(
        &mut self,
        requests: &[BatchRequest],
    ) -> Result<ScheduleReport, RuntimeError> {
        let workers = self.engine().memory().geometry().channels as usize;
        self.execute_batch_with_workers(requests, workers)
    }

    /// [`PimSystem::execute_batch`] on the unified memory, one request at
    /// a time — the reference the parallel path is tested against.
    ///
    /// # Errors
    ///
    /// Stops at the first failing request and returns its error.
    pub fn execute_batch_serial(
        &mut self,
        requests: &[BatchRequest],
    ) -> Result<ScheduleReport, RuntimeError> {
        let order = self.plan_batch(requests);
        let mut per_op = Vec::with_capacity(order.len());
        for &i in &order {
            let request = &requests[i];
            let operands: Vec<&PimBitVec> = request.operands.iter().collect();
            let summary = self.bitwise(request.op, &operands, &request.dst)?;
            per_op.push((i, summary));
        }
        Ok(self.build_report(requests, per_op))
    }

    /// [`PimSystem::execute_batch`] with an explicit worker-thread count.
    /// Channel queues are fixed by the schedule, so results and merged
    /// statistics do not depend on `workers` — only wall-clock time does.
    ///
    /// # Errors
    ///
    /// See [`PimSystem::execute_batch`].
    pub fn execute_batch_with_workers(
        &mut self,
        requests: &[BatchRequest],
        workers: usize,
    ) -> Result<ScheduleReport, RuntimeError> {
        let workers = workers.max(1);
        let order = self.plan_batch(requests);
        let n = order.len();
        let row_bits = self.row_bits();
        let entry_mode = self.engine().memory().pim_config();
        // The mode register the serial stream would hold when request
        // `order[p]` starts: the previous scheduled op's configuration.
        let prime: Vec<PimConfig> = (0..n)
            .map(|p| {
                if p == 0 {
                    entry_mode
                } else {
                    mode_for(requests[order[p - 1]].op)
                }
            })
            .collect();
        let homes: Vec<Option<u32>> = order.iter().map(|&i| home_channel(&requests[i])).collect();

        struct ShardRun<E> {
            engine: E,
            /// Positions in `order` this shard executes, ascending.
            queue: Vec<usize>,
            out: Vec<(usize, OpSummary, BulkOp)>,
            err: Option<(usize, RuntimeError)>,
        }

        let mut slots: Vec<Option<(OpSummary, BulkOp)>> = (0..n).map(|_| None).collect();
        let mut first_err: Option<(usize, RuntimeError)> = None;

        let mut p = 0;
        while p < n && first_err.is_none() {
            let Some(_) = homes[p] else {
                // A channel-straddling request: run it on the unified
                // memory between sharded phases.
                let i = order[p];
                let request = &requests[i];
                self.engine_mut().memory_mut().preload_pim_config(prime[p]);
                let operands: Vec<&PimBitVec> = request.operands.iter().collect();
                match bitwise_on_engine(
                    self.engine_mut(),
                    row_bits,
                    request.op,
                    &operands,
                    &request.dst,
                ) {
                    Ok(v) => slots[p] = Some(v),
                    Err(e) => first_err = Some((p, e)),
                }
                p += 1;
                continue;
            };
            // A run of single-channel requests: one shard per channel
            // touched, each consuming its queue in scheduled order.
            let q = p + homes[p..].iter().take_while(|h| h.is_some()).count();
            let mut queues: BTreeMap<u32, Vec<usize>> = BTreeMap::new();
            for (pos, home) in homes.iter().enumerate().take(q).skip(p) {
                queues
                    .entry(home.expect("inside the single-channel run"))
                    .or_default()
                    .push(pos);
            }
            let mut shards: Vec<ShardRun<_>> = queues
                .into_iter()
                .map(|(channel, queue)| ShardRun {
                    engine: self.engine_mut().split_channel(channel),
                    queue,
                    out: Vec::new(),
                    err: None,
                })
                .collect();
            let per_worker = shards.len().div_ceil(workers);
            std::thread::scope(|scope| {
                for chunk in shards.chunks_mut(per_worker) {
                    scope.spawn(|| {
                        for shard in chunk {
                            for &pos in &shard.queue {
                                let request = &requests[order[pos]];
                                shard.engine.memory_mut().preload_pim_config(prime[pos]);
                                let operands: Vec<&PimBitVec> = request.operands.iter().collect();
                                match bitwise_on_engine(
                                    &mut shard.engine,
                                    row_bits,
                                    request.op,
                                    &operands,
                                    &request.dst,
                                ) {
                                    Ok((summary, record)) => {
                                        shard.out.push((pos, summary, record));
                                    }
                                    Err(e) => {
                                        shard.err = Some((pos, e));
                                        break;
                                    }
                                }
                            }
                        }
                    });
                }
            });
            for shard in shards {
                self.engine_mut().absorb(shard.engine);
                for (pos, summary, record) in shard.out {
                    slots[pos] = Some((summary, record));
                }
                if let Some((pos, e)) = shard.err {
                    match first_err {
                        Some((fp, _)) if fp <= pos => {}
                        _ => first_err = Some((pos, e)),
                    }
                }
            }
            // One ledger check per sync point (not per absorbed shard):
            // the invariant only needs to hold once every part is in.
            self.engine().memory().assert_ledger_consistent();
            p = q;
        }

        // Leave the unified mode register where the serial stream would:
        // at the last scheduled op's configuration.
        if first_err.is_none() {
            if let Some(&last) = order.last() {
                self.engine_mut()
                    .memory_mut()
                    .preload_pim_config(mode_for(requests[last].op));
            }
        }
        let mut per_op = Vec::with_capacity(n);
        for (pos, slot) in slots.into_iter().enumerate() {
            if let Some((summary, record)) = slot {
                self.push_trace(record);
                per_op.push((order[pos], summary));
            }
        }
        if let Some((_, e)) = first_err {
            return Err(e);
        }
        Ok(self.build_report(requests, per_op))
    }

    /// Replays per-request summaries (in scheduled order) through the
    /// bank-level critical-path model and assembles the report. Used
    /// identically by the serial and parallel paths, so their reports
    /// agree whenever their summaries do.
    fn build_report(
        &self,
        requests: &[BatchRequest],
        per_op: Vec<(usize, OpSummary)>,
    ) -> ScheduleReport {
        let mode_switches_naive = mode_switches(requests.iter().map(|r| r.op));
        let mode_switches_scheduled = mode_switches(per_op.iter().map(|&(i, _)| requests[i].op));
        let channels = self.engine().memory().geometry().channels as usize;
        let timing = self.engine().memory().config().timing.clone();
        let mut channel_times_ns = vec![0.0f64; channels];
        let mut serial_time_ns = 0.0;

        // Critical-path state: one cursor per channel bus, one per bank
        // lane, and a rolling four-entry ACT history per rank.
        let mut makespan = MakespanReport::empty(channels);
        let mut bus_free = vec![0.0f64; channels];
        let mut lane_free: HashMap<(u32, u32, u32), f64> = HashMap::new();
        let mut act_history: HashMap<(u32, u32), Vec<f64>> = HashMap::new();

        for &(i, summary) in &per_op {
            let request = &requests[i];
            serial_time_ns += summary.time_ns;
            let home = request.dst.rows()[0];
            let channel = home.channel as usize;
            channel_times_ns[channel] += summary.time_ns;

            // The request launches once its bank lane and the channel bus
            // are free, and its first activation clears the rank's
            // tRRD/tFAW window.
            let lane = (home.channel, home.rank, home.bank);
            let ready = bus_free[channel].max(lane_free.get(&lane).copied().unwrap_or(0.0));
            let start = if summary.activations > 0 {
                let history = act_history.entry((home.channel, home.rank)).or_default();
                let gated = timing.earliest_activation_ns(history, ready);
                history.push(gated);
                if history.len() > 4 {
                    history.remove(0);
                }
                gated
            } else {
                ready
            };
            // Shared segment first (command + bus traffic), then the lane
            // segment runs to completion inside the bank.
            bus_free[channel] = start + summary.shared_ns;
            let end = start + summary.time_ns;
            lane_free.insert(lane, end);
            makespan.channel_completion_ns[channel] =
                makespan.channel_completion_ns[channel].max(end);
            makespan.bus_serialized_ns += summary.shared_ns;
            makespan.lane_ns += summary.lane_ns();
            makespan.rrd_faw_stall_ns += start - ready;
            makespan.reliability += summary.reliability;
        }

        makespan.lanes_used = lane_free.len();
        makespan.makespan_ns = makespan
            .channel_completion_ns
            .iter()
            .copied()
            .fold(0.0, f64::max);
        ScheduleReport {
            serial_time_ns,
            makespan_ns: makespan.makespan_ns,
            channel_times_ns,
            mode_switches_naive,
            mode_switches_scheduled,
            makespan,
            per_op,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::MappingPolicy;

    fn sys() -> PimSystem {
        PimSystem::pcm_default(MappingPolicy::SubarrayFirst)
    }

    /// Builds `n` independent 2-operand requests of alternating op kinds.
    fn alternating_batch(sys: &mut PimSystem, n: usize) -> Vec<BatchRequest> {
        (0..n)
            .map(|i| {
                let group = sys.alloc_group(3, 256).expect("alloc");
                BatchRequest {
                    op: if i % 2 == 0 {
                        BitwiseOp::Or
                    } else {
                        BitwiseOp::And
                    },
                    operands: group[..2].to_vec(),
                    dst: group[2].clone(),
                }
            })
            .collect()
    }

    #[test]
    fn scheduling_batches_mode_switches() {
        let mut s = sys();
        let batch = alternating_batch(&mut s, 8);
        let report = s.execute_batch(&batch).expect("batch runs");
        assert_eq!(report.mode_switches_naive, 7);
        assert_eq!(
            report.mode_switches_scheduled, 1,
            "independent ops should group into one OR run and one AND run"
        );
        assert_eq!(report.per_op.len(), 8);
    }

    #[test]
    fn dependences_are_never_reordered() {
        let mut s = sys();
        let a = s.alloc(128).expect("a");
        let b = s.alloc(128).expect("b");
        let mid = s.alloc(128).expect("mid");
        let out = s.alloc(128).expect("out");
        s.store(&a, &[true; 128]).expect("store");

        // AND first, then an OR that reads the AND's result: grouping by
        // mode would want OR first, but the dependence forbids it.
        let batch = vec![
            BatchRequest {
                op: BitwiseOp::And,
                operands: vec![a.clone(), a.clone()],
                dst: mid.clone(),
            },
            BatchRequest {
                op: BitwiseOp::Or,
                operands: vec![mid.clone(), b.clone()],
                dst: out.clone(),
            },
        ];
        let order = schedule(&batch);
        assert_eq!(order, vec![0, 1], "RAW dependence must hold the order");
        s.execute_batch(&batch).expect("batch runs");
        assert_eq!(s.count_ones(&out), 128, "mid's value flowed into out");
    }

    #[test]
    fn war_and_waw_conflicts_are_respected() {
        let mut s = sys();
        let a = s.alloc(64).expect("a");
        let b = s.alloc(64).expect("b");
        let dst = s.alloc(64).expect("dst");
        let batch = vec![
            // Reads a, writes dst.
            BatchRequest {
                op: BitwiseOp::Or,
                operands: vec![a.clone(), b.clone()],
                dst: dst.clone(),
            },
            // WAR: writes a (which the first reads).
            BatchRequest {
                op: BitwiseOp::Not,
                operands: vec![b.clone()],
                dst: a.clone(),
            },
            // WAW: writes dst again.
            BatchRequest {
                op: BitwiseOp::And,
                operands: vec![a.clone(), b.clone()],
                dst: dst.clone(),
            },
        ];
        let order = schedule(&batch);
        let pos = |i: usize| order.iter().position(|&x| x == i).expect("present");
        assert!(pos(0) < pos(1), "WAR order");
        assert!(pos(1) < pos(2), "the AND reads the NOT's output");
    }

    #[test]
    fn batch_results_match_sequential_execution() {
        let build = |s: &mut PimSystem| -> (Vec<BatchRequest>, PimBitVec) {
            let group = s.alloc_group(4, 512).expect("alloc");
            let mut bits = vec![false; 512];
            bits[7] = true;
            s.store(&group[0], &bits).expect("store");
            let batch = vec![
                BatchRequest {
                    op: BitwiseOp::Or,
                    operands: vec![group[0].clone(), group[1].clone()],
                    dst: group[2].clone(),
                },
                BatchRequest {
                    op: BitwiseOp::Not,
                    operands: vec![group[2].clone()],
                    dst: group[3].clone(),
                },
            ];
            (batch, group[3].clone())
        };

        let mut scheduled = sys();
        let (batch, out) = build(&mut scheduled);
        scheduled.execute_batch(&batch).expect("scheduled");
        let scheduled_bits = scheduled.load(&out);

        let mut sequential = sys();
        let (batch, out) = build(&mut sequential);
        for r in &batch {
            let operands: Vec<&PimBitVec> = r.operands.iter().collect();
            sequential
                .bitwise(r.op, &operands, &r.dst)
                .expect("sequential");
        }
        assert_eq!(scheduled_bits, sequential.load(&out));
    }

    #[test]
    fn channel_parallelism_reduces_makespan() {
        // Random placement spreads destinations across channels.
        let mut s = PimSystem::pcm_default(MappingPolicy::random());
        let batch: Vec<BatchRequest> = (0..16)
            .map(|_| {
                let a = s.alloc(4096).expect("a");
                let b = s.alloc(4096).expect("b");
                let dst = s.alloc(4096).expect("dst");
                BatchRequest {
                    op: BitwiseOp::Or,
                    operands: vec![a, b],
                    dst,
                }
            })
            .collect();
        let report = s.execute_batch(&batch).expect("batch runs");
        assert!(
            report.channel_parallel_speedup() > 1.5,
            "16 ops over 4 channels should overlap (got {:.2}x)",
            report.channel_parallel_speedup()
        );
        assert!(report.makespan_ns <= report.serial_time_ns);
        assert_eq!(report.channel_times_ns.len(), 4);
    }

    #[test]
    fn empty_batch_is_trivial() {
        let mut s = sys();
        let report = s.execute_batch(&[]).expect("empty batch");
        assert_eq!(report.serial_time_ns, 0.0);
        assert_eq!(report.channel_parallel_speedup(), 1.0);
        assert_eq!(report.makespan.lanes_used, 0);
        assert_eq!(report.makespan.overlapped_fraction(), 0.0);
        assert_eq!(report.makespan.channel_completion_ns, vec![0.0; 4]);
    }

    /// One two-operand request per bank of channel 0 / rank 0, placed by
    /// hand so the lane assignment is fully controlled.
    fn one_request_per_bank(banks: u32, len: u64) -> Vec<BatchRequest> {
        (0..banks)
            .map(|b| {
                let row = |r: u32| vec![RowAddr::new(0, 0, b, 0, r)];
                BatchRequest {
                    op: BitwiseOp::Or,
                    operands: vec![
                        PimBitVec::new(1000 + u64::from(b) * 3, len, row(0)),
                        PimBitVec::new(1001 + u64::from(b) * 3, len, row(1)),
                    ],
                    dst: PimBitVec::new(1002 + u64::from(b) * 3, len, row(2)),
                }
            })
            .collect()
    }

    #[test]
    fn bank_lanes_overlap_within_a_channel() {
        let mut s = sys();
        let batch = one_request_per_bank(8, 4096);
        let report = s.execute_batch(&batch).expect("batch runs");

        // Everything sits on channel 0: the old channel-level model would
        // have reported makespan == serial sum. Bank lanes must beat it.
        assert!((report.channel_times_ns[0] - report.serial_time_ns).abs() < 1e-9);
        assert!(
            report.channel_parallel_speedup() > 2.0,
            "8 bank lanes should overlap substantially (got {:.2}x)",
            report.channel_parallel_speedup()
        );
        assert!(report.makespan_ns <= report.serial_time_ns);
        assert_eq!(report.makespan.lanes_used, 8);
        assert!(report.makespan.overlapped_fraction() > 0.5);

        // The makespan respects every lower bound: the longest single
        // request, the tRRD spacing of the eight launches, and one full
        // tFAW window (more than four activations on the rank).
        let t = s.engine().memory().config().timing.clone();
        let longest = report
            .per_op
            .iter()
            .map(|(_, op)| op.time_ns)
            .fold(0.0, f64::max);
        assert!(report.makespan_ns >= longest - 1e-9);
        assert!(report.makespan_ns >= 7.0 * t.t_rrd_ns);
        assert!(report.makespan_ns >= t.t_faw_ns);

        // The breakdown is consistent: shared + lane covers the serial
        // account exactly.
        let total = report.makespan.bus_serialized_ns + report.makespan.lane_ns;
        assert!((total - report.serial_time_ns).abs() < 1e-9);
    }

    #[test]
    fn trrd_and_tfaw_gate_overlapped_launches() {
        // tRRD/tFAW large enough to bind overlapped launches, but smaller
        // than a full serial command so the *controller's* serial stream
        // still never stalls — the gate must live in the scheduler model.
        let mut mem = pinatubo_mem::MemConfig::pcm_default();
        mem.timing.t_rrd_ns = 150.0;
        mem.timing.t_faw_ns = 600.0;
        let mut s = PimSystem::new(
            mem,
            pinatubo_core::PinatuboConfig::default(),
            MappingPolicy::SubarrayFirst,
        );
        let batch = one_request_per_bank(8, 4096);
        let report = s.execute_batch(&batch).expect("batch runs");

        assert_eq!(
            s.stats().time.stall_ns,
            0.0,
            "the serial command stream must not stall at these parameters"
        );
        assert!(
            report.makespan.rrd_faw_stall_ns > 0.0,
            "overlapped launches on one rank must wait out tRRD"
        );
        // Eight gated launches: at least 7·tRRD of spacing on the rank.
        assert!(report.makespan_ns >= 7.0 * 150.0);
        assert!(report.makespan_ns <= report.serial_time_ns + 1e-9);
    }

    #[test]
    fn list_scheduling_beats_static_order_on_rank_conflicts() {
        // Two ranks × eight banks on channel 0, submitted rank-clumped,
        // with tRRD/tFAW tight enough that back-to-back same-rank
        // launches gate each other. The static topological order keeps
        // the clumped submission order (all level 0, all OR), so rank 1's
        // launches trail rank 0's entire gated train; the list scheduler
        // alternates ranks and halves the launch tail.
        let mut mem = pinatubo_mem::MemConfig::pcm_default();
        mem.timing.t_rrd_ns = 150.0;
        mem.timing.t_faw_ns = 600.0;
        let make_sys = || {
            PimSystem::new(
                mem.clone(),
                pinatubo_core::PinatuboConfig::default(),
                MappingPolicy::SubarrayFirst,
            )
        };
        let batch: Vec<BatchRequest> = (0..2u32)
            .flat_map(|rank| {
                (0..8u32).map(move |b| {
                    let id = u64::from(rank * 8 + b) * 3;
                    let row = |r: u32| vec![RowAddr::new(0, rank, b, 0, r)];
                    BatchRequest {
                        op: BitwiseOp::Or,
                        operands: vec![
                            PimBitVec::new(2000 + id, 4096, row(0)),
                            PimBitVec::new(2001 + id, 4096, row(1)),
                        ],
                        dst: PimBitVec::new(2002 + id, 4096, row(2)),
                    }
                })
            })
            .collect();

        let static_order = schedule(&batch);
        assert_eq!(
            static_order,
            (0..16).collect::<Vec<_>>(),
            "independent same-op requests keep submission order statically"
        );
        let mut static_sys = make_sys();
        let mut per_op = Vec::new();
        for &i in &static_order {
            let operands: Vec<&PimBitVec> = batch[i].operands.iter().collect();
            let summary = static_sys
                .bitwise(batch[i].op, &operands, &batch[i].dst)
                .expect("static op");
            per_op.push((i, summary));
        }
        let static_report = static_sys.build_report(&batch, per_op);

        let mut planned_sys = make_sys();
        let planned_report = planned_sys.execute_batch(&batch).expect("planned batch");

        assert!(
            planned_report.makespan_ns < 0.8 * static_report.makespan_ns,
            "list scheduling must cut the gated launch tail \
             (planned {:.0}ns vs static {:.0}ns)",
            planned_report.makespan_ns,
            static_report.makespan_ns
        );
        assert!(
            planned_report.serial_time_ns <= static_report.serial_time_ns + 1e-9,
            "reordering must not make the serial account worse"
        );
    }

    #[test]
    fn bank_parallel_execution_matches_serial_contents() {
        // The overlap account must never change semantics: row contents
        // after a scheduled (bank-parallel) batch are bit-identical to
        // submission-order serial execution.
        let build = |s: &mut PimSystem| -> (Vec<BatchRequest>, Vec<PimBitVec>) {
            let batch = one_request_per_bank(8, 512);
            for (b, request) in batch.iter().enumerate() {
                let bits: Vec<bool> = (0..512).map(|i| (i + b) % 3 == 0).collect();
                s.store(&request.operands[0], &bits).expect("store a");
                let bits: Vec<bool> = (0..512).map(|i| (i * 7 + b) % 5 == 0).collect();
                s.store(&request.operands[1], &bits).expect("store b");
            }
            let outs = batch.iter().map(|r| r.dst.clone()).collect();
            (batch, outs)
        };

        let mut parallel = sys();
        let (batch, outs) = build(&mut parallel);
        parallel.execute_batch(&batch).expect("scheduled batch");
        let parallel_bits: Vec<Vec<bool>> = outs.iter().map(|v| parallel.load(v)).collect();

        let mut serial = sys();
        let (batch, outs) = build(&mut serial);
        for r in &batch {
            let operands: Vec<&PimBitVec> = r.operands.iter().collect();
            serial.bitwise(r.op, &operands, &r.dst).expect("serial op");
        }
        let serial_bits: Vec<Vec<bool>> = outs.iter().map(|v| serial.load(v)).collect();

        assert_eq!(parallel_bits, serial_bits);
    }
}
