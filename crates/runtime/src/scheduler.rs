//! The driver-library scheduler (§5: the dynamic linked driver "first
//! optimizes and reschedules the operation requests, and then issues
//! extended instruction for PIM").
//!
//! Two optimizations are modelled:
//!
//! * **Mode-register batching** — the SA reference configuration is a
//!   mode-register write; executing all ORs, then all ANDs, … (where data
//!   dependences allow) avoids reconfiguration thrash.
//! * **Channel parallelism** — channels have independent command/data
//!   buses, so operations on different channels overlap. The engine's
//!   accounting is a single serial command stream; the scheduler reports
//!   the *makespan* over per-channel completion times alongside it.
//!
//! Reordering is dependence-aware: requests are grouped into topological
//! levels by row conflicts (read-after-write, write-after-anything), and
//! only reordered within a level.

use crate::bitvec::PimBitVec;
use crate::system::{OpSummary, PimSystem};
use crate::RuntimeError;
use pinatubo_core::BitwiseOp;
use pinatubo_mem::RowAddr;
use std::collections::HashSet;

/// One queued operation request.
#[derive(Debug, Clone)]
pub struct BatchRequest {
    /// The bulk operation.
    pub op: BitwiseOp,
    /// Operand vectors.
    pub operands: Vec<PimBitVec>,
    /// Destination vector.
    pub dst: PimBitVec,
}

impl BatchRequest {
    /// Rows this request reads.
    fn reads(&self) -> impl Iterator<Item = RowAddr> + '_ {
        self.operands.iter().flat_map(|v| v.rows().iter().copied())
    }

    /// Rows this request writes.
    fn writes(&self) -> impl Iterator<Item = RowAddr> + '_ {
        self.dst.rows().iter().copied()
    }

    /// Whether `self` must stay ordered after `earlier`.
    fn depends_on(&self, earlier: &BatchRequest) -> bool {
        let earlier_writes: HashSet<RowAddr> = earlier.writes().collect();
        // RAW: we read something it wrote. WAW: we write something it
        // wrote. WAR: we write something it read.
        if self.reads().any(|r| earlier_writes.contains(&r)) {
            return true;
        }
        if self.writes().any(|w| earlier_writes.contains(&w)) {
            return true;
        }
        let our_writes: HashSet<RowAddr> = self.writes().collect();
        earlier.reads().any(|r| our_writes.contains(&r))
    }
}

/// What a scheduled batch cost.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleReport {
    /// Sum of per-op times — the single-command-stream account.
    pub serial_time_ns: f64,
    /// Completion time with channel-level overlap.
    pub makespan_ns: f64,
    /// Per-channel busy times.
    pub channel_times_ns: Vec<f64>,
    /// Mode-register switches the submitted order would have issued.
    pub mode_switches_naive: u64,
    /// Mode-register switches after reordering.
    pub mode_switches_scheduled: u64,
    /// Per-request summaries, in *scheduled* execution order, paired with
    /// the request's index in the submitted batch.
    pub per_op: Vec<(usize, OpSummary)>,
}

impl ScheduleReport {
    /// Speedup of channel-parallel completion over the serial stream.
    #[must_use]
    pub fn channel_parallel_speedup(&self) -> f64 {
        if self.makespan_ns == 0.0 {
            1.0
        } else {
            self.serial_time_ns / self.makespan_ns
        }
    }
}

/// Computes the dependence-respecting, mode-grouped execution order.
/// Returns indices into `requests`.
#[must_use]
pub fn schedule(requests: &[BatchRequest]) -> Vec<usize> {
    // Topological levels by conflict: level(i) = 1 + max level of any
    // earlier conflicting request.
    let mut levels = vec![0usize; requests.len()];
    for i in 0..requests.len() {
        for j in 0..i {
            if requests[i].depends_on(&requests[j]) {
                levels[i] = levels[i].max(levels[j] + 1);
            }
        }
    }
    let mut order: Vec<usize> = (0..requests.len()).collect();
    // Stable sort: primary by level (dependences), secondary by operation
    // kind (mode-register batching).
    order.sort_by_key(|&i| (levels[i], mode_rank(requests[i].op)));
    order
}

/// Stable grouping key for mode-register batching.
fn mode_rank(op: BitwiseOp) -> u8 {
    match op {
        BitwiseOp::Or => 0,
        BitwiseOp::And => 1,
        BitwiseOp::Xor => 2,
        BitwiseOp::Not => 3,
    }
}

/// Counts adjacent operation-kind transitions (≈ mode-register switches).
fn mode_switches(ops: impl Iterator<Item = BitwiseOp>) -> u64 {
    let mut switches = 0;
    let mut last = None;
    for op in ops {
        if last.is_some_and(|l| l != op) {
            switches += 1;
        }
        last = Some(op);
    }
    switches
}

impl PimSystem {
    /// Executes a batch of requests through the driver scheduler.
    ///
    /// Results are identical to executing the batch in submission order
    /// (reordering respects data dependences); the report additionally
    /// accounts the mode-switch savings and the channel-parallel makespan.
    ///
    /// # Errors
    ///
    /// Stops at the first failing request and returns its error.
    pub fn execute_batch(
        &mut self,
        requests: &[BatchRequest],
    ) -> Result<ScheduleReport, RuntimeError> {
        let order = schedule(requests);
        let mode_switches_naive = mode_switches(requests.iter().map(|r| r.op));
        let mode_switches_scheduled = mode_switches(order.iter().map(|&i| requests[i].op));

        let channels = self.engine().memory().geometry().channels as usize;
        let mut channel_times_ns = vec![0.0f64; channels];
        let mut serial_time_ns = 0.0;
        let mut per_op = Vec::with_capacity(order.len());

        for &i in &order {
            let request = &requests[i];
            let operands: Vec<&PimBitVec> = request.operands.iter().collect();
            let summary = self.bitwise(request.op, &operands, &request.dst)?;
            serial_time_ns += summary.time_ns;
            let channel = request.dst.rows()[0].channel as usize;
            channel_times_ns[channel] += summary.time_ns;
            per_op.push((i, summary));
        }

        let makespan_ns = channel_times_ns.iter().copied().fold(0.0, f64::max);
        Ok(ScheduleReport {
            serial_time_ns,
            makespan_ns,
            channel_times_ns,
            mode_switches_naive,
            mode_switches_scheduled,
            per_op,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::MappingPolicy;

    fn sys() -> PimSystem {
        PimSystem::pcm_default(MappingPolicy::SubarrayFirst)
    }

    /// Builds `n` independent 2-operand requests of alternating op kinds.
    fn alternating_batch(sys: &mut PimSystem, n: usize) -> Vec<BatchRequest> {
        (0..n)
            .map(|i| {
                let group = sys.alloc_group(3, 256).expect("alloc");
                BatchRequest {
                    op: if i % 2 == 0 {
                        BitwiseOp::Or
                    } else {
                        BitwiseOp::And
                    },
                    operands: group[..2].to_vec(),
                    dst: group[2].clone(),
                }
            })
            .collect()
    }

    #[test]
    fn scheduling_batches_mode_switches() {
        let mut s = sys();
        let batch = alternating_batch(&mut s, 8);
        let report = s.execute_batch(&batch).expect("batch runs");
        assert_eq!(report.mode_switches_naive, 7);
        assert_eq!(
            report.mode_switches_scheduled, 1,
            "independent ops should group into one OR run and one AND run"
        );
        assert_eq!(report.per_op.len(), 8);
    }

    #[test]
    fn dependences_are_never_reordered() {
        let mut s = sys();
        let a = s.alloc(128).expect("a");
        let b = s.alloc(128).expect("b");
        let mid = s.alloc(128).expect("mid");
        let out = s.alloc(128).expect("out");
        s.store(&a, &[true; 128]).expect("store");

        // AND first, then an OR that reads the AND's result: grouping by
        // mode would want OR first, but the dependence forbids it.
        let batch = vec![
            BatchRequest {
                op: BitwiseOp::And,
                operands: vec![a.clone(), a.clone()],
                dst: mid.clone(),
            },
            BatchRequest {
                op: BitwiseOp::Or,
                operands: vec![mid.clone(), b.clone()],
                dst: out.clone(),
            },
        ];
        let order = schedule(&batch);
        assert_eq!(order, vec![0, 1], "RAW dependence must hold the order");
        s.execute_batch(&batch).expect("batch runs");
        assert_eq!(s.count_ones(&out), 128, "mid's value flowed into out");
    }

    #[test]
    fn war_and_waw_conflicts_are_respected() {
        let mut s = sys();
        let a = s.alloc(64).expect("a");
        let b = s.alloc(64).expect("b");
        let dst = s.alloc(64).expect("dst");
        let batch = vec![
            // Reads a, writes dst.
            BatchRequest {
                op: BitwiseOp::Or,
                operands: vec![a.clone(), b.clone()],
                dst: dst.clone(),
            },
            // WAR: writes a (which the first reads).
            BatchRequest {
                op: BitwiseOp::Not,
                operands: vec![b.clone()],
                dst: a.clone(),
            },
            // WAW: writes dst again.
            BatchRequest {
                op: BitwiseOp::And,
                operands: vec![a.clone(), b.clone()],
                dst: dst.clone(),
            },
        ];
        let order = schedule(&batch);
        let pos = |i: usize| order.iter().position(|&x| x == i).expect("present");
        assert!(pos(0) < pos(1), "WAR order");
        assert!(pos(1) < pos(2), "the AND reads the NOT's output");
    }

    #[test]
    fn batch_results_match_sequential_execution() {
        let build = |s: &mut PimSystem| -> (Vec<BatchRequest>, PimBitVec) {
            let group = s.alloc_group(4, 512).expect("alloc");
            let mut bits = vec![false; 512];
            bits[7] = true;
            s.store(&group[0], &bits).expect("store");
            let batch = vec![
                BatchRequest {
                    op: BitwiseOp::Or,
                    operands: vec![group[0].clone(), group[1].clone()],
                    dst: group[2].clone(),
                },
                BatchRequest {
                    op: BitwiseOp::Not,
                    operands: vec![group[2].clone()],
                    dst: group[3].clone(),
                },
            ];
            (batch, group[3].clone())
        };

        let mut scheduled = sys();
        let (batch, out) = build(&mut scheduled);
        scheduled.execute_batch(&batch).expect("scheduled");
        let scheduled_bits = scheduled.load(&out);

        let mut sequential = sys();
        let (batch, out) = build(&mut sequential);
        for r in &batch {
            let operands: Vec<&PimBitVec> = r.operands.iter().collect();
            sequential
                .bitwise(r.op, &operands, &r.dst)
                .expect("sequential");
        }
        assert_eq!(scheduled_bits, sequential.load(&out));
    }

    #[test]
    fn channel_parallelism_reduces_makespan() {
        // Random placement spreads destinations across channels.
        let mut s = PimSystem::pcm_default(MappingPolicy::random());
        let batch: Vec<BatchRequest> = (0..16)
            .map(|_| {
                let a = s.alloc(4096).expect("a");
                let b = s.alloc(4096).expect("b");
                let dst = s.alloc(4096).expect("dst");
                BatchRequest {
                    op: BitwiseOp::Or,
                    operands: vec![a, b],
                    dst,
                }
            })
            .collect();
        let report = s.execute_batch(&batch).expect("batch runs");
        assert!(
            report.channel_parallel_speedup() > 1.5,
            "16 ops over 4 channels should overlap (got {:.2}x)",
            report.channel_parallel_speedup()
        );
        assert!(report.makespan_ns <= report.serial_time_ns);
        assert_eq!(report.channel_times_ns.len(), 4);
    }

    #[test]
    fn empty_batch_is_trivial() {
        let mut s = sys();
        let report = s.execute_batch(&[]).expect("empty batch");
        assert_eq!(report.serial_time_ns, 0.0);
        assert_eq!(report.channel_parallel_speedup(), 1.0);
    }
}
