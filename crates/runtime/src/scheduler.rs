//! The driver-library scheduler (§5: the dynamic linked driver "first
//! optimizes and reschedules the operation requests, and then issues
//! extended instruction for PIM").
//!
//! Two optimizations are modelled:
//!
//! * **Mode-register batching** — the SA reference configuration is a
//!   mode-register write; executing all ORs, then all ANDs, … (where data
//!   dependences allow) avoids reconfiguration thrash.
//! * **Channel and bank parallelism** — channels have independent
//!   command/data buses, and banks within a channel have independent
//!   sense-amplifier stripes, so the ACT/sense/write phases of requests on
//!   different banks may overlap. What *cannot* overlap within a channel
//!   is the shared bus (DDR bursts, mode-register sets), and overlapping
//!   activations on one rank must respect the tRRD/tFAW inter-activation
//!   constraints. The engine's accounting is a single serial command
//!   stream; the scheduler replays each request's cost through a
//!   critical-path model (one cursor per bank lane, one per channel bus,
//!   a rolling four-ACT window per rank) and reports the resulting
//!   *makespan* in a [`MakespanReport`] alongside the serial sum.
//!
//! Reordering is dependence-aware: requests are grouped into topological
//! levels by row conflicts (read-after-write, write-after-anything), and
//! only reordered within a level.

use crate::bitvec::PimBitVec;
use crate::system::{OpSummary, PimSystem};
use crate::RuntimeError;
use pinatubo_core::BitwiseOp;
use pinatubo_mem::{ReliabilityStats, RowAddr};
use std::collections::{HashMap, HashSet};

/// One queued operation request.
#[derive(Debug, Clone)]
pub struct BatchRequest {
    /// The bulk operation.
    pub op: BitwiseOp,
    /// Operand vectors.
    pub operands: Vec<PimBitVec>,
    /// Destination vector.
    pub dst: PimBitVec,
}

impl BatchRequest {
    /// Rows this request reads.
    fn reads(&self) -> impl Iterator<Item = RowAddr> + '_ {
        self.operands.iter().flat_map(|v| v.rows().iter().copied())
    }

    /// Rows this request writes.
    fn writes(&self) -> impl Iterator<Item = RowAddr> + '_ {
        self.dst.rows().iter().copied()
    }

    /// Whether `self` must stay ordered after `earlier`.
    fn depends_on(&self, earlier: &BatchRequest) -> bool {
        let earlier_writes: HashSet<RowAddr> = earlier.writes().collect();
        // RAW: we read something it wrote. WAW: we write something it
        // wrote. WAR: we write something it read.
        if self.reads().any(|r| earlier_writes.contains(&r)) {
            return true;
        }
        if self.writes().any(|w| earlier_writes.contains(&w)) {
            return true;
        }
        let our_writes: HashSet<RowAddr> = self.writes().collect();
        earlier.reads().any(|r| our_writes.contains(&r))
    }
}

/// What a scheduled batch cost.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleReport {
    /// Sum of per-op times — the single-command-stream account.
    pub serial_time_ns: f64,
    /// Completion time under the bank-level critical-path model.
    pub makespan_ns: f64,
    /// Per-channel busy times (sum of each channel's request times).
    pub channel_times_ns: Vec<f64>,
    /// Mode-register switches the submitted order would have issued.
    pub mode_switches_naive: u64,
    /// Mode-register switches after reordering.
    pub mode_switches_scheduled: u64,
    /// The critical-path breakdown behind `makespan_ns`.
    pub makespan: MakespanReport,
    /// Per-request summaries, in *scheduled* execution order, paired with
    /// the request's index in the submitted batch.
    pub per_op: Vec<(usize, OpSummary)>,
}

impl ScheduleReport {
    /// Speedup of overlapped completion over the serial stream.
    #[must_use]
    pub fn channel_parallel_speedup(&self) -> f64 {
        if self.makespan_ns == 0.0 {
            1.0
        } else {
            self.serial_time_ns / self.makespan_ns
        }
    }
}

/// The bank-level critical-path account of one batch: where the time went
/// and how much of it overlapped away.
///
/// Each request is split into a *shared* segment (DDR-bus bursts +
/// mode-register sets, serialized on the channel's bus) and a *lane*
/// segment (ACT/sense/write/GDL/precharge, local to the destination's
/// bank). Lanes of different banks run concurrently; a request's first
/// activation additionally waits out tRRD after the rank's previous
/// activation and tFAW after its fourth-most-recent one. Activations
/// *inside* one request are already serialized by the request's own lane
/// time (≥ a full command each), so only request launches need gating.
#[derive(Debug, Clone, PartialEq)]
pub struct MakespanReport {
    /// Completion time of the critical path over all bank lanes.
    pub makespan_ns: f64,
    /// Channel-serialized (bus + MRS) time, summed over requests.
    pub bus_serialized_ns: f64,
    /// Bank-local, overlappable time, summed over requests.
    pub lane_ns: f64,
    /// Launch delay inserted by the tRRD/tFAW gates.
    pub rrd_faw_stall_ns: f64,
    /// Distinct (channel, rank, bank) lanes the batch touched.
    pub lanes_used: usize,
    /// Completion time of each channel.
    pub channel_completion_ns: Vec<f64>,
    /// Fault-injection and recovery counters summed over the batch.
    pub reliability: ReliabilityStats,
}

impl MakespanReport {
    /// An empty account over `channels` channels.
    #[must_use]
    pub fn empty(channels: usize) -> Self {
        MakespanReport {
            makespan_ns: 0.0,
            bus_serialized_ns: 0.0,
            lane_ns: 0.0,
            rrd_faw_stall_ns: 0.0,
            lanes_used: 0,
            channel_completion_ns: vec![0.0; channels],
            reliability: ReliabilityStats::default(),
        }
    }

    /// Fraction of the total submitted work that overlapped away:
    /// `1 − makespan / (shared + lane)`. Zero for an empty batch.
    #[must_use]
    pub fn overlapped_fraction(&self) -> f64 {
        let total = self.bus_serialized_ns + self.lane_ns;
        if total == 0.0 {
            0.0
        } else {
            1.0 - self.makespan_ns / total
        }
    }
}

/// Computes the dependence-respecting, mode-grouped execution order.
/// Returns indices into `requests`.
#[must_use]
pub fn schedule(requests: &[BatchRequest]) -> Vec<usize> {
    // Topological levels by conflict: level(i) = 1 + max level of any
    // earlier conflicting request.
    let mut levels = vec![0usize; requests.len()];
    for i in 0..requests.len() {
        for j in 0..i {
            if requests[i].depends_on(&requests[j]) {
                levels[i] = levels[i].max(levels[j] + 1);
            }
        }
    }
    let mut order: Vec<usize> = (0..requests.len()).collect();
    // Stable sort: primary by level (dependences), secondary by operation
    // kind (mode-register batching).
    order.sort_by_key(|&i| (levels[i], mode_rank(requests[i].op)));
    order
}

/// Stable grouping key for mode-register batching.
fn mode_rank(op: BitwiseOp) -> u8 {
    match op {
        BitwiseOp::Or => 0,
        BitwiseOp::And => 1,
        BitwiseOp::Xor => 2,
        BitwiseOp::Not => 3,
    }
}

/// Counts adjacent operation-kind transitions (≈ mode-register switches).
fn mode_switches(ops: impl Iterator<Item = BitwiseOp>) -> u64 {
    let mut switches = 0;
    let mut last = None;
    for op in ops {
        if last.is_some_and(|l| l != op) {
            switches += 1;
        }
        last = Some(op);
    }
    switches
}

impl PimSystem {
    /// Executes a batch of requests through the driver scheduler.
    ///
    /// Results are identical to executing the batch in submission order
    /// (reordering respects data dependences); the report additionally
    /// accounts the mode-switch savings and the channel-parallel makespan.
    ///
    /// # Errors
    ///
    /// Stops at the first failing request and returns its error.
    pub fn execute_batch(
        &mut self,
        requests: &[BatchRequest],
    ) -> Result<ScheduleReport, RuntimeError> {
        let order = schedule(requests);
        let mode_switches_naive = mode_switches(requests.iter().map(|r| r.op));
        let mode_switches_scheduled = mode_switches(order.iter().map(|&i| requests[i].op));

        let channels = self.engine().memory().geometry().channels as usize;
        let timing = self.engine().memory().config().timing.clone();
        let mut channel_times_ns = vec![0.0f64; channels];
        let mut serial_time_ns = 0.0;
        let mut per_op = Vec::with_capacity(order.len());

        // Critical-path state: one cursor per channel bus, one per bank
        // lane, and a rolling four-entry ACT history per rank.
        let mut makespan = MakespanReport::empty(channels);
        let mut bus_free = vec![0.0f64; channels];
        let mut lane_free: HashMap<(u32, u32, u32), f64> = HashMap::new();
        let mut act_history: HashMap<(u32, u32), Vec<f64>> = HashMap::new();

        for &i in &order {
            let request = &requests[i];
            let operands: Vec<&PimBitVec> = request.operands.iter().collect();
            let summary = self.bitwise(request.op, &operands, &request.dst)?;
            serial_time_ns += summary.time_ns;
            let home = request.dst.rows()[0];
            let channel = home.channel as usize;
            channel_times_ns[channel] += summary.time_ns;

            // The request launches once its bank lane and the channel bus
            // are free, and its first activation clears the rank's
            // tRRD/tFAW window.
            let lane = (home.channel, home.rank, home.bank);
            let ready = bus_free[channel].max(lane_free.get(&lane).copied().unwrap_or(0.0));
            let start = if summary.activations > 0 {
                let history = act_history.entry((home.channel, home.rank)).or_default();
                let gated = timing.earliest_activation_ns(history, ready);
                history.push(gated);
                if history.len() > 4 {
                    history.remove(0);
                }
                gated
            } else {
                ready
            };
            // Shared segment first (command + bus traffic), then the lane
            // segment runs to completion inside the bank.
            bus_free[channel] = start + summary.shared_ns;
            let end = start + summary.time_ns;
            lane_free.insert(lane, end);
            makespan.channel_completion_ns[channel] =
                makespan.channel_completion_ns[channel].max(end);
            makespan.bus_serialized_ns += summary.shared_ns;
            makespan.lane_ns += summary.lane_ns();
            makespan.rrd_faw_stall_ns += start - ready;
            makespan.reliability += summary.reliability;
            per_op.push((i, summary));
        }

        makespan.lanes_used = lane_free.len();
        makespan.makespan_ns = makespan
            .channel_completion_ns
            .iter()
            .copied()
            .fold(0.0, f64::max);
        Ok(ScheduleReport {
            serial_time_ns,
            makespan_ns: makespan.makespan_ns,
            channel_times_ns,
            mode_switches_naive,
            mode_switches_scheduled,
            makespan,
            per_op,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::MappingPolicy;

    fn sys() -> PimSystem {
        PimSystem::pcm_default(MappingPolicy::SubarrayFirst)
    }

    /// Builds `n` independent 2-operand requests of alternating op kinds.
    fn alternating_batch(sys: &mut PimSystem, n: usize) -> Vec<BatchRequest> {
        (0..n)
            .map(|i| {
                let group = sys.alloc_group(3, 256).expect("alloc");
                BatchRequest {
                    op: if i % 2 == 0 {
                        BitwiseOp::Or
                    } else {
                        BitwiseOp::And
                    },
                    operands: group[..2].to_vec(),
                    dst: group[2].clone(),
                }
            })
            .collect()
    }

    #[test]
    fn scheduling_batches_mode_switches() {
        let mut s = sys();
        let batch = alternating_batch(&mut s, 8);
        let report = s.execute_batch(&batch).expect("batch runs");
        assert_eq!(report.mode_switches_naive, 7);
        assert_eq!(
            report.mode_switches_scheduled, 1,
            "independent ops should group into one OR run and one AND run"
        );
        assert_eq!(report.per_op.len(), 8);
    }

    #[test]
    fn dependences_are_never_reordered() {
        let mut s = sys();
        let a = s.alloc(128).expect("a");
        let b = s.alloc(128).expect("b");
        let mid = s.alloc(128).expect("mid");
        let out = s.alloc(128).expect("out");
        s.store(&a, &[true; 128]).expect("store");

        // AND first, then an OR that reads the AND's result: grouping by
        // mode would want OR first, but the dependence forbids it.
        let batch = vec![
            BatchRequest {
                op: BitwiseOp::And,
                operands: vec![a.clone(), a.clone()],
                dst: mid.clone(),
            },
            BatchRequest {
                op: BitwiseOp::Or,
                operands: vec![mid.clone(), b.clone()],
                dst: out.clone(),
            },
        ];
        let order = schedule(&batch);
        assert_eq!(order, vec![0, 1], "RAW dependence must hold the order");
        s.execute_batch(&batch).expect("batch runs");
        assert_eq!(s.count_ones(&out), 128, "mid's value flowed into out");
    }

    #[test]
    fn war_and_waw_conflicts_are_respected() {
        let mut s = sys();
        let a = s.alloc(64).expect("a");
        let b = s.alloc(64).expect("b");
        let dst = s.alloc(64).expect("dst");
        let batch = vec![
            // Reads a, writes dst.
            BatchRequest {
                op: BitwiseOp::Or,
                operands: vec![a.clone(), b.clone()],
                dst: dst.clone(),
            },
            // WAR: writes a (which the first reads).
            BatchRequest {
                op: BitwiseOp::Not,
                operands: vec![b.clone()],
                dst: a.clone(),
            },
            // WAW: writes dst again.
            BatchRequest {
                op: BitwiseOp::And,
                operands: vec![a.clone(), b.clone()],
                dst: dst.clone(),
            },
        ];
        let order = schedule(&batch);
        let pos = |i: usize| order.iter().position(|&x| x == i).expect("present");
        assert!(pos(0) < pos(1), "WAR order");
        assert!(pos(1) < pos(2), "the AND reads the NOT's output");
    }

    #[test]
    fn batch_results_match_sequential_execution() {
        let build = |s: &mut PimSystem| -> (Vec<BatchRequest>, PimBitVec) {
            let group = s.alloc_group(4, 512).expect("alloc");
            let mut bits = vec![false; 512];
            bits[7] = true;
            s.store(&group[0], &bits).expect("store");
            let batch = vec![
                BatchRequest {
                    op: BitwiseOp::Or,
                    operands: vec![group[0].clone(), group[1].clone()],
                    dst: group[2].clone(),
                },
                BatchRequest {
                    op: BitwiseOp::Not,
                    operands: vec![group[2].clone()],
                    dst: group[3].clone(),
                },
            ];
            (batch, group[3].clone())
        };

        let mut scheduled = sys();
        let (batch, out) = build(&mut scheduled);
        scheduled.execute_batch(&batch).expect("scheduled");
        let scheduled_bits = scheduled.load(&out);

        let mut sequential = sys();
        let (batch, out) = build(&mut sequential);
        for r in &batch {
            let operands: Vec<&PimBitVec> = r.operands.iter().collect();
            sequential
                .bitwise(r.op, &operands, &r.dst)
                .expect("sequential");
        }
        assert_eq!(scheduled_bits, sequential.load(&out));
    }

    #[test]
    fn channel_parallelism_reduces_makespan() {
        // Random placement spreads destinations across channels.
        let mut s = PimSystem::pcm_default(MappingPolicy::random());
        let batch: Vec<BatchRequest> = (0..16)
            .map(|_| {
                let a = s.alloc(4096).expect("a");
                let b = s.alloc(4096).expect("b");
                let dst = s.alloc(4096).expect("dst");
                BatchRequest {
                    op: BitwiseOp::Or,
                    operands: vec![a, b],
                    dst,
                }
            })
            .collect();
        let report = s.execute_batch(&batch).expect("batch runs");
        assert!(
            report.channel_parallel_speedup() > 1.5,
            "16 ops over 4 channels should overlap (got {:.2}x)",
            report.channel_parallel_speedup()
        );
        assert!(report.makespan_ns <= report.serial_time_ns);
        assert_eq!(report.channel_times_ns.len(), 4);
    }

    #[test]
    fn empty_batch_is_trivial() {
        let mut s = sys();
        let report = s.execute_batch(&[]).expect("empty batch");
        assert_eq!(report.serial_time_ns, 0.0);
        assert_eq!(report.channel_parallel_speedup(), 1.0);
        assert_eq!(report.makespan.lanes_used, 0);
        assert_eq!(report.makespan.overlapped_fraction(), 0.0);
        assert_eq!(report.makespan.channel_completion_ns, vec![0.0; 4]);
    }

    /// One two-operand request per bank of channel 0 / rank 0, placed by
    /// hand so the lane assignment is fully controlled.
    fn one_request_per_bank(banks: u32, len: u64) -> Vec<BatchRequest> {
        (0..banks)
            .map(|b| {
                let row = |r: u32| vec![RowAddr::new(0, 0, b, 0, r)];
                BatchRequest {
                    op: BitwiseOp::Or,
                    operands: vec![
                        PimBitVec::new(1000 + u64::from(b) * 3, len, row(0)),
                        PimBitVec::new(1001 + u64::from(b) * 3, len, row(1)),
                    ],
                    dst: PimBitVec::new(1002 + u64::from(b) * 3, len, row(2)),
                }
            })
            .collect()
    }

    #[test]
    fn bank_lanes_overlap_within_a_channel() {
        let mut s = sys();
        let batch = one_request_per_bank(8, 4096);
        let report = s.execute_batch(&batch).expect("batch runs");

        // Everything sits on channel 0: the old channel-level model would
        // have reported makespan == serial sum. Bank lanes must beat it.
        assert!((report.channel_times_ns[0] - report.serial_time_ns).abs() < 1e-9);
        assert!(
            report.channel_parallel_speedup() > 2.0,
            "8 bank lanes should overlap substantially (got {:.2}x)",
            report.channel_parallel_speedup()
        );
        assert!(report.makespan_ns <= report.serial_time_ns);
        assert_eq!(report.makespan.lanes_used, 8);
        assert!(report.makespan.overlapped_fraction() > 0.5);

        // The makespan respects every lower bound: the longest single
        // request, the tRRD spacing of the eight launches, and one full
        // tFAW window (more than four activations on the rank).
        let t = s.engine().memory().config().timing.clone();
        let longest = report
            .per_op
            .iter()
            .map(|(_, op)| op.time_ns)
            .fold(0.0, f64::max);
        assert!(report.makespan_ns >= longest - 1e-9);
        assert!(report.makespan_ns >= 7.0 * t.t_rrd_ns);
        assert!(report.makespan_ns >= t.t_faw_ns);

        // The breakdown is consistent: shared + lane covers the serial
        // account exactly.
        let total = report.makespan.bus_serialized_ns + report.makespan.lane_ns;
        assert!((total - report.serial_time_ns).abs() < 1e-9);
    }

    #[test]
    fn trrd_and_tfaw_gate_overlapped_launches() {
        // tRRD/tFAW large enough to bind overlapped launches, but smaller
        // than a full serial command so the *controller's* serial stream
        // still never stalls — the gate must live in the scheduler model.
        let mut mem = pinatubo_mem::MemConfig::pcm_default();
        mem.timing.t_rrd_ns = 150.0;
        mem.timing.t_faw_ns = 600.0;
        let mut s = PimSystem::new(
            mem,
            pinatubo_core::PinatuboConfig::default(),
            MappingPolicy::SubarrayFirst,
        );
        let batch = one_request_per_bank(8, 4096);
        let report = s.execute_batch(&batch).expect("batch runs");

        assert_eq!(
            s.stats().time.stall_ns,
            0.0,
            "the serial command stream must not stall at these parameters"
        );
        assert!(
            report.makespan.rrd_faw_stall_ns > 0.0,
            "overlapped launches on one rank must wait out tRRD"
        );
        // Eight gated launches: at least 7·tRRD of spacing on the rank.
        assert!(report.makespan_ns >= 7.0 * 150.0);
        assert!(report.makespan_ns <= report.serial_time_ns + 1e-9);
    }

    #[test]
    fn bank_parallel_execution_matches_serial_contents() {
        // The overlap account must never change semantics: row contents
        // after a scheduled (bank-parallel) batch are bit-identical to
        // submission-order serial execution.
        let build = |s: &mut PimSystem| -> (Vec<BatchRequest>, Vec<PimBitVec>) {
            let batch = one_request_per_bank(8, 512);
            for (b, request) in batch.iter().enumerate() {
                let bits: Vec<bool> = (0..512).map(|i| (i + b) % 3 == 0).collect();
                s.store(&request.operands[0], &bits).expect("store a");
                let bits: Vec<bool> = (0..512).map(|i| (i * 7 + b) % 5 == 0).collect();
                s.store(&request.operands[1], &bits).expect("store b");
            }
            let outs = batch.iter().map(|r| r.dst.clone()).collect();
            (batch, outs)
        };

        let mut parallel = sys();
        let (batch, outs) = build(&mut parallel);
        parallel.execute_batch(&batch).expect("scheduled batch");
        let parallel_bits: Vec<Vec<bool>> = outs.iter().map(|v| parallel.load(v)).collect();

        let mut serial = sys();
        let (batch, outs) = build(&mut serial);
        for r in &batch {
            let operands: Vec<&PimBitVec> = r.operands.iter().collect();
            serial.bitwise(r.op, &operands, &r.dst).expect("serial op");
        }
        let serial_bits: Vec<Vec<bool>> = outs.iter().map(|v| serial.load(v)).collect();

        assert_eq!(parallel_bits, serial_bits);
    }
}
