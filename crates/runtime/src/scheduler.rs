//! The driver-library scheduler (§5: the dynamic linked driver "first
//! optimizes and reschedules the operation requests, and then issues
//! extended instruction for PIM").
//!
//! Two optimizations are modelled:
//!
//! * **Mode-register batching** — the SA reference configuration is a
//!   mode-register write; executing all ORs, then all ANDs, … (where data
//!   dependences allow) avoids reconfiguration thrash.
//! * **Channel and bank parallelism** — channels have independent
//!   command/data buses, and banks within a channel have independent
//!   sense-amplifier stripes, so the ACT/sense/write phases of requests on
//!   different banks may overlap. What *cannot* overlap within a channel
//!   is the shared bus (DDR bursts, mode-register sets), and overlapping
//!   activations on one rank must respect the tRRD/tFAW inter-activation
//!   constraints. The engine's accounting is a single serial command
//!   stream; the scheduler expands each request's charged cost back into
//!   a timed command stream ([`pinatubo_mem::RequestStream`]) and places
//!   it on per-channel discrete-resource timelines
//!   ([`pinatubo_mem::ChannelTimeline`]) at *command* granularity:
//!   commands from different requests interleave on one channel subject
//!   to tRRD/tFAW (a new ACT may slot between earlier requests'
//!   activations) and bus/GDL-slot conflicts. A request-granularity
//!   placement (the pre-interleaving model: one opaque block per request)
//!   runs alongside it, and each channel's completion is the *better* of
//!   the two — so the interleaved makespan is never worse than the old
//!   account, by construction. The result is reported in a
//!   [`MakespanReport`] alongside the serial sum.
//!
//! Reordering is dependence-aware: requests are grouped into topological
//! levels by row conflicts (read-after-write, write-after-anything), and
//! only reordered within a level. [`PimSystem::plan_batch`] goes further
//! than the static level/mode sort: a greedy list schedule dispatches,
//! at every step, the dependence-ready request with the earliest
//! completion under the same command-stream model the report uses, and a
//! bounded-lookahead beam search (see [`PimSystem::plan_batch`]) refines
//! the greedy order where one-step lookahead is provably suboptimal,
//! with the greedy order kept as the fallback incumbent — the planned
//! schedule is never worse than greedy. The planner's cost model is
//! *derived from* the same [`pinatubo_mem::TimeBreakdown`] expansion the
//! report charges, so the scheduler's cost and the charged makespan
//! cannot drift apart.
//!
//! Execution is *actually* parallel, not just modeled:
//! [`PimSystem::execute_batch`] partitions the memory into per-channel
//! shards ([`pinatubo_mem::MainMemory::split_channel`]), runs each
//! channel's scheduled queue on scoped worker threads, and merges state
//! and statistics back deterministically (`absorb`). Per-channel
//! fault-injection streams and explicit mode-register priming keep the
//! results bit- and stats-identical to serial execution of the same
//! order (on the shipped presets, whose command streams never stall),
//! independent of the worker count.

use crate::bitvec::PimBitVec;
use crate::system::{bitwise_on_engine, OpSummary, PimSystem};
use crate::RuntimeError;
use pinatubo_core::{BitwiseOp, BulkOp, OpClass};
use pinatubo_mem::{
    ChannelTimeline, PimConfig, ReliabilityStats, RequestStream, RowAddr, TimeBreakdown,
};
use std::collections::{BTreeMap, HashSet};

/// One queued operation request.
#[derive(Debug, Clone)]
pub struct BatchRequest {
    /// The bulk operation.
    pub op: BitwiseOp,
    /// Operand vectors.
    pub operands: Vec<PimBitVec>,
    /// Destination vector.
    pub dst: PimBitVec,
}

impl BatchRequest {
    /// Rows this request reads.
    fn reads(&self) -> impl Iterator<Item = RowAddr> + '_ {
        self.operands.iter().flat_map(|v| v.rows().iter().copied())
    }

    /// Rows this request writes.
    fn writes(&self) -> impl Iterator<Item = RowAddr> + '_ {
        self.dst.rows().iter().copied()
    }

    /// Whether `self` must stay ordered after `earlier`.
    fn depends_on(&self, earlier: &BatchRequest) -> bool {
        let earlier_writes: HashSet<RowAddr> = earlier.writes().collect();
        // RAW: we read something it wrote. WAW: we write something it
        // wrote. WAR: we write something it read.
        if self.reads().any(|r| earlier_writes.contains(&r)) {
            return true;
        }
        if self.writes().any(|w| earlier_writes.contains(&w)) {
            return true;
        }
        let our_writes: HashSet<RowAddr> = self.writes().collect();
        earlier.reads().any(|r| our_writes.contains(&r))
    }
}

/// What a scheduled batch cost.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleReport {
    /// Sum of per-op times — the single-command-stream account.
    pub serial_time_ns: f64,
    /// Completion time under the bank-level critical-path model.
    pub makespan_ns: f64,
    /// Per-channel busy times (sum of each channel's request times).
    pub channel_times_ns: Vec<f64>,
    /// Mode-register switches the submitted order would have issued.
    pub mode_switches_naive: u64,
    /// Mode-register switches after reordering.
    pub mode_switches_scheduled: u64,
    /// The critical-path breakdown behind `makespan_ns`.
    pub makespan: MakespanReport,
    /// Per-request summaries, in *scheduled* execution order, paired with
    /// the request's index in the submitted batch.
    pub per_op: Vec<(usize, OpSummary)>,
}

impl ScheduleReport {
    /// Speedup of overlapped completion over the serial stream.
    #[must_use]
    pub fn channel_parallel_speedup(&self) -> f64 {
        if self.makespan_ns == 0.0 {
            1.0
        } else {
            self.serial_time_ns / self.makespan_ns
        }
    }
}

/// The command-granularity critical-path account of one batch: where the
/// time went and how much of it overlapped away.
///
/// Each request's charged [`pinatubo_mem::TimeBreakdown`] is expanded
/// back into its command stream (ACT units, sense/write lane blocks, GDL
/// hops, bus bursts — see [`pinatubo_mem::RequestStream`]) and placed on
/// per-channel discrete-resource timelines. Commands from *different
/// requests* interleave on one channel: lane blocks of different banks
/// run concurrently, bus and GDL slots serialize, and every ACT slots
/// into the rank's tRRD/tFAW ledger (possibly between earlier requests'
/// activations). A request-granularity placement — one opaque block per
/// request, launch-gated once — runs alongside, and each channel scores
/// the better of the two, so `makespan_ns ≤ request_granularity_ns`
/// always; the difference is `interleave_recovered_ns`.
#[derive(Debug, Clone, PartialEq)]
pub struct MakespanReport {
    /// Completion time of the critical path over all bank lanes.
    pub makespan_ns: f64,
    /// Channel-serialized (bus + MRS) time, summed over requests.
    pub bus_serialized_ns: f64,
    /// Bank-local, overlappable time, summed over requests.
    pub lane_ns: f64,
    /// Delay inserted by the tRRD/tFAW activation ledger, summed over
    /// the interleaved placement's ACT commands.
    pub rrd_faw_stall_ns: f64,
    /// Wait for a busy shared bus or GDL slot, summed over the
    /// interleaved placement's bus/GDL commands.
    pub bus_conflict_stall_ns: f64,
    /// Completion time under the request-granularity (pre-interleaving)
    /// model: every request an opaque block, gated once at launch.
    pub request_granularity_ns: f64,
    /// Makespan the command-granularity interleaving recovered over the
    /// request-granularity model: `request_granularity_ns − makespan_ns`
    /// (≥ 0 by construction).
    pub interleave_recovered_ns: f64,
    /// Distinct (channel, rank, bank) lanes the batch touched.
    pub lanes_used: usize,
    /// Completion time of each channel (the better of its interleaved
    /// and request-granularity placements).
    pub channel_completion_ns: Vec<f64>,
    /// Fault-injection and recovery counters summed over the batch.
    pub reliability: ReliabilityStats,
}

impl MakespanReport {
    /// An empty account over `channels` channels.
    #[must_use]
    pub fn empty(channels: usize) -> Self {
        MakespanReport {
            makespan_ns: 0.0,
            bus_serialized_ns: 0.0,
            lane_ns: 0.0,
            rrd_faw_stall_ns: 0.0,
            bus_conflict_stall_ns: 0.0,
            request_granularity_ns: 0.0,
            interleave_recovered_ns: 0.0,
            lanes_used: 0,
            channel_completion_ns: vec![0.0; channels],
            reliability: ReliabilityStats::default(),
        }
    }

    /// Fraction of the total submitted work that overlapped away:
    /// `1 − makespan / (shared + lane)`. Zero for an empty batch.
    #[must_use]
    pub fn overlapped_fraction(&self) -> f64 {
        let total = self.bus_serialized_ns + self.lane_ns;
        if total == 0.0 {
            0.0
        } else {
            1.0 - self.makespan_ns / total
        }
    }
}

/// Computes the dependence-respecting, mode-grouped execution order.
/// Returns indices into `requests`.
#[must_use]
pub fn schedule(requests: &[BatchRequest]) -> Vec<usize> {
    // Topological levels by conflict: level(i) = 1 + max level of any
    // earlier conflicting request.
    let mut levels = vec![0usize; requests.len()];
    for i in 0..requests.len() {
        for j in 0..i {
            if requests[i].depends_on(&requests[j]) {
                levels[i] = levels[i].max(levels[j] + 1);
            }
        }
    }
    let mut order: Vec<usize> = (0..requests.len()).collect();
    // Stable sort: primary by level (dependences), secondary by operation
    // kind (mode-register batching).
    order.sort_by_key(|&i| (levels[i], mode_rank(requests[i].op)));
    order
}

/// Stable grouping key for mode-register batching.
fn mode_rank(op: BitwiseOp) -> u8 {
    match op {
        BitwiseOp::Or => 0,
        BitwiseOp::And => 1,
        BitwiseOp::Xor => 2,
        BitwiseOp::Not => 3,
    }
}

/// Counts adjacent operation-kind transitions (≈ mode-register switches).
fn mode_switches(ops: impl Iterator<Item = BitwiseOp>) -> u64 {
    let mut switches = 0;
    let mut last = None;
    for op in ops {
        if last.is_some_and(|l| l != op) {
            switches += 1;
        }
        last = Some(op);
    }
    switches
}

/// The sense-amp reference configuration a bulk op leaves behind: every
/// engine path (including host fallbacks) sets the mode register to the
/// op's configuration before touching data, so the register's value after
/// any request is a pure function of that request's op. The parallel
/// executor uses this to prime each shard with exactly the mode the
/// serial stream would have had, keeping MRS accounting identical.
pub(crate) fn mode_for(op: BitwiseOp) -> PimConfig {
    match op {
        BitwiseOp::Or => PimConfig::Or,
        BitwiseOp::And => PimConfig::And,
        BitwiseOp::Xor => PimConfig::Xor,
        BitwiseOp::Not => PimConfig::Inv,
    }
}

/// The single channel a request is confined to, if any: a request whose
/// operand and destination rows all live on one channel can run on that
/// channel's shard; anything else (a vector straddling channels) needs
/// the unified memory.
pub(crate) fn home_channel(request: &BatchRequest) -> Option<u32> {
    let c = request.dst.rows()[0].channel;
    request
        .dst
        .rows()
        .iter()
        .chain(request.operands.iter().flat_map(|v| v.rows().iter()))
        .all(|r| r.channel == c)
        .then_some(c)
}

/// Beam width of the bounded-lookahead refinement in
/// [`PimSystem::plan_batch`]: partial schedules kept per step.
const BEAM_WIDTH: usize = 4;
/// Branching factor per kept state: the three earliest-finishing ready
/// candidates plus a longest-remaining (LPT) injection, which covers the
/// classic greedy failure of starting a long critical-path request late.
const BEAM_BRANCH: usize = 4;
/// Batches larger than this skip the beam refinement and ship the greedy
/// order: lookahead is O(width · branch · n²) placements and its wins
/// concentrate in small, adversarially shaped batches.
const BEAM_LIMIT: usize = 64;

impl PimSystem {
    /// Analytic estimate of one request's charged cost, as the same
    /// per-mechanism [`TimeBreakdown`] the controller accounts: chained
    /// two-row primitives, one sense-pass block per segment, GDL hops for
    /// inter-subarray/bank moves, and bus bursts for host fallbacks.
    /// Feeding this through [`RequestStream::from_breakdown`] gives the
    /// planner the *same* command-stream cost model
    /// [`PimSystem::execute_batch`]'s report replays with charged
    /// breakdowns — one model, used predictively here and truthfully
    /// there, so the two cannot drift apart.
    fn estimate_request(&self, request: &BatchRequest) -> (TimeBreakdown, u64) {
        let mem = self.engine().memory();
        let g = mem.geometry();
        let t = &mem.config().timing;
        let row_bits = g.logical_row_bits();
        let k = request.operands.len().max(1);
        let mut time = TimeBreakdown::default();
        let mut activations = 0u64;
        for (i, dst_row, seg_bits) in request.dst.segments(row_bits) {
            let mut rows: Vec<RowAddr> = request
                .operands
                .iter()
                .filter_map(|v| v.rows().get(i).copied())
                .collect();
            rows.push(dst_row);
            let class = OpClass::classify(&rows);
            let passes = g.sense_passes(seg_bits) as f64;
            let steps = match request.op {
                BitwiseOp::Not => 1,
                _ => k.saturating_sub(1).max(1),
            };
            let kf = k as f64;
            match class {
                OpClass::IntraSubarray => {
                    let s = steps as f64;
                    time.activate_ns += s * t.multi_activate_ns(2);
                    time.sense_ns += s * passes * t.t_cl_ns;
                    time.write_ns += s * t.t_wr_ns;
                    time.precharge_ns += s * 2.0 * t.t_rp_ns;
                    activations += steps as u64;
                }
                OpClass::InterSubarray | OpClass::InterBank => {
                    time.activate_ns += kf * t.multi_activate_ns(2);
                    time.sense_ns += kf * passes * t.t_cl_ns;
                    time.gdl_ns += (kf + 1.0) * g.gdl_cycles(seg_bits) as f64 * t.t_gdl_cycle_ns;
                    time.write_ns += t.t_wr_ns;
                    time.precharge_ns += (kf + 1.0) * t.t_rp_ns;
                    activations += k as u64;
                }
                OpClass::HostFallback => {
                    time.activate_ns += kf * t.multi_activate_ns(2);
                    time.sense_ns += kf * passes * t.t_cl_ns;
                    time.write_ns += t.t_wr_ns;
                    time.precharge_ns += (kf + 1.0) * t.t_rp_ns;
                    time.bus_ns += (kf + 1.0) * t.bus_transfer_ns(seg_bits);
                    activations += k as u64;
                }
            }
        }
        (time, activations)
    }

    /// The estimated command stream of one request (see
    /// [`PimSystem::estimate_request`]).
    fn request_stream(&self, request: &BatchRequest) -> RequestStream {
        let (time, activations) = self.estimate_request(request);
        RequestStream::from_breakdown(&time, activations)
    }

    /// RAW/WAW/WAR predecessors of each request (indices `< i`).
    fn dependences(requests: &[BatchRequest]) -> Vec<Vec<usize>> {
        let n = requests.len();
        let mut deps: Vec<Vec<usize>> = vec![Vec::new(); n];
        for i in 0..n {
            for j in 0..i {
                if requests[i].depends_on(&requests[j]) {
                    deps[i].push(j);
                }
            }
        }
        deps
    }

    /// Fresh per-channel command timelines for planning.
    fn fresh_timelines(&self) -> Vec<ChannelTimeline> {
        let timing = self.engine().memory().config().timing.clone();
        let channels = self.engine().memory().geometry().channels as usize;
        (0..channels)
            .map(|_| ChannelTimeline::new(timing.clone()))
            .collect()
    }

    /// Computes the makespan-minimizing execution order. A greedy list
    /// schedule over the dependence-ready set runs first, dispatching at
    /// every step the candidate whose command stream would *finish*
    /// earliest on the per-channel timelines (the same command-granularity
    /// model [`MakespanReport`] accounts). For batches of at most
    /// [`BEAM_LIMIT`] requests, a bounded-lookahead beam search
    /// ([`BEAM_WIDTH`] partial schedules, [`BEAM_BRANCH`]-way branching
    /// over the earliest-finishing ready candidates plus a
    /// longest-remaining injection) then tries to beat the greedy order;
    /// the greedy order is the incumbent and is returned unless the beam's
    /// best order is *strictly* better under
    /// [`PimSystem::planned_makespan_ns`] — the plan is never worse than
    /// greedy.
    ///
    /// Tie-breaking is explicit and pinned: equal-cost candidates resolve
    /// first toward the op kind of the previously dispatched request
    /// (mode-register batching), then to the **lowest request index** —
    /// so equal-cost batches keep submission order, and the plan is a
    /// pure function of `(requests, config)`.
    #[must_use]
    pub fn plan_batch(&self, requests: &[BatchRequest]) -> Vec<usize> {
        let greedy = self.plan_batch_greedy(requests);
        if requests.len() < 3 || requests.len() > BEAM_LIMIT {
            return greedy;
        }
        let beam = self.plan_batch_beam(requests);
        let g = self.planned_makespan_ns(requests, &greedy);
        let b = self.planned_makespan_ns(requests, &beam);
        if b + 1e-9 < g {
            beam
        } else {
            greedy
        }
    }

    /// The greedy list schedule alone (no beam refinement): at every
    /// step, the dependence-ready request with the earliest completion
    /// on the command-granularity timelines. Exposed so benchmarks can
    /// compare greedy against the full lookahead plan.
    #[must_use]
    pub fn plan_batch_greedy(&self, requests: &[BatchRequest]) -> Vec<usize> {
        let n = requests.len();
        let deps = Self::dependences(requests);
        let streams: Vec<RequestStream> = requests.iter().map(|r| self.request_stream(r)).collect();
        let mut timelines = self.fresh_timelines();

        let mut done = vec![false; n];
        let mut order = Vec::with_capacity(n);
        let mut last_op: Option<BitwiseOp> = None;
        // Peek cache: a candidate's completion depends only on its home
        // channel's timeline, so entries survive dispatches on *other*
        // channels — the inner loop re-places only same-channel peers.
        let mut peek: Vec<Option<f64>> = vec![None; n];

        for _ in 0..n {
            let mut best: Option<(usize, f64)> = None;
            for i in 0..n {
                if done[i] || deps[i].iter().any(|&j| !done[j]) {
                    continue;
                }
                let home = requests[i].dst.rows()[0];
                let end = match peek[i] {
                    Some(end) => end,
                    None => {
                        let mut probe = timelines[home.channel as usize].clone();
                        let end = probe.place(home.rank, home.bank, &streams[i]).end_ns;
                        peek[i] = Some(end);
                        end
                    }
                };
                // Ascending scan + strict improvement = lowest index wins
                // full ties (the pinned rule).
                let better = match best {
                    None => true,
                    Some((bi, bend)) => {
                        end + 1e-9 < bend
                            || ((end - bend).abs() <= 1e-9
                                && last_op == Some(requests[i].op)
                                && last_op != Some(requests[bi].op))
                    }
                };
                if better {
                    best = Some((i, end));
                }
            }
            let (i, _) = best.expect("a dependence-ready request always exists");
            let home = requests[i].dst.rows()[0];
            timelines[home.channel as usize].place(home.rank, home.bank, &streams[i]);
            done[i] = true;
            last_op = Some(requests[i].op);
            order.push(i);
            for (j, entry) in peek.iter_mut().enumerate() {
                if requests[j].dst.rows()[0].channel == home.channel {
                    *entry = None;
                }
            }
        }
        order
    }

    /// Bounded-lookahead beam search over dispatch orders (see
    /// [`PimSystem::plan_batch`] for the bound and branching rule).
    fn plan_batch_beam(&self, requests: &[BatchRequest]) -> Vec<usize> {
        #[derive(Clone)]
        struct State {
            order: Vec<usize>,
            done: Vec<bool>,
            timelines: Vec<ChannelTimeline>,
            /// Latest placed completion so far.
            span: f64,
            /// Admissible lower bound on the state's final makespan:
            /// `span` joined with every still-ready candidate's peeked
            /// completion. Peeks only grow as a timeline fills (resources
            /// free later, the issue cursor moves forward), so a parent's
            /// peek bounds the candidate's end in every descendant —
            /// ranking by this keeps long-first branches alive that a
            /// plain `span` sort would prune as soon as the long request
            /// lands.
            bound: f64,
        }
        let n = requests.len();
        let deps = Self::dependences(requests);
        let streams: Vec<RequestStream> = requests.iter().map(|r| self.request_stream(r)).collect();
        let mut beam = vec![State {
            order: Vec::with_capacity(n),
            done: vec![false; n],
            timelines: self.fresh_timelines(),
            span: 0.0,
            bound: 0.0,
        }];
        for _ in 0..n {
            let mut next: Vec<State> = Vec::new();
            for state in &beam {
                // Ready candidates with peeked completions, ascending
                // index (stable sorts below keep ties deterministic).
                let mut cands: Vec<(usize, f64)> = Vec::new();
                for i in 0..n {
                    if state.done[i] || deps[i].iter().any(|&j| !state.done[j]) {
                        continue;
                    }
                    let home = requests[i].dst.rows()[0];
                    let mut probe = state.timelines[home.channel as usize].clone();
                    let end = probe.place(home.rank, home.bank, &streams[i]).end_ns;
                    cands.push((i, end));
                }
                cands.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
                let mut picks: Vec<usize> = cands
                    .iter()
                    .take(BEAM_BRANCH - 1)
                    .map(|&(i, _)| i)
                    .collect();
                // LPT injection: the ready candidate with the most
                // remaining work, in case it anchors the critical path.
                let mut longest: Option<(usize, f64)> = None;
                for &(i, _) in &cands {
                    let total = streams[i].total_ns();
                    if longest.map_or(true, |(_, t)| total > t + 1e-9) {
                        longest = Some((i, total));
                    }
                }
                if let Some((i, _)) = longest {
                    if !picks.contains(&i) {
                        picks.push(i);
                    }
                }
                for &i in &picks {
                    let mut s = state.clone();
                    let home = requests[i].dst.rows()[0];
                    let p =
                        s.timelines[home.channel as usize].place(home.rank, home.bank, &streams[i]);
                    s.done[i] = true;
                    s.order.push(i);
                    s.span = s.span.max(p.end_ns);
                    // The other ready candidates' parent-timeline peeks
                    // lower-bound their ends in this child too.
                    s.bound = s.span;
                    for &(j, end) in &cands {
                        if j != i {
                            s.bound = s.bound.max(end);
                        }
                    }
                    next.push(s);
                }
            }
            // Stable sort by the admissible bound: earlier-created
            // (greedier) states win ties, keeping the search
            // deterministic.
            next.sort_by(|a, b| {
                a.bound
                    .partial_cmp(&b.bound)
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            next.truncate(BEAM_WIDTH);
            beam = next;
        }
        beam.into_iter().next().map(|s| s.order).unwrap_or_default()
    }

    /// The makespan an execution order would score under the planner's
    /// estimated command streams: per channel, the better of the
    /// interleaved and request-granularity placements (exactly how
    /// [`MakespanReport`] scores charged streams). Benchmarks use this to
    /// compare planned orders without executing them.
    #[must_use]
    pub fn planned_makespan_ns(&self, requests: &[BatchRequest], order: &[usize]) -> f64 {
        let mut inter = self.fresh_timelines();
        let mut fused = self.fresh_timelines();
        for &i in order {
            let stream = self.request_stream(&requests[i]);
            let home = requests[i].dst.rows()[0];
            let ch = home.channel as usize;
            inter[ch].place(home.rank, home.bank, &stream);
            fused[ch].place_fused(home.rank, home.bank, &stream);
        }
        inter
            .iter()
            .zip(&fused)
            .map(|(a, b)| a.completion_ns().min(b.completion_ns()))
            .fold(0.0, f64::max)
    }

    /// Executes a batch of requests through the driver scheduler, running
    /// single-channel requests on per-channel memory shards with scoped
    /// worker threads (one shard per channel touched; the default worker
    /// count is the channel count).
    ///
    /// Results are identical to executing the batch in submission order
    /// (reordering respects data dependences), and — on the shipped
    /// timing presets, whose serial command streams never stall — the
    /// merged statistics are identical to serial execution of the same
    /// scheduled order. The report additionally accounts the mode-switch
    /// savings and the channel-parallel makespan.
    ///
    /// # Errors
    ///
    /// Returns the earliest-scheduled failing request's error. Each
    /// channel queue stops at its first failure; already-completed work
    /// (including on other channels) stays committed, like the serial
    /// path's partial progress.
    pub fn execute_batch(
        &mut self,
        requests: &[BatchRequest],
    ) -> Result<ScheduleReport, RuntimeError> {
        let workers = self.engine().memory().geometry().channels as usize;
        self.execute_batch_with_workers(requests, workers)
    }

    /// [`PimSystem::execute_batch`] on the unified memory, one request at
    /// a time — the reference the parallel path is tested against.
    ///
    /// # Errors
    ///
    /// Stops at the first failing request and returns its error.
    pub fn execute_batch_serial(
        &mut self,
        requests: &[BatchRequest],
    ) -> Result<ScheduleReport, RuntimeError> {
        let order = self.plan_batch(requests);
        let mut per_op = Vec::with_capacity(order.len());
        for &i in &order {
            let request = &requests[i];
            let operands: Vec<&PimBitVec> = request.operands.iter().collect();
            let summary = self.bitwise(request.op, &operands, &request.dst)?;
            per_op.push((i, summary));
        }
        Ok(self.build_report(requests, per_op))
    }

    /// [`PimSystem::execute_batch`] with an explicit worker-thread count.
    /// Channel queues are fixed by the schedule, so results and merged
    /// statistics do not depend on `workers` — only wall-clock time does.
    ///
    /// # Errors
    ///
    /// See [`PimSystem::execute_batch`].
    pub fn execute_batch_with_workers(
        &mut self,
        requests: &[BatchRequest],
        workers: usize,
    ) -> Result<ScheduleReport, RuntimeError> {
        let workers = workers.max(1);
        let order = self.plan_batch(requests);
        let n = order.len();
        let row_bits = self.row_bits();
        let entry_mode = self.engine().memory().pim_config();
        // The mode register the serial stream would hold when request
        // `order[p]` starts: the previous scheduled op's configuration.
        let prime: Vec<PimConfig> = (0..n)
            .map(|p| {
                if p == 0 {
                    entry_mode
                } else {
                    mode_for(requests[order[p - 1]].op)
                }
            })
            .collect();
        let homes: Vec<Option<u32>> = order.iter().map(|&i| home_channel(&requests[i])).collect();

        struct ShardRun<E> {
            engine: E,
            /// Positions in `order` this shard executes, ascending.
            queue: Vec<usize>,
            out: Vec<(usize, OpSummary, BulkOp)>,
            err: Option<(usize, RuntimeError)>,
        }

        let mut slots: Vec<Option<(OpSummary, BulkOp)>> = (0..n).map(|_| None).collect();
        let mut first_err: Option<(usize, RuntimeError)> = None;

        let mut p = 0;
        while p < n && first_err.is_none() {
            let Some(_) = homes[p] else {
                // A channel-straddling request: run it on the unified
                // memory between sharded phases.
                let i = order[p];
                let request = &requests[i];
                self.engine_mut().memory_mut().preload_pim_config(prime[p]);
                let operands: Vec<&PimBitVec> = request.operands.iter().collect();
                match bitwise_on_engine(
                    self.engine_mut(),
                    row_bits,
                    request.op,
                    &operands,
                    &request.dst,
                ) {
                    Ok(v) => slots[p] = Some(v),
                    Err(e) => first_err = Some((p, e)),
                }
                p += 1;
                continue;
            };
            // A run of single-channel requests: one shard per channel
            // touched, each consuming its queue in scheduled order.
            let q = p + homes[p..].iter().take_while(|h| h.is_some()).count();
            let mut queues: BTreeMap<u32, Vec<usize>> = BTreeMap::new();
            for (pos, home) in homes.iter().enumerate().take(q).skip(p) {
                queues
                    .entry(home.expect("inside the single-channel run"))
                    .or_default()
                    .push(pos);
            }
            let mut shards: Vec<ShardRun<_>> = queues
                .into_iter()
                .map(|(channel, queue)| ShardRun {
                    engine: self.engine_mut().split_channel(channel),
                    queue,
                    out: Vec::new(),
                    err: None,
                })
                .collect();
            let per_worker = shards.len().div_ceil(workers);
            std::thread::scope(|scope| {
                for chunk in shards.chunks_mut(per_worker) {
                    scope.spawn(|| {
                        for shard in chunk {
                            for &pos in &shard.queue {
                                let request = &requests[order[pos]];
                                shard.engine.memory_mut().preload_pim_config(prime[pos]);
                                let operands: Vec<&PimBitVec> = request.operands.iter().collect();
                                match bitwise_on_engine(
                                    &mut shard.engine,
                                    row_bits,
                                    request.op,
                                    &operands,
                                    &request.dst,
                                ) {
                                    Ok((summary, record)) => {
                                        shard.out.push((pos, summary, record));
                                    }
                                    Err(e) => {
                                        shard.err = Some((pos, e));
                                        break;
                                    }
                                }
                            }
                        }
                    });
                }
            });
            for shard in shards {
                self.engine_mut().absorb(shard.engine);
                for (pos, summary, record) in shard.out {
                    slots[pos] = Some((summary, record));
                }
                if let Some((pos, e)) = shard.err {
                    match first_err {
                        Some((fp, _)) if fp <= pos => {}
                        _ => first_err = Some((pos, e)),
                    }
                }
            }
            // One ledger check per sync point (not per absorbed shard):
            // the invariant only needs to hold once every part is in.
            self.engine().memory().assert_ledger_consistent();
            p = q;
        }

        // Leave the unified mode register where the serial stream would:
        // at the last scheduled op's configuration.
        if first_err.is_none() {
            if let Some(&last) = order.last() {
                self.engine_mut()
                    .memory_mut()
                    .preload_pim_config(mode_for(requests[last].op));
            }
        }
        let mut per_op = Vec::with_capacity(n);
        for (pos, slot) in slots.into_iter().enumerate() {
            if let Some((summary, record)) = slot {
                self.push_trace(record);
                per_op.push((order[pos], summary));
            }
        }
        if let Some((_, e)) = first_err {
            return Err(e);
        }
        Ok(self.build_report(requests, per_op))
    }

    /// Replays per-request summaries (in scheduled order) through the
    /// command-granularity model and assembles the report. Each summary's
    /// charged [`TimeBreakdown`] is expanded back into its command stream
    /// and placed twice: interleaved at command granularity
    /// ([`ChannelTimeline::place`]) and as one opaque
    /// request-granularity block ([`ChannelTimeline::place_fused`], the
    /// pre-interleaving model). Every channel scores the better of the
    /// two, so the reported makespan is never worse than the old account.
    /// Used identically by the serial and parallel paths, so their
    /// reports agree whenever their summaries do.
    fn build_report(
        &self,
        requests: &[BatchRequest],
        per_op: Vec<(usize, OpSummary)>,
    ) -> ScheduleReport {
        let mode_switches_naive = mode_switches(requests.iter().map(|r| r.op));
        let mode_switches_scheduled = mode_switches(per_op.iter().map(|&(i, _)| requests[i].op));
        let channels = self.engine().memory().geometry().channels as usize;
        let mut channel_times_ns = vec![0.0f64; channels];
        let mut serial_time_ns = 0.0;

        let mut makespan = MakespanReport::empty(channels);
        let mut inter = self.fresh_timelines();
        let mut fused = self.fresh_timelines();

        for &(i, summary) in &per_op {
            let request = &requests[i];
            serial_time_ns += summary.time_ns;
            let home = request.dst.rows()[0];
            let channel = home.channel as usize;
            channel_times_ns[channel] += summary.time_ns;

            let stream = RequestStream::from_breakdown(&summary.time, summary.activations);
            let pi = inter[channel].place(home.rank, home.bank, &stream);
            fused[channel].place_fused(home.rank, home.bank, &stream);

            makespan.bus_serialized_ns += summary.shared_ns;
            makespan.lane_ns += summary.lane_ns();
            makespan.rrd_faw_stall_ns += pi.act_stall_ns;
            makespan.bus_conflict_stall_ns += pi.bus_wait_ns;
            makespan.reliability += summary.reliability;
        }

        makespan.lanes_used = inter.iter().map(ChannelTimeline::lanes_used).sum();
        for channel in 0..channels {
            makespan.channel_completion_ns[channel] = inter[channel]
                .completion_ns()
                .min(fused[channel].completion_ns());
        }
        makespan.makespan_ns = makespan
            .channel_completion_ns
            .iter()
            .copied()
            .fold(0.0, f64::max);
        makespan.request_granularity_ns = fused
            .iter()
            .map(ChannelTimeline::completion_ns)
            .fold(0.0, f64::max);
        makespan.interleave_recovered_ns =
            (makespan.request_granularity_ns - makespan.makespan_ns).max(0.0);
        ScheduleReport {
            serial_time_ns,
            makespan_ns: makespan.makespan_ns,
            channel_times_ns,
            mode_switches_naive,
            mode_switches_scheduled,
            makespan,
            per_op,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::MappingPolicy;

    fn sys() -> PimSystem {
        PimSystem::pcm_default(MappingPolicy::SubarrayFirst)
    }

    /// Builds `n` independent 2-operand requests of alternating op kinds.
    fn alternating_batch(sys: &mut PimSystem, n: usize) -> Vec<BatchRequest> {
        (0..n)
            .map(|i| {
                let group = sys.alloc_group(3, 256).expect("alloc");
                BatchRequest {
                    op: if i % 2 == 0 {
                        BitwiseOp::Or
                    } else {
                        BitwiseOp::And
                    },
                    operands: group[..2].to_vec(),
                    dst: group[2].clone(),
                }
            })
            .collect()
    }

    #[test]
    fn scheduling_batches_mode_switches() {
        let mut s = sys();
        let batch = alternating_batch(&mut s, 8);
        let report = s.execute_batch(&batch).expect("batch runs");
        assert_eq!(report.mode_switches_naive, 7);
        assert_eq!(
            report.mode_switches_scheduled, 1,
            "independent ops should group into one OR run and one AND run"
        );
        assert_eq!(report.per_op.len(), 8);
    }

    #[test]
    fn dependences_are_never_reordered() {
        let mut s = sys();
        let a = s.alloc(128).expect("a");
        let b = s.alloc(128).expect("b");
        let mid = s.alloc(128).expect("mid");
        let out = s.alloc(128).expect("out");
        s.store(&a, &[true; 128]).expect("store");

        // AND first, then an OR that reads the AND's result: grouping by
        // mode would want OR first, but the dependence forbids it.
        let batch = vec![
            BatchRequest {
                op: BitwiseOp::And,
                operands: vec![a.clone(), a.clone()],
                dst: mid.clone(),
            },
            BatchRequest {
                op: BitwiseOp::Or,
                operands: vec![mid.clone(), b.clone()],
                dst: out.clone(),
            },
        ];
        let order = schedule(&batch);
        assert_eq!(order, vec![0, 1], "RAW dependence must hold the order");
        s.execute_batch(&batch).expect("batch runs");
        assert_eq!(s.count_ones(&out), 128, "mid's value flowed into out");
    }

    #[test]
    fn war_and_waw_conflicts_are_respected() {
        let mut s = sys();
        let a = s.alloc(64).expect("a");
        let b = s.alloc(64).expect("b");
        let dst = s.alloc(64).expect("dst");
        let batch = vec![
            // Reads a, writes dst.
            BatchRequest {
                op: BitwiseOp::Or,
                operands: vec![a.clone(), b.clone()],
                dst: dst.clone(),
            },
            // WAR: writes a (which the first reads).
            BatchRequest {
                op: BitwiseOp::Not,
                operands: vec![b.clone()],
                dst: a.clone(),
            },
            // WAW: writes dst again.
            BatchRequest {
                op: BitwiseOp::And,
                operands: vec![a.clone(), b.clone()],
                dst: dst.clone(),
            },
        ];
        let order = schedule(&batch);
        let pos = |i: usize| order.iter().position(|&x| x == i).expect("present");
        assert!(pos(0) < pos(1), "WAR order");
        assert!(pos(1) < pos(2), "the AND reads the NOT's output");
    }

    #[test]
    fn batch_results_match_sequential_execution() {
        let build = |s: &mut PimSystem| -> (Vec<BatchRequest>, PimBitVec) {
            let group = s.alloc_group(4, 512).expect("alloc");
            let mut bits = vec![false; 512];
            bits[7] = true;
            s.store(&group[0], &bits).expect("store");
            let batch = vec![
                BatchRequest {
                    op: BitwiseOp::Or,
                    operands: vec![group[0].clone(), group[1].clone()],
                    dst: group[2].clone(),
                },
                BatchRequest {
                    op: BitwiseOp::Not,
                    operands: vec![group[2].clone()],
                    dst: group[3].clone(),
                },
            ];
            (batch, group[3].clone())
        };

        let mut scheduled = sys();
        let (batch, out) = build(&mut scheduled);
        scheduled.execute_batch(&batch).expect("scheduled");
        let scheduled_bits = scheduled.load(&out);

        let mut sequential = sys();
        let (batch, out) = build(&mut sequential);
        for r in &batch {
            let operands: Vec<&PimBitVec> = r.operands.iter().collect();
            sequential
                .bitwise(r.op, &operands, &r.dst)
                .expect("sequential");
        }
        assert_eq!(scheduled_bits, sequential.load(&out));
    }

    #[test]
    fn channel_parallelism_reduces_makespan() {
        // Random placement spreads destinations across channels.
        let mut s = PimSystem::pcm_default(MappingPolicy::random());
        let batch: Vec<BatchRequest> = (0..16)
            .map(|_| {
                let a = s.alloc(4096).expect("a");
                let b = s.alloc(4096).expect("b");
                let dst = s.alloc(4096).expect("dst");
                BatchRequest {
                    op: BitwiseOp::Or,
                    operands: vec![a, b],
                    dst,
                }
            })
            .collect();
        let report = s.execute_batch(&batch).expect("batch runs");
        assert!(
            report.channel_parallel_speedup() > 1.5,
            "16 ops over 4 channels should overlap (got {:.2}x)",
            report.channel_parallel_speedup()
        );
        assert!(report.makespan_ns <= report.serial_time_ns);
        assert_eq!(report.channel_times_ns.len(), 4);
    }

    #[test]
    fn empty_batch_is_trivial() {
        let mut s = sys();
        let report = s.execute_batch(&[]).expect("empty batch");
        assert_eq!(report.serial_time_ns, 0.0);
        assert_eq!(report.channel_parallel_speedup(), 1.0);
        assert_eq!(report.makespan.lanes_used, 0);
        assert_eq!(report.makespan.overlapped_fraction(), 0.0);
        assert_eq!(report.makespan.channel_completion_ns, vec![0.0; 4]);
    }

    /// One two-operand request per bank of channel 0 / rank 0, placed by
    /// hand so the lane assignment is fully controlled.
    fn one_request_per_bank(banks: u32, len: u64) -> Vec<BatchRequest> {
        (0..banks)
            .map(|b| {
                let row = |r: u32| vec![RowAddr::new(0, 0, b, 0, r)];
                BatchRequest {
                    op: BitwiseOp::Or,
                    operands: vec![
                        PimBitVec::new(1000 + u64::from(b) * 3, len, row(0)),
                        PimBitVec::new(1001 + u64::from(b) * 3, len, row(1)),
                    ],
                    dst: PimBitVec::new(1002 + u64::from(b) * 3, len, row(2)),
                }
            })
            .collect()
    }

    #[test]
    fn bank_lanes_overlap_within_a_channel() {
        let mut s = sys();
        let batch = one_request_per_bank(8, 4096);
        let report = s.execute_batch(&batch).expect("batch runs");

        // Everything sits on channel 0: the old channel-level model would
        // have reported makespan == serial sum. Bank lanes must beat it.
        assert!((report.channel_times_ns[0] - report.serial_time_ns).abs() < 1e-9);
        assert!(
            report.channel_parallel_speedup() > 2.0,
            "8 bank lanes should overlap substantially (got {:.2}x)",
            report.channel_parallel_speedup()
        );
        assert!(report.makespan_ns <= report.serial_time_ns);
        assert_eq!(report.makespan.lanes_used, 8);
        assert!(report.makespan.overlapped_fraction() > 0.5);

        // The makespan respects every lower bound: the longest single
        // request, the tRRD spacing of the eight launches, and one full
        // tFAW window (more than four activations on the rank).
        let t = s.engine().memory().config().timing.clone();
        let longest = report
            .per_op
            .iter()
            .map(|(_, op)| op.time_ns)
            .fold(0.0, f64::max);
        assert!(report.makespan_ns >= longest - 1e-9);
        assert!(report.makespan_ns >= 7.0 * t.t_rrd_ns);
        assert!(report.makespan_ns >= t.t_faw_ns);

        // The breakdown is consistent: shared + lane covers the serial
        // account exactly.
        let total = report.makespan.bus_serialized_ns + report.makespan.lane_ns;
        assert!((total - report.serial_time_ns).abs() < 1e-9);
    }

    #[test]
    fn trrd_and_tfaw_gate_overlapped_launches() {
        // tRRD/tFAW large enough to bind overlapped launches, but smaller
        // than a full serial command so the *controller's* serial stream
        // still never stalls — the gate must live in the scheduler model.
        let mut mem = pinatubo_mem::MemConfig::pcm_default();
        mem.timing.t_rrd_ns = 150.0;
        mem.timing.t_faw_ns = 600.0;
        let mut s = PimSystem::new(
            mem,
            pinatubo_core::PinatuboConfig::default(),
            MappingPolicy::SubarrayFirst,
        );
        let batch = one_request_per_bank(8, 4096);
        let report = s.execute_batch(&batch).expect("batch runs");

        assert_eq!(
            s.stats().time.stall_ns,
            0.0,
            "the serial command stream must not stall at these parameters"
        );
        assert!(
            report.makespan.rrd_faw_stall_ns > 0.0,
            "overlapped launches on one rank must wait out tRRD"
        );
        // Eight gated launches: at least 7·tRRD of spacing on the rank.
        assert!(report.makespan_ns >= 7.0 * 150.0);
        assert!(report.makespan_ns <= report.serial_time_ns + 1e-9);
    }

    #[test]
    fn list_scheduling_beats_static_order_on_rank_conflicts() {
        // Two ranks × eight banks on channel 0, submitted rank-clumped,
        // with tRRD/tFAW tight enough that back-to-back same-rank
        // launches gate each other. The static topological order keeps
        // the clumped submission order (all level 0, all OR), so rank 1's
        // launches trail rank 0's entire gated train; the list scheduler
        // alternates ranks and halves the launch tail.
        let mut mem = pinatubo_mem::MemConfig::pcm_default();
        mem.timing.t_rrd_ns = 150.0;
        mem.timing.t_faw_ns = 600.0;
        let make_sys = || {
            PimSystem::new(
                mem.clone(),
                pinatubo_core::PinatuboConfig::default(),
                MappingPolicy::SubarrayFirst,
            )
        };
        let batch: Vec<BatchRequest> = (0..2u32)
            .flat_map(|rank| {
                (0..8u32).map(move |b| {
                    let id = u64::from(rank * 8 + b) * 3;
                    let row = |r: u32| vec![RowAddr::new(0, rank, b, 0, r)];
                    BatchRequest {
                        op: BitwiseOp::Or,
                        operands: vec![
                            PimBitVec::new(2000 + id, 4096, row(0)),
                            PimBitVec::new(2001 + id, 4096, row(1)),
                        ],
                        dst: PimBitVec::new(2002 + id, 4096, row(2)),
                    }
                })
            })
            .collect();

        let static_order = schedule(&batch);
        assert_eq!(
            static_order,
            (0..16).collect::<Vec<_>>(),
            "independent same-op requests keep submission order statically"
        );
        let mut static_sys = make_sys();
        let mut per_op = Vec::new();
        for &i in &static_order {
            let operands: Vec<&PimBitVec> = batch[i].operands.iter().collect();
            let summary = static_sys
                .bitwise(batch[i].op, &operands, &batch[i].dst)
                .expect("static op");
            per_op.push((i, summary));
        }
        let static_report = static_sys.build_report(&batch, per_op);

        let mut planned_sys = make_sys();
        let planned_report = planned_sys.execute_batch(&batch).expect("planned batch");

        assert!(
            planned_report.makespan_ns < 0.8 * static_report.makespan_ns,
            "list scheduling must cut the gated launch tail \
             (planned {:.0}ns vs static {:.0}ns)",
            planned_report.makespan_ns,
            static_report.makespan_ns
        );
        assert!(
            planned_report.serial_time_ns <= static_report.serial_time_ns + 1e-9,
            "reordering must not make the serial account worse"
        );
    }

    #[test]
    fn plan_ties_break_to_the_lowest_request_index() {
        // Four identical requests on four different channels: every
        // candidate completion is equal at every step, so the pinned
        // tie-break (same op kind, then lowest index) must keep the
        // submission order exactly — and the plan must be reproducible.
        let s = sys();
        let batch: Vec<BatchRequest> = (0..4u32)
            .map(|ch| {
                let row = |r: u32| vec![RowAddr::new(ch, 0, 0, 0, r)];
                let id = u64::from(ch) * 3;
                BatchRequest {
                    op: BitwiseOp::Or,
                    operands: vec![
                        PimBitVec::new(3000 + id, 4096, row(0)),
                        PimBitVec::new(3001 + id, 4096, row(1)),
                    ],
                    dst: PimBitVec::new(3002 + id, 4096, row(2)),
                }
            })
            .collect();
        let order = s.plan_batch(&batch);
        assert_eq!(order, vec![0, 1, 2, 3], "full ties keep submission order");
        assert_eq!(order, s.plan_batch(&batch), "planning is deterministic");
        assert_eq!(order, s.plan_batch_greedy(&batch));
    }

    #[test]
    fn lookahead_plan_is_never_worse_than_greedy() {
        let mut mem = pinatubo_mem::MemConfig::pcm_default();
        mem.timing.t_rrd_ns = 150.0;
        mem.timing.t_faw_ns = 600.0;
        let s = PimSystem::new(
            mem,
            pinatubo_core::PinatuboConfig::default(),
            MappingPolicy::SubarrayFirst,
        );
        // A rank-clumped batch (where greedy already wins big) and a
        // trivial one: in both, the full plan must score at most greedy.
        for banks in [3u32, 8] {
            let batch: Vec<BatchRequest> = (0..2u32)
                .flat_map(|rank| {
                    (0..banks).map(move |b| {
                        let id = u64::from(rank * banks + b) * 3;
                        let row = |r: u32| vec![RowAddr::new(0, rank, b, 0, r)];
                        BatchRequest {
                            op: BitwiseOp::Or,
                            operands: vec![
                                PimBitVec::new(4000 + id, 4096, row(0)),
                                PimBitVec::new(4001 + id, 4096, row(1)),
                            ],
                            dst: PimBitVec::new(4002 + id, 4096, row(2)),
                        }
                    })
                })
                .collect();
            let greedy = s.plan_batch_greedy(&batch);
            let planned = s.plan_batch(&batch);
            let g = s.planned_makespan_ns(&batch, &greedy);
            let p = s.planned_makespan_ns(&batch, &planned);
            assert!(
                p <= g + 1e-9,
                "lookahead must never lose to its own incumbent (planned \
                 {p:.1}ns vs greedy {g:.1}ns, {banks} banks)"
            );
        }
    }

    #[test]
    fn interleaved_makespan_never_exceeds_request_granularity() {
        let mut s = sys();
        let batch = one_request_per_bank(8, 4096);
        let report = s.execute_batch(&batch).expect("batch runs");
        let m = &report.makespan;
        assert!(
            m.makespan_ns <= m.request_granularity_ns + 1e-9,
            "interleaving must never lose to the fused model \
             ({} vs {})",
            m.makespan_ns,
            m.request_granularity_ns
        );
        assert!(
            (m.interleave_recovered_ns - (m.request_granularity_ns - m.makespan_ns)).abs() < 1e-9
        );
        assert!(m.bus_conflict_stall_ns >= 0.0);
    }

    #[test]
    fn bank_parallel_execution_matches_serial_contents() {
        // The overlap account must never change semantics: row contents
        // after a scheduled (bank-parallel) batch are bit-identical to
        // submission-order serial execution.
        let build = |s: &mut PimSystem| -> (Vec<BatchRequest>, Vec<PimBitVec>) {
            let batch = one_request_per_bank(8, 512);
            for (b, request) in batch.iter().enumerate() {
                let bits: Vec<bool> = (0..512).map(|i| (i + b) % 3 == 0).collect();
                s.store(&request.operands[0], &bits).expect("store a");
                let bits: Vec<bool> = (0..512).map(|i| (i * 7 + b) % 5 == 0).collect();
                s.store(&request.operands[1], &bits).expect("store b");
            }
            let outs = batch.iter().map(|r| r.dst.clone()).collect();
            (batch, outs)
        };

        let mut parallel = sys();
        let (batch, outs) = build(&mut parallel);
        parallel.execute_batch(&batch).expect("scheduled batch");
        let parallel_bits: Vec<Vec<bool>> = outs.iter().map(|v| parallel.load(v)).collect();

        let mut serial = sys();
        let (batch, outs) = build(&mut serial);
        for r in &batch {
            let operands: Vec<&PimBitVec> = r.operands.iter().collect();
            serial.bitwise(r.op, &operands, &r.dst).expect("serial op");
        }
        let serial_bits: Vec<Vec<bool>> = outs.iter().map(|v| serial.load(v)).collect();

        assert_eq!(parallel_bits, serial_bits);
    }
}
