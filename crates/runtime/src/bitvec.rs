//! The user-level bit-vector handle.

use pinatubo_mem::RowAddr;

/// A bit-vector allocated on whole memory rows by
/// [`crate::alloc::PimAllocator`].
///
/// The handle is plain data: it names the rows but holds no contents (the
/// bits live in the simulated memory). Cloning a handle does not clone the
/// storage — like a file descriptor, two clones name the same rows.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PimBitVec {
    id: u64,
    len_bits: u64,
    rows: Vec<RowAddr>,
}

impl PimBitVec {
    /// Assembles a handle (called by the allocator).
    #[must_use]
    pub(crate) fn new(id: u64, len_bits: u64, rows: Vec<RowAddr>) -> Self {
        debug_assert!(!rows.is_empty(), "a bit-vector owns at least one row");
        PimBitVec { id, len_bits, rows }
    }

    /// Assembles a handle from raw parts, bypassing the allocator's
    /// placement invariants. Exists so integration tests can build
    /// deliberately malformed handles (e.g. a length that claims more
    /// segments than the handle has rows) and exercise failure paths the
    /// allocator never produces. Not part of the supported API.
    #[doc(hidden)]
    #[must_use]
    pub fn from_raw_parts(id: u64, len_bits: u64, rows: Vec<RowAddr>) -> Self {
        PimBitVec { id, len_bits, rows }
    }

    /// Allocation id (unique within one allocator).
    #[must_use]
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Length in bits.
    #[must_use]
    pub fn len_bits(&self) -> u64 {
        self.len_bits
    }

    /// The rows backing this vector, in segment order.
    #[must_use]
    pub fn rows(&self) -> &[RowAddr] {
        &self.rows
    }

    /// Iterates `(segment_index, row, bits_in_segment)` given the row width
    /// of the memory this vector lives in.
    pub fn segments(&self, row_bits: u64) -> impl Iterator<Item = (usize, RowAddr, u64)> + '_ {
        let len = self.len_bits;
        self.rows.iter().enumerate().map(move |(i, &row)| {
            let start = i as u64 * row_bits;
            let bits = (len - start).min(row_bits);
            (i, row, bits)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(row: u32) -> RowAddr {
        RowAddr::new(0, 0, 0, 0, row)
    }

    #[test]
    fn segments_cover_the_length() {
        let v = PimBitVec::new(0, 2500, vec![addr(0), addr(1), addr(2)]);
        let segs: Vec<_> = v.segments(1000).collect();
        assert_eq!(segs.len(), 3);
        assert_eq!(segs[0], (0, addr(0), 1000));
        assert_eq!(segs[1], (1, addr(1), 1000));
        assert_eq!(segs[2], (2, addr(2), 500));
        let total: u64 = segs.iter().map(|(_, _, b)| b).sum();
        assert_eq!(total, 2500);
    }

    #[test]
    fn single_row_vector_has_one_segment() {
        let v = PimBitVec::new(1, 64, vec![addr(9)]);
        let segs: Vec<_> = v.segments(1 << 19).collect();
        assert_eq!(segs, vec![(0, addr(9), 64)]);
    }
}
