//! `pim_malloc`: row-granular bit-vector allocation.
//!
//! The paper's modified C runtime "ensures that different bit-vectors are
//! allocated to different memory rows, since Pinatubo is only able to
//! process inter-row operations" (§5). The allocator therefore hands out
//! whole rows; a vector longer than one row gets a sequence of rows
//! (segments) that the driver operates on serially.

use crate::bitvec::PimBitVec;
use crate::mapping::MappingPolicy;
use crate::RuntimeError;
use pinatubo_core::rng::SimRng;
use pinatubo_mem::{MemGeometry, RowAddr};
use std::collections::HashSet;

/// The PIM-aware allocator.
#[derive(Debug)]
pub struct PimAllocator {
    geometry: MemGeometry,
    policy: MappingPolicy,
    /// Rows handed out so far (row-linear indices).
    used: HashSet<u64>,
    /// Rows retired for endurance reasons (subset of `used`).
    retired: HashSet<u64>,
    /// Next candidate for the deterministic policies.
    cursor: u64,
    /// Per-channel next candidates (`ChannelRotate` only; empty otherwise).
    channel_cursors: Vec<u64>,
    /// Which channel the next `ChannelRotate` allocation group lands on.
    rotate_channel: usize,
    /// Start each allocation group on a copy-on-write page boundary
    /// (see [`pinatubo_mem::ROWS_PER_PAGE`]). Off by default: skipping
    /// rows changes placements, and the fault model keys its draws on
    /// row addresses, so alignment is opt-in for workloads (like the
    /// session pool) that trade a few spare rows for not dragging cold
    /// neighbour rows through page copies when a group's destination
    /// is written.
    page_aligned_groups: bool,
    rng: SimRng,
    next_id: u64,
}

impl PimAllocator {
    /// An allocator over `geometry` using `policy`.
    #[must_use]
    pub fn new(geometry: MemGeometry, policy: MappingPolicy) -> Self {
        let seed = match policy {
            MappingPolicy::Random { seed } => seed,
            _ => 0,
        };
        let channel_cursors = match policy {
            MappingPolicy::ChannelRotate => {
                let per_channel = geometry.total_rows() / u64::from(geometry.channels);
                (0..u64::from(geometry.channels))
                    .map(|c| c * per_channel)
                    .collect()
            }
            _ => Vec::new(),
        };
        PimAllocator {
            geometry,
            policy,
            used: HashSet::new(),
            retired: HashSet::new(),
            cursor: 0,
            channel_cursors,
            rotate_channel: 0,
            page_aligned_groups: false,
            rng: SimRng::seed_from_u64(seed),
            next_id: 0,
        }
    }

    /// The mapping policy in force.
    #[must_use]
    pub fn policy(&self) -> MappingPolicy {
        self.policy
    }

    /// Starts every subsequent [`PimAllocator::alloc_group`] on a
    /// copy-on-write page boundary ([`pinatubo_mem::ROWS_PER_PAGE`]
    /// rows). A group's destination row then never shares a page with a
    /// neighbouring group's operands, so a session-pool shard writing
    /// the destination copies at most the group's own page instead of
    /// dragging cold foreign rows through the copy. Costs at most
    /// `ROWS_PER_PAGE - 1` spare rows per group; changes row placement,
    /// hence opt-in (default off keeps placements — and the
    /// fault-model draws keyed on them — byte-identical).
    ///
    /// Only the contiguous-cursor policies (`SubarrayFirst`,
    /// `ChannelRotate`) honour it; scatter policies have no contiguous
    /// groups to align.
    pub fn set_page_aligned_groups(&mut self, on: bool) {
        self.page_aligned_groups = on;
    }

    /// Whether allocation groups start on copy-on-write page boundaries.
    #[must_use]
    pub fn page_aligned_groups(&self) -> bool {
        self.page_aligned_groups
    }

    /// Steers the next [`PimAllocator::alloc_group`] to `channel` under
    /// the `ChannelRotate` policy: the rotation cursor is parked on that
    /// channel, the group lands there (spilling onward only if it is
    /// full), and rotation resumes from the following channel as usual.
    /// A wear-aware placement layer uses this to direct allocations away
    /// from channels the wear ledger shows as hot. No-op under the other
    /// policies, whose placement is not channel-addressed.
    ///
    /// # Panics
    ///
    /// Panics if `channel` is outside the geometry.
    pub fn set_next_channel(&mut self, channel: u32) {
        assert!(
            channel < self.geometry.channels,
            "channel {channel} out of range ({} channels)",
            self.geometry.channels
        );
        if matches!(self.policy, MappingPolicy::ChannelRotate) {
            self.rotate_channel = channel as usize;
        }
    }

    /// Rounds the active policy cursor up to the next page boundary.
    /// Channel bases are whole numbers of subarrays, and subarrays are
    /// whole numbers of pages, so aligning the linear index aligns the
    /// channel-relative index too.
    fn align_cursor_to_page(&mut self) {
        let page = u64::from(pinatubo_mem::ROWS_PER_PAGE);
        match self.policy {
            MappingPolicy::SubarrayFirst => {
                self.cursor = (self.cursor.div_ceil(page) * page) % self.geometry.total_rows();
            }
            MappingPolicy::ChannelRotate => {
                let per_channel = self.geometry.total_rows() / u64::from(self.geometry.channels);
                let base = self.rotate_channel as u64 * per_channel;
                let cursor = self.channel_cursors[self.rotate_channel];
                let aligned = cursor.div_ceil(page) * page;
                self.channel_cursors[self.rotate_channel] = base + ((aligned - base) % per_channel);
            }
            _ => {}
        }
    }

    /// Rows not yet allocated.
    #[must_use]
    pub fn free_rows(&self) -> u64 {
        self.geometry.total_rows() - self.used.len() as u64
    }

    /// Permanently removes rows from the allocation pool (endurance
    /// management: worn or faulty rows are never handed out again).
    /// Rows currently holding data keep working — wear-out is gradual —
    /// but the allocator will never place new data there.
    ///
    /// Returns how many rows were newly retired.
    pub fn retire_rows(&mut self, rows: &[RowAddr]) -> usize {
        let mut newly = 0;
        for row in rows.iter().filter(|r| r.is_valid(&self.geometry)) {
            let linear = row.to_linear(&self.geometry);
            if self.retired.insert(linear) {
                newly += 1;
                self.used.insert(linear);
            }
        }
        newly
    }

    /// Rows retired so far.
    #[must_use]
    pub fn retired_rows(&self) -> u64 {
        self.retired.len() as u64
    }

    /// Returns rows to the free pool (`pim_free`): scratch released by a
    /// µ-program batch or an application error path becomes allocatable
    /// again, so [`PimAllocator::free_rows`] round-trips. Rows retired for
    /// endurance stay retired — release never resurrects them.
    ///
    /// Returns how many rows were actually released.
    pub fn release_rows(&mut self, rows: &[RowAddr]) -> usize {
        let mut released = 0;
        for row in rows.iter().filter(|r| r.is_valid(&self.geometry)) {
            let linear = row.to_linear(&self.geometry);
            if !self.retired.contains(&linear) && self.used.remove(&linear) {
                released += 1;
            }
        }
        released
    }

    /// Allocates a bit-vector of `len_bits` (the `pim_malloc` entry point).
    ///
    /// # Errors
    ///
    /// * [`RuntimeError::EmptyAllocation`] for zero-length requests;
    /// * [`RuntimeError::OutOfMemory`] when not enough rows remain.
    pub fn alloc(&mut self, len_bits: u64) -> Result<PimBitVec, RuntimeError> {
        if len_bits == 0 {
            return Err(RuntimeError::EmptyAllocation);
        }
        let rows_needed = len_bits.div_ceil(self.geometry.logical_row_bits());
        if rows_needed > self.free_rows() {
            return Err(RuntimeError::OutOfMemory {
                requested_rows: rows_needed,
                free_rows: self.free_rows(),
            });
        }
        let rows: Vec<RowAddr> = (0..rows_needed).map(|_| self.next_row()).collect();
        let id = self.next_id;
        self.next_id += 1;
        Ok(PimBitVec::new(id, len_bits, rows))
    }

    /// Allocates `count` bit-vectors of `len_bits` placed *together*: when
    /// the whole group fits in one subarray, every vector lands in the
    /// same subarray, so operations across the group are intra-subarray.
    ///
    /// This is the paper's PIM-aware OS placement (§5: memory management
    /// "maximizes the opportunity for calling intra-subarray operations").
    /// Groups bigger than a subarray, or non-`SubarrayFirst` policies,
    /// degrade gracefully to per-vector allocation.
    ///
    /// # Errors
    ///
    /// Same conditions as [`PimAllocator::alloc`].
    pub fn alloc_group(
        &mut self,
        count: usize,
        len_bits: u64,
    ) -> Result<Vec<PimBitVec>, RuntimeError> {
        if len_bits == 0 {
            return Err(RuntimeError::EmptyAllocation);
        }
        let rows_per_vector = len_bits.div_ceil(self.geometry.logical_row_bits());
        let group_rows = rows_per_vector * count as u64;
        let sub_rows = u64::from(self.geometry.rows_per_subarray);
        let fits_subarray = group_rows <= sub_rows;
        if self.page_aligned_groups {
            // Align before the straddle check: a subarray is a whole
            // number of pages, so a straddle skip keeps the alignment.
            self.align_cursor_to_page();
        }
        match self.policy {
            MappingPolicy::SubarrayFirst if fits_subarray => {
                // Skip to the next subarray boundary if the group would
                // straddle one.
                let used_in_subarray = self.cursor % sub_rows;
                if used_in_subarray + group_rows > sub_rows {
                    let skip_to = (self.cursor / sub_rows + 1) * sub_rows;
                    self.cursor = skip_to % self.geometry.total_rows();
                }
            }
            MappingPolicy::ChannelRotate => {
                if fits_subarray {
                    // Same boundary skip, but on the current channel's
                    // cursor (each channel's row range is a whole number
                    // of subarrays, so `% sub_rows` is subarray-relative
                    // there too).
                    let per_channel =
                        self.geometry.total_rows() / u64::from(self.geometry.channels);
                    let base = self.rotate_channel as u64 * per_channel;
                    let cursor = self.channel_cursors[self.rotate_channel];
                    let used_in_subarray = cursor % sub_rows;
                    if used_in_subarray + group_rows > sub_rows {
                        let skip_to = (cursor / sub_rows + 1) * sub_rows;
                        self.channel_cursors[self.rotate_channel] =
                            base + ((skip_to - base) % per_channel);
                    }
                }
                let group = self.alloc_many(count, len_bits);
                // The next group lands on the next channel, so independent
                // batch requests spread across channels.
                self.rotate_channel = (self.rotate_channel + 1) % self.geometry.channels as usize;
                return group;
            }
            _ => {}
        }
        self.alloc_many(count, len_bits)
    }

    /// Allocates `width_bits` bit-planes of `lanes` bits each — the
    /// bit-transposed layout for `runtime::microcode`: plane `k` holds bit
    /// `k` (LSB first) of every lane. The planes are one placement group,
    /// always started on a copy-on-write page boundary (like
    /// [`PimAllocator::set_page_aligned_groups`], but unconditional: a
    /// transposed vector's planes are rewritten together, so sharing a
    /// page with a neighbouring group would drag its cold rows through
    /// every copy).
    ///
    /// # Errors
    ///
    /// Same conditions as [`PimAllocator::alloc`]; a partial failure
    /// releases the planes already placed.
    pub fn alloc_transposed(
        &mut self,
        lanes: u64,
        width_bits: u32,
    ) -> Result<Vec<PimBitVec>, RuntimeError> {
        if lanes == 0 || width_bits == 0 {
            return Err(RuntimeError::EmptyAllocation);
        }
        let was_aligned = self.page_aligned_groups;
        self.page_aligned_groups = true;
        let planes = self.alloc_group(width_bits as usize, lanes);
        self.page_aligned_groups = was_aligned;
        planes
    }

    /// `count` sequential [`PimAllocator::alloc`] calls that roll back on
    /// failure: a half-allocated group releases its rows before the error
    /// propagates, so callers never leak placement on early returns.
    fn alloc_many(&mut self, count: usize, len_bits: u64) -> Result<Vec<PimBitVec>, RuntimeError> {
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            match self.alloc(len_bits) {
                Ok(v) => out.push(v),
                Err(e) => {
                    let rows: Vec<RowAddr> =
                        out.iter().flat_map(|v| v.rows().iter().copied()).collect();
                    self.release_rows(&rows);
                    return Err(e);
                }
            }
        }
        Ok(out)
    }

    /// Picks the next free row under the policy.
    fn next_row(&mut self) -> RowAddr {
        let total = self.geometry.total_rows();
        let linear = match self.policy {
            MappingPolicy::SubarrayFirst => {
                // Canonical linear order keeps each subarray's rows
                // contiguous, so a simple cursor fills subarrays in turn.
                let mut idx = self.cursor;
                while self.used.contains(&idx) {
                    idx = (idx + 1) % total;
                }
                self.cursor = (idx + 1) % total;
                idx
            }
            MappingPolicy::BankInterleave => {
                // Stride by one subarray's rows so consecutive allocations
                // rotate across subarrays and banks.
                let stride = u64::from(self.geometry.rows_per_subarray);
                let mut idx = self.cursor;
                while self.used.contains(&idx) {
                    idx = (idx + stride + 1) % total;
                }
                self.cursor = (idx + stride + 1) % total;
                idx
            }
            MappingPolicy::Random { .. } => loop {
                let idx = self.rng.gen_range_u64(0, total);
                if !self.used.contains(&idx) {
                    break idx;
                }
            },
            MappingPolicy::ChannelRotate => {
                // Subarray-first scan inside the current channel's row
                // range; spill to the next channel when one fills up.
                let channels = self.geometry.channels as usize;
                let per_channel = total / channels as u64;
                let mut pick = None;
                'channels: for attempt in 0..channels {
                    let c = (self.rotate_channel + attempt) % channels;
                    let base = c as u64 * per_channel;
                    let mut idx = self.channel_cursors[c];
                    let mut steps = 0;
                    while self.used.contains(&idx) {
                        idx = base + ((idx - base + 1) % per_channel);
                        steps += 1;
                        if steps >= per_channel {
                            continue 'channels;
                        }
                    }
                    self.channel_cursors[c] = base + ((idx - base + 1) % per_channel);
                    if attempt > 0 {
                        self.rotate_channel = c;
                    }
                    pick = Some(idx);
                    break;
                }
                pick.expect("alloc() checks free_rows before calling next_row")
            }
        };
        self.used.insert(linear);
        RowAddr::from_linear(&self.geometry, linear)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alloc(policy: MappingPolicy) -> PimAllocator {
        PimAllocator::new(MemGeometry::pcm_default(), policy)
    }

    #[test]
    fn subarray_first_packs_one_subarray() {
        let mut a = alloc(MappingPolicy::SubarrayFirst);
        let vectors: Vec<PimBitVec> = (0..10).map(|_| a.alloc(4096).expect("allocates")).collect();
        let first = vectors[0].rows()[0];
        for v in &vectors {
            assert!(
                v.rows()[0].same_subarray(&first),
                "co-allocated vectors should share a subarray"
            );
        }
    }

    #[test]
    fn bank_interleave_scatters_across_subarrays() {
        let mut a = alloc(MappingPolicy::BankInterleave);
        let v1 = a.alloc(64).expect("first");
        let v2 = a.alloc(64).expect("second");
        assert!(!v1.rows()[0].same_subarray(&v2.rows()[0]));
    }

    #[test]
    fn random_is_reproducible() {
        let mut a = alloc(MappingPolicy::Random { seed: 7 });
        let mut b = alloc(MappingPolicy::Random { seed: 7 });
        for _ in 0..20 {
            assert_eq!(
                a.alloc(64).expect("a").rows(),
                b.alloc(64).expect("b").rows()
            );
        }
    }

    #[test]
    fn rows_are_never_reused() {
        let mut a = alloc(MappingPolicy::random());
        let mut seen = HashSet::new();
        for _ in 0..1000 {
            let v = a.alloc(64).expect("allocates");
            for r in v.rows() {
                assert!(seen.insert(*r), "row {r} handed out twice");
            }
        }
    }

    #[test]
    fn long_vectors_get_multiple_rows() {
        let mut a = alloc(MappingPolicy::SubarrayFirst);
        let row_bits = MemGeometry::pcm_default().logical_row_bits();
        let v = a.alloc(row_bits * 3 + 1).expect("allocates");
        assert_eq!(v.rows().len(), 4);
    }

    #[test]
    fn zero_length_is_rejected() {
        let mut a = alloc(MappingPolicy::SubarrayFirst);
        assert_eq!(a.alloc(0), Err(RuntimeError::EmptyAllocation));
    }

    #[test]
    fn exhaustion_reports_out_of_memory() {
        // A tiny geometry so the test terminates quickly.
        let mut g = MemGeometry::pcm_default();
        g.channels = 1;
        g.ranks_per_channel = 1;
        g.banks_per_chip = 1;
        g.subarrays_per_bank = 1;
        g.rows_per_subarray = 4;
        let mut a = PimAllocator::new(g, MappingPolicy::SubarrayFirst);
        for _ in 0..4 {
            a.alloc(64).expect("allocates while rows remain");
        }
        assert!(matches!(
            a.alloc(64),
            Err(RuntimeError::OutOfMemory { free_rows: 0, .. })
        ));
    }

    #[test]
    fn groups_never_straddle_subarrays() {
        let mut a = alloc(MappingPolicy::SubarrayFirst);
        // 90 groups of 12 rows: 1024/12 = 85 groups per subarray, so a
        // naive cursor would straddle the boundary at group 86.
        for _ in 0..90 {
            let group = a.alloc_group(12, 64).expect("group allocates");
            let first = group[0].rows()[0];
            for v in &group {
                assert!(
                    v.rows()[0].same_subarray(&first),
                    "group must stay in one subarray"
                );
            }
        }
    }

    #[test]
    fn oversized_groups_still_allocate() {
        let mut a = alloc(MappingPolicy::SubarrayFirst);
        let group = a.alloc_group(2000, 64).expect("bigger than a subarray");
        assert_eq!(group.len(), 2000);
    }

    #[test]
    fn channel_rotate_spreads_groups_across_channels() {
        let mut a = alloc(MappingPolicy::ChannelRotate);
        let channels = MemGeometry::pcm_default().channels;
        let groups: Vec<Vec<PimBitVec>> = (0..8)
            .map(|_| a.alloc_group(3, 4096).expect("group"))
            .collect();
        for (g, group) in groups.iter().enumerate() {
            let first = group[0].rows()[0];
            assert_eq!(
                first.channel,
                g as u32 % channels,
                "group {g} should land on channel {}",
                g as u32 % channels
            );
            for v in group {
                assert!(
                    v.rows()[0].same_subarray(&first),
                    "a rotated group must still share one subarray"
                );
            }
        }
    }

    #[test]
    fn channel_rotate_groups_never_straddle_subarrays() {
        let mut a = alloc(MappingPolicy::ChannelRotate);
        for _ in 0..400 {
            let group = a.alloc_group(12, 64).expect("group allocates");
            let first = group[0].rows()[0];
            for v in &group {
                assert!(v.rows()[0].same_subarray(&first));
            }
        }
    }

    #[test]
    fn channel_rotate_spills_when_a_channel_fills() {
        let mut g = MemGeometry::pcm_default();
        g.channels = 2;
        g.ranks_per_channel = 1;
        g.banks_per_chip = 1;
        g.subarrays_per_bank = 1;
        g.rows_per_subarray = 4;
        let mut a = PimAllocator::new(g, MappingPolicy::ChannelRotate);
        // 8 rows total. Groups of 3 rotate channels; after filling, plain
        // allocs spill rather than spin.
        let g0 = a.alloc_group(3, 64).expect("group 0");
        let g1 = a.alloc_group(3, 64).expect("group 1");
        assert_eq!(g0[0].rows()[0].channel, 0);
        assert_eq!(g1[0].rows()[0].channel, 1);
        let spill: Vec<PimBitVec> = (0..2).map(|_| a.alloc(64).expect("spill")).collect();
        assert_eq!(spill.len(), 2);
        assert!(matches!(
            a.alloc(64),
            Err(RuntimeError::OutOfMemory { free_rows: 0, .. })
        ));
    }

    #[test]
    fn page_aligned_groups_start_on_page_boundaries() {
        let page = u64::from(pinatubo_mem::ROWS_PER_PAGE);
        for policy in [MappingPolicy::SubarrayFirst, MappingPolicy::ChannelRotate] {
            let mut a = alloc(policy);
            a.set_page_aligned_groups(true);
            let g = MemGeometry::pcm_default();
            for i in 0..20 {
                // Odd group sizes so unaligned allocation would drift.
                let group = a.alloc_group(3, 64).expect("group");
                let first = group[0].rows()[0].to_linear(&g);
                assert_eq!(
                    first % page,
                    0,
                    "group {i} under {policy:?} must start page-aligned"
                );
                // Rows stay consecutive, so the whole group shares the
                // minimal number of pages.
                let rows: Vec<u64> = group.iter().map(|v| v.rows()[0].to_linear(&g)).collect();
                assert_eq!(rows, vec![first, first + 1, first + 2]);
            }
        }
    }

    #[test]
    fn page_alignment_is_off_by_default_and_changes_nothing_when_off() {
        let mut plain = alloc(MappingPolicy::SubarrayFirst);
        let mut flagged = alloc(MappingPolicy::SubarrayFirst);
        assert!(!flagged.page_aligned_groups());
        flagged.set_page_aligned_groups(true);
        flagged.set_page_aligned_groups(false);
        for _ in 0..10 {
            let a = plain.alloc_group(3, 64).expect("plain");
            let b = flagged.alloc_group(3, 64).expect("flagged");
            let rows = |g2: &[PimBitVec]| g2.iter().map(|v| v.rows().to_vec()).collect::<Vec<_>>();
            assert_eq!(rows(&a), rows(&b), "default placement must not move");
        }
    }

    #[test]
    fn release_rows_round_trips_free_rows() {
        let mut a = alloc(MappingPolicy::SubarrayFirst);
        let before = a.free_rows();
        let v = a.alloc(64).expect("allocates");
        assert_eq!(a.free_rows(), before - 1);
        assert_eq!(a.release_rows(v.rows()), 1);
        assert_eq!(a.free_rows(), before, "release must round-trip free_rows");
        // Double release is a no-op.
        assert_eq!(a.release_rows(v.rows()), 0);
        assert_eq!(a.free_rows(), before);
    }

    #[test]
    fn release_never_resurrects_retired_rows() {
        let mut a = alloc(MappingPolicy::SubarrayFirst);
        let v = a.alloc(64).expect("allocates");
        let before = a.free_rows();
        assert_eq!(a.retire_rows(v.rows()), 1);
        assert_eq!(a.release_rows(v.rows()), 0, "retired rows stay retired");
        assert_eq!(a.free_rows(), before);
    }

    #[test]
    fn failed_group_allocation_rolls_back() {
        let mut g = MemGeometry::pcm_default();
        g.channels = 1;
        g.ranks_per_channel = 1;
        g.banks_per_chip = 1;
        g.subarrays_per_bank = 1;
        g.rows_per_subarray = 8;
        let mut a = PimAllocator::new(g, MappingPolicy::SubarrayFirst);
        assert!(matches!(
            a.alloc_group(12, 64),
            Err(RuntimeError::OutOfMemory { .. })
        ));
        assert_eq!(
            a.free_rows(),
            8,
            "a half-allocated group must release its rows"
        );
        // The freed rows are immediately usable.
        assert_eq!(a.alloc_group(8, 64).expect("fits exactly").len(), 8);
    }

    #[test]
    fn transposed_planes_are_page_aligned_groups() {
        let g = MemGeometry::pcm_default();
        let page = u64::from(pinatubo_mem::ROWS_PER_PAGE);
        let mut a = alloc(MappingPolicy::SubarrayFirst);
        a.alloc(64).expect("misalign the cursor");
        let planes = a.alloc_transposed(4096, 8).expect("transposed");
        assert_eq!(planes.len(), 8);
        let first = planes[0].rows()[0].to_linear(&g);
        assert_eq!(first % page, 0, "planes start on a page boundary");
        for (k, p) in planes.iter().enumerate() {
            assert_eq!(p.len_bits(), 4096);
            assert_eq!(p.rows()[0].to_linear(&g), first + k as u64);
        }
        assert!(
            !a.page_aligned_groups(),
            "transposed alloc must not leave the page-alignment flag on"
        );
        assert_eq!(a.alloc_transposed(0, 8), Err(RuntimeError::EmptyAllocation));
        assert_eq!(
            a.alloc_transposed(64, 0),
            Err(RuntimeError::EmptyAllocation)
        );
    }

    #[test]
    fn ids_are_unique() {
        let mut a = alloc(MappingPolicy::SubarrayFirst);
        let v1 = a.alloc(64).expect("v1");
        let v2 = a.alloc(64).expect("v2");
        assert_ne!(v1.id(), v2.id());
    }
}
