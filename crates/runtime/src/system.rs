//! The `pim_op` driver: the facade applications program against.

use crate::alloc::PimAllocator;
use crate::bitvec::PimBitVec;
use crate::mapping::MappingPolicy;
use crate::RuntimeError;
use pinatubo_core::{BitwiseOp, BulkOp, OpClass, OpOutcome, PinatuboConfig, PinatuboEngine};
use pinatubo_mem::{MemConfig, MemStats, ReliabilityStats, RowData, TimeBreakdown};

/// A complete Pinatubo system: engine + allocator + driver.
///
/// See the crate-level example for typical use.
#[derive(Debug)]
pub struct PimSystem {
    engine: PinatuboEngine,
    allocator: PimAllocator,
    trace: Vec<BulkOp>,
}

impl PimSystem {
    /// A system over the paper's PCM memory with full multi-row operation.
    #[must_use]
    pub fn pcm_default(policy: MappingPolicy) -> Self {
        PimSystem::new(MemConfig::pcm_default(), PinatuboConfig::default(), policy)
    }

    /// A fully configured system.
    #[must_use]
    pub fn new(mem: MemConfig, config: PinatuboConfig, policy: MappingPolicy) -> Self {
        let geometry = mem.geometry.clone();
        PimSystem {
            engine: PinatuboEngine::new(mem, config),
            allocator: PimAllocator::new(geometry, policy),
            trace: Vec::new(),
        }
    }

    /// The engine (inspection).
    #[must_use]
    pub fn engine(&self) -> &PinatuboEngine {
        &self.engine
    }

    /// The allocator (inspection).
    #[must_use]
    pub fn allocator(&self) -> &PimAllocator {
        &self.allocator
    }

    /// Starts every subsequent allocation group on a copy-on-write page
    /// boundary — see [`PimAllocator::set_page_aligned_groups`]. Meant
    /// for session-pool workloads where a group's destination row must
    /// not share a page with neighbouring groups' operands.
    pub fn set_page_aligned_groups(&mut self, on: bool) {
        self.allocator.set_page_aligned_groups(on);
    }

    /// Accumulated memory statistics (time, energy, commands).
    #[must_use]
    pub fn stats(&self) -> &MemStats {
        self.engine.memory().stats()
    }

    /// Resets and returns the accumulated memory statistics.
    pub fn take_stats(&mut self) -> MemStats {
        self.engine.memory_mut().take_stats()
    }

    /// The abstract operation trace recorded so far.
    #[must_use]
    pub fn trace(&self) -> &[BulkOp] {
        &self.trace
    }

    /// Removes and returns the recorded trace.
    pub fn take_trace(&mut self) -> Vec<BulkOp> {
        std::mem::take(&mut self.trace)
    }

    /// Allocates a bit-vector (`pim_malloc`).
    ///
    /// # Errors
    ///
    /// See [`PimAllocator::alloc`].
    pub fn alloc(&mut self, len_bits: u64) -> Result<PimBitVec, RuntimeError> {
        self.allocator.alloc(len_bits)
    }

    /// Allocates a group of co-operated bit-vectors placed for
    /// intra-subarray operation (see [`PimAllocator::alloc_group`]).
    ///
    /// # Errors
    ///
    /// See [`PimAllocator::alloc_group`].
    pub fn alloc_group(
        &mut self,
        count: usize,
        len_bits: u64,
    ) -> Result<Vec<PimBitVec>, RuntimeError> {
        self.allocator.alloc_group(count, len_bits)
    }

    /// [`PimSystem::alloc_group`] steered to one channel: parks the
    /// `ChannelRotate` cursor on `channel` first (see
    /// [`PimAllocator::set_next_channel`]), so a wear-aware placement
    /// layer can route the group to the channel the wear ledger favours.
    /// Under non-channel-addressed policies the steering is a no-op and
    /// this is plain [`PimSystem::alloc_group`].
    ///
    /// # Errors
    ///
    /// See [`PimAllocator::alloc_group`].
    pub fn alloc_group_on_channel(
        &mut self,
        channel: u32,
        count: usize,
        len_bits: u64,
    ) -> Result<Vec<PimBitVec>, RuntimeError> {
        self.allocator.set_next_channel(channel);
        self.allocator.alloc_group(count, len_bits)
    }

    /// Charged row writes summed per channel, straight from the wear
    /// ledger (see [`pinatubo_mem::MainMemory::channel_wear_totals`]).
    #[must_use]
    pub fn channel_wear(&self) -> Vec<u64> {
        self.engine.memory().channel_wear_totals()
    }

    /// [`PimSystem::alloc_transposed`] steered to one channel, like
    /// [`PimSystem::alloc_group_on_channel`]: the planes place as one
    /// group on `channel` under `ChannelRotate` (no-op steering under
    /// other policies).
    ///
    /// # Errors
    ///
    /// See [`PimAllocator::alloc_transposed`].
    pub fn alloc_transposed_on_channel(
        &mut self,
        channel: u32,
        lanes: u64,
        width_bits: u32,
    ) -> Result<crate::microcode::TransposedVec, RuntimeError> {
        self.allocator.set_next_channel(channel);
        self.alloc_transposed(lanes, width_bits)
    }

    /// Releases vectors' rows back to the allocation pool (`pim_free`) —
    /// see [`PimAllocator::release_rows`]. Applications use this on error
    /// paths (a half-initialized structure must not leak placement) and
    /// for transient masks/scratch; `runtime::microcode` uses it to
    /// recycle a compiled batch's scratch planes.
    ///
    /// Returns how many rows were released.
    pub fn release_vecs<'a, I>(&mut self, vecs: I) -> usize
    where
        I: IntoIterator<Item = &'a PimBitVec>,
    {
        let rows: Vec<pinatubo_mem::RowAddr> = vecs
            .into_iter()
            .flat_map(|v| v.rows().iter().copied())
            .collect();
        self.allocator.release_rows(&rows)
    }

    /// Allocates the bit-transposed layout for `runtime::microcode`:
    /// `width_bits` page-aligned planes of `lanes` bits each (see
    /// [`PimAllocator::alloc_transposed`]), returned as raw planes; the
    /// microcode module wraps them into its `TransposedVec`.
    ///
    /// # Errors
    ///
    /// See [`PimAllocator::alloc_transposed`].
    pub fn alloc_transposed_planes(
        &mut self,
        lanes: u64,
        width_bits: u32,
    ) -> Result<Vec<PimBitVec>, RuntimeError> {
        self.allocator.alloc_transposed(lanes, width_bits)
    }

    /// Stores bits into a vector. Setup traffic: charged to nobody, like
    /// the paper's workload initialization (the measured region is the
    /// operations, not the data load).
    ///
    /// # Errors
    ///
    /// [`RuntimeError::StoreTooLong`] if more bits are offered than the
    /// vector holds.
    pub fn store(&mut self, vec: &PimBitVec, bits: &[bool]) -> Result<(), RuntimeError> {
        if bits.len() as u64 > vec.len_bits() {
            return Err(RuntimeError::StoreTooLong {
                capacity_bits: vec.len_bits(),
                got_bits: bits.len() as u64,
            });
        }
        let row_bits = self.row_bits();
        for (i, row, seg_bits) in vec.segments(row_bits) {
            let start = i as u64 * row_bits;
            let end = (start + seg_bits).min(bits.len() as u64);
            if start >= bits.len() as u64 {
                break;
            }
            let slice = &bits[start as usize..end as usize];
            self.engine
                .memory_mut()
                .poke_row(row, &RowData::from_bits(slice))?;
        }
        Ok(())
    }

    /// Reads a vector's bits back (verification; uncharged, like a
    /// simulator state dump).
    #[must_use]
    pub fn load(&self, vec: &PimBitVec) -> Vec<bool> {
        let row_bits = self.row_bits();
        let mut out = Vec::with_capacity(vec.len_bits() as usize);
        for (_, row, seg_bits) in vec.segments(row_bits) {
            match self.engine.memory().peek_row(row) {
                Some(data) => out.extend((0..seg_bits).map(|i| data.get(i))),
                None => out.extend(std::iter::repeat(false).take(seg_bits as usize)),
            }
        }
        out
    }

    /// Population count of a vector (uncharged verification helper).
    #[must_use]
    pub fn count_ones(&self, vec: &PimBitVec) -> u64 {
        let row_bits = self.row_bits();
        vec.segments(row_bits)
            .map(
                |(_, row, seg_bits)| match self.engine.memory().peek_row(row) {
                    Some(data) => data.count_ones_prefix(seg_bits),
                    None => 0,
                },
            )
            .sum()
    }

    /// Executes `dst = op(operands…)` (`pim_op`). Splits the vectors into
    /// row segments, issues one engine bulk-op per segment, and records a
    /// single abstract [`BulkOp`] (with the worst observed locality) in the
    /// trace.
    ///
    /// # Errors
    ///
    /// * [`RuntimeError::LengthMismatch`] if operand/destination lengths
    ///   differ;
    /// * engine and memory errors pass through.
    pub fn bitwise(
        &mut self,
        op: BitwiseOp,
        operands: &[&PimBitVec],
        dst: &PimBitVec,
    ) -> Result<OpSummary, RuntimeError> {
        let row_bits = self.row_bits();
        let (summary, record) = bitwise_on_engine(&mut self.engine, row_bits, op, operands, dst)?;
        self.trace.push(record);
        Ok(summary)
    }

    /// Mutable engine access for the batch scheduler (shard split/absorb).
    pub(crate) fn engine_mut(&mut self) -> &mut PinatuboEngine {
        &mut self.engine
    }

    /// Records an abstract op in the trace (batch scheduler replay).
    pub(crate) fn push_trace(&mut self, record: BulkOp) {
        self.trace.push(record);
    }

    /// `dst = a | b | …` over any number of operands.
    ///
    /// # Errors
    ///
    /// See [`PimSystem::bitwise`].
    pub fn or_many(
        &mut self,
        operands: &[&PimBitVec],
        dst: &PimBitVec,
    ) -> Result<OpSummary, RuntimeError> {
        self.bitwise(BitwiseOp::Or, operands, dst)
    }

    /// `dst = !src`.
    ///
    /// # Errors
    ///
    /// See [`PimSystem::bitwise`].
    pub fn not(&mut self, src: &PimBitVec, dst: &PimBitVec) -> Result<OpSummary, RuntimeError> {
        self.bitwise(BitwiseOp::Not, &[src], dst)
    }

    /// `dst = src` (in-memory row copies, segment by segment).
    ///
    /// # Errors
    ///
    /// [`RuntimeError::LengthMismatch`] if the lengths differ; engine
    /// errors pass through.
    pub fn copy(&mut self, src: &PimBitVec, dst: &PimBitVec) -> Result<OpSummary, RuntimeError> {
        if src.len_bits() != dst.len_bits() {
            return Err(RuntimeError::LengthMismatch {
                expected_bits: src.len_bits(),
                got_bits: dst.len_bits(),
            });
        }
        let row_bits = self.row_bits();
        let mut summary = OpSummary::default();
        for ((_, src_row, seg_bits), (_, dst_row, _)) in src
            .segments(row_bits)
            .collect::<Vec<_>>()
            .into_iter()
            .zip(dst.segments(row_bits).collect::<Vec<_>>())
        {
            let outcome = self.engine.copy_row(src_row, dst_row, seg_bits)?;
            summary.time_ns += outcome.time_ns();
            summary.shared_ns += outcome.stats.time.shared_ns();
            summary.activations +=
                outcome.stats.events.activates + outcome.stats.events.multi_activates;
            summary.energy_pj += outcome.energy_pj();
            summary.class = summary.class.max(outcome.class);
            summary.segments += 1;
            summary.reliability += outcome.stats.reliability;
            summary.time += outcome.stats.time;
        }
        Ok(summary)
    }

    /// Endurance management: retires every row whose charged write count
    /// has reached `write_limit` from the allocation pool, so future
    /// allocations avoid worn cells. Returns how many rows were newly
    /// retired. (Vectors already placed on worn rows keep working — NVM
    /// wear-out is gradual — but no new data lands there.)
    pub fn retire_worn_rows(&mut self, write_limit: u64) -> usize {
        let worn = self.engine.memory().worn_rows(write_limit);
        self.allocator.retire_rows(&worn)
    }

    pub(crate) fn row_bits(&self) -> u64 {
        self.engine.memory().geometry().logical_row_bits()
    }
}

/// The body of [`PimSystem::bitwise`] against an explicit engine, so the
/// batch scheduler can run requests on per-channel engine shards. Returns
/// the cost summary plus the abstract trace record (not yet pushed
/// anywhere — the caller owns trace ordering).
///
/// # Errors
///
/// See [`PimSystem::bitwise`].
pub(crate) fn bitwise_on_engine(
    engine: &mut PinatuboEngine,
    row_bits: u64,
    op: BitwiseOp,
    operands: &[&PimBitVec],
    dst: &PimBitVec,
) -> Result<(OpSummary, BulkOp), RuntimeError> {
    let Some(first) = operands.first() else {
        return Err(RuntimeError::Pim(pinatubo_core::PimError::EmptyOperands));
    };
    let len = first.len_bits();
    for v in operands.iter().skip(1) {
        if v.len_bits() != len {
            return Err(RuntimeError::LengthMismatch {
                expected_bits: len,
                got_bits: v.len_bits(),
            });
        }
    }
    if dst.len_bits() != len {
        return Err(RuntimeError::LengthMismatch {
            expected_bits: len,
            got_bits: dst.len_bits(),
        });
    }

    let mut summary = OpSummary::default();
    // One operand-row buffer reused across the segments: the per-segment
    // `collect()` here used to be the hottest allocation in batch runs.
    let mut rows = Vec::with_capacity(operands.len());
    for (i, dst_row, seg_bits) in dst.segments(row_bits) {
        rows.clear();
        rows.extend(operands.iter().map(|v| v.rows()[i]));
        let outcome: OpOutcome = engine.bulk_op(op, &rows, dst_row, seg_bits)?;
        summary.time_ns += outcome.time_ns();
        summary.shared_ns += outcome.stats.time.shared_ns();
        summary.activations +=
            outcome.stats.events.activates + outcome.stats.events.multi_activates;
        summary.energy_pj += outcome.energy_pj();
        summary.class = summary.class.max(outcome.class);
        summary.segments += 1;
        summary.reliability += outcome.stats.reliability;
        summary.time += outcome.stats.time;
    }
    let record = BulkOp {
        op,
        operand_count: operands.len(),
        bits: len,
        locality: summary.class,
    };
    Ok((summary, record))
}

/// What one `pim_op` cost across its row segments.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpSummary {
    /// Total simulated time, nanoseconds.
    pub time_ns: f64,
    /// Channel-serialized portion of `time_ns`: DDR-bus bursts and
    /// mode-register sets hold the channel's shared command/data bus and
    /// cannot overlap with other requests on the same channel.
    pub shared_ns: f64,
    /// Activation groups the op issued (multi-row and single-row), for
    /// the scheduler's tRRD/tFAW accounting.
    pub activations: u64,
    /// Total energy, picojoules.
    pub energy_pj: f64,
    /// Worst locality class among the segments.
    pub class: OpClass,
    /// Row segments executed.
    pub segments: u64,
    /// Fault-injection and recovery counters accumulated over the
    /// segments (all zero when the memory runs fault-free).
    pub reliability: ReliabilityStats,
    /// Per-mechanism breakdown of `time_ns` (activate, sense, write, GDL,
    /// precharge, stall, ECC, bus, MRS), summed over the segments. The
    /// scheduler expands this into a command stream
    /// ([`pinatubo_mem::RequestStream`]) to interleave requests at
    /// command granularity; `time.total_ns() == time_ns` always.
    pub time: TimeBreakdown,
}

impl OpSummary {
    /// Bank-local portion of `time_ns` (activation, sensing, writes, GDL,
    /// precharge): overlappable with other banks' work in a batch.
    #[must_use]
    pub fn lane_ns(&self) -> f64 {
        self.time_ns - self.shared_ns
    }
}

impl Default for OpSummary {
    fn default() -> Self {
        OpSummary {
            time_ns: 0.0,
            shared_ns: 0.0,
            activations: 0,
            energy_pj: 0.0,
            class: OpClass::IntraSubarray,
            segments: 0,
            reliability: ReliabilityStats::default(),
            time: TimeBreakdown::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sys() -> PimSystem {
        PimSystem::pcm_default(MappingPolicy::SubarrayFirst)
    }

    #[test]
    fn end_to_end_or_is_correct() {
        let mut s = sys();
        let a = s.alloc(100).expect("a");
        let b = s.alloc(100).expect("b");
        let dst = s.alloc(100).expect("dst");
        let mut av = vec![false; 100];
        let mut bv = vec![false; 100];
        av[3] = true;
        bv[97] = true;
        s.store(&a, &av).expect("store a");
        s.store(&b, &bv).expect("store b");
        let summary = s.or_many(&[&a, &b], &dst).expect("or");
        assert_eq!(summary.class, OpClass::IntraSubarray);
        let out = s.load(&dst);
        assert!(out[3] && out[97]);
        assert_eq!(s.count_ones(&dst), 2);
    }

    #[test]
    fn subarray_first_policy_yields_intra_ops() {
        let mut s = sys();
        let vecs: Vec<_> = (0..64).map(|_| s.alloc(4096).expect("alloc")).collect();
        let dst = s.alloc(4096).expect("dst");
        let refs: Vec<&PimBitVec> = vecs.iter().collect();
        let summary = s.or_many(&refs, &dst).expect("64-row or");
        assert_eq!(summary.class, OpClass::IntraSubarray);
        assert_eq!(s.engine().stats().host_fallback, 0);
    }

    #[test]
    fn random_policy_degrades_locality() {
        let mut s = PimSystem::pcm_default(MappingPolicy::random());
        let vecs: Vec<_> = (0..16).map(|_| s.alloc(64).expect("alloc")).collect();
        let dst = s.alloc(64).expect("dst");
        let refs: Vec<&PimBitVec> = vecs.iter().collect();
        let summary = s.or_many(&refs, &dst).expect("or");
        assert!(
            summary.class > OpClass::IntraSubarray,
            "random placement should not stay intra-subarray"
        );
    }

    #[test]
    fn multi_segment_vectors_work() {
        let mut s = sys();
        let row_bits = s.row_bits();
        let len = row_bits * 2 + 17;
        let a = s.alloc(len).expect("a");
        let b = s.alloc(len).expect("b");
        let dst = s.alloc(len).expect("dst");
        // Set one bit in the final partial segment of `a`.
        let mut bits = vec![false; len as usize];
        bits[len as usize - 1] = true;
        s.store(&a, &bits).expect("store");
        let summary = s.bitwise(BitwiseOp::Or, &[&a, &b], &dst).expect("or");
        assert_eq!(summary.segments, 3);
        assert_eq!(s.count_ones(&dst), 1);
    }

    #[test]
    fn mismatched_lengths_are_rejected() {
        let mut s = sys();
        let a = s.alloc(100).expect("a");
        let b = s.alloc(200).expect("b");
        let dst = s.alloc(100).expect("dst");
        assert!(matches!(
            s.bitwise(BitwiseOp::Or, &[&a, &b], &dst),
            Err(RuntimeError::LengthMismatch { .. })
        ));
        let dst_short = s.alloc(50).expect("short dst");
        assert!(matches!(
            s.bitwise(BitwiseOp::Or, &[&a, &a], &dst_short),
            Err(RuntimeError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn store_too_long_is_rejected() {
        let mut s = sys();
        let a = s.alloc(10).expect("a");
        assert!(matches!(
            s.store(&a, &[true; 11]),
            Err(RuntimeError::StoreTooLong { .. })
        ));
    }

    #[test]
    fn trace_records_ops() {
        let mut s = sys();
        let a = s.alloc(64).expect("a");
        let b = s.alloc(64).expect("b");
        let dst = s.alloc(64).expect("dst");
        s.bitwise(BitwiseOp::Xor, &[&a, &b], &dst).expect("xor");
        s.not(&dst, &dst).expect("not");
        let trace = s.trace();
        assert_eq!(trace.len(), 2);
        assert_eq!(trace[0].op, BitwiseOp::Xor);
        assert_eq!(trace[1].op, BitwiseOp::Not);
        assert_eq!(trace[0].bits, 64);
    }

    #[test]
    fn worn_rows_are_retired_from_allocation() {
        let mut s = sys();
        let a = s.alloc(64).expect("a");
        let dst = s.alloc(64).expect("dst");
        // Hammer the destination row with writes.
        for _ in 0..10 {
            s.or_many(&[&a, &a], &dst).expect("or");
        }
        assert_eq!(s.engine().memory().row_wear(dst.rows()[0]), 10);

        let retired = s.retire_worn_rows(10);
        assert_eq!(retired, 1, "only the hammered dst row is worn");
        assert_eq!(s.allocator().retired_rows(), 1);
        // A second call retires nothing new.
        assert_eq!(s.retire_worn_rows(10), 0);
        // Fresh allocations proceed and never land on the retired row.
        let fresh = s.alloc(64).expect("fresh allocation still works");
        assert_ne!(fresh.rows()[0], dst.rows()[0]);
    }

    #[test]
    fn copy_through_the_stack() {
        let mut s = sys();
        let src = s.alloc(300).expect("src");
        let dst = s.alloc(300).expect("dst");
        let bits: Vec<bool> = (0..300).map(|i| i % 3 == 0).collect();
        s.store(&src, &bits).expect("store");
        let summary = s.copy(&src, &dst).expect("copy");
        assert_eq!(summary.segments, 1);
        assert_eq!(s.load(&dst), bits);

        let short = s.alloc(100).expect("short");
        assert!(matches!(
            s.copy(&src, &short),
            Err(RuntimeError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn not_through_the_stack() {
        let mut s = sys();
        let a = s.alloc(8).expect("a");
        let dst = s.alloc(8).expect("dst");
        s.store(&a, &[true, false, true, false, true, false, true, false])
            .expect("store");
        s.not(&a, &dst).expect("not");
        assert_eq!(
            s.load(&dst),
            vec![false, true, false, true, false, true, false, true]
        );
    }
}
