//! Persistent sharded execution sessions.
//!
//! [`PimSystem::execute_batch`] pays a full shard split/absorb plus a
//! thread spawn per batch: fine for one big batch, ruinous for a stream
//! of small ones. An [`ExecSession`] amortizes that setup over a whole
//! stream. Opening a session spawns one long-lived worker pool; each
//! worker *owns* its channels' engine shards for the session's lifetime.
//! Submitted requests are dispatched to their home channel's queue
//! immediately — there is no inter-batch barrier — and the parent system
//! keeps only a stale mirror of each channel, reconciled on demand from
//! the shards' dirty-state deltas (O(touched state), not O(memory)).
//!
//! Synchronization points are explicit and rare:
//!
//! * a channel-straddling request (its rows span channels) must see the
//!   unified memory, so it drains every queue, runs on the parent, and
//!   pushes the rows it touched back out to the owning shards;
//! * [`ExecSession::sync`] / [`ExecSession::close`] and the read-side
//!   helpers ([`ExecSession::load`], [`ExecSession::stats`], …) drain
//!   the queues and fold the deltas into the parent.
//!
//! Results are bit-, stats- and fault-ledger-identical to
//! [`PimSystem::execute_batch_serial`] on the same request stream,
//! independent of the pool size: per-channel FIFO order preserves every
//! data dependence a single-channel stream can have (all its rows live
//! on that channel), cross-channel dependences only arise through
//! straddling requests, which are full barriers, and each request is
//! primed with exactly the sense-amp mode register the serial stream
//! would have held (see `scheduler::mode_for`).
//!
//! A worker panic is contained: the panicking channel is poisoned and
//! its un-synced work discarded (the parent keeps that channel's last
//! synced state), every other channel's committed state survives, and
//! the session reports [`RuntimeError::WorkerPanicked`] at the next
//! sync point.

use crate::bitvec::PimBitVec;
use crate::scheduler::{mode_for, BatchRequest};
use crate::system::{bitwise_on_engine, OpSummary, PimSystem};
use crate::RuntimeError;
use pinatubo_core::{BitwiseOp, BulkOp, EngineStats, PinatuboEngine};
use pinatubo_mem::{ChannelDelta, MemCommand, MemStats, PimConfig, RowAddr};
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::sync::Arc;
use std::thread::JoinHandle;

/// The request payload a [`Job`] carries across the thread boundary.
enum JobWork {
    /// A request submitted on its own: owns clones of its handles
    /// (`PimBitVec` handles are plain row lists — cloning one does not
    /// clone the simulated storage).
    Owned {
        op: BitwiseOp,
        operands: Vec<PimBitVec>,
        dst: PimBitVec,
    },
    /// One request of a batch submitted through
    /// [`ExecSession::submit_batch`]: the whole batch crosses as a
    /// single shared slab, so dispatch clones no handles at all — each
    /// job is an index plus an `Arc` bump.
    Batch {
        slab: Arc<Vec<BatchRequest>>,
        index: usize,
    },
}

/// One dispatched request, self-contained so it can cross the thread
/// boundary.
struct Job {
    pos: usize,
    channel: u32,
    prime: PimConfig,
    work: JobWork,
    row_bits: u64,
}

/// A request's submission position paired with its outcome.
type JobResult = (usize, Result<(OpSummary, BulkOp), RuntimeError>);

enum WorkerMsg {
    /// A slab of jobs in submission order. Batched so a stream of small
    /// requests costs one channel send (and one receiver wake-up) per
    /// slab instead of per request — per-channel FIFO order is
    /// preserved because slabs are built and flushed in submission
    /// order (see [`ExecSession::flush_thread`]).
    Run(Vec<Job>),
    /// State written by the parent (straddling requests, stores) pushed
    /// back into the owning shard. Carries no statistics: the parent
    /// already accounted them.
    Apply(Box<ChannelDelta>),
    Sync(mpsc::Sender<SyncReply>),
    Shutdown,
}

/// Everything one channel hands back at a sync point.
struct ChannelSync {
    channel: u32,
    deltas: Vec<ChannelDelta>,
    mem_stats: MemStats,
    engine_stats: EngineStats,
    trace: Vec<MemCommand>,
    results: Vec<JobResult>,
    /// Set when the shard worker panicked: `(position, panic message)`.
    panicked: Option<(usize, String)>,
    /// Post-delta digest of the shard's channel state, computed only in
    /// debug builds so the parent can assert the dirty-delta sync left
    /// both sides identical (i.e. equals a full split/absorb).
    digest: Option<u64>,
}

struct SyncReply {
    channels: Vec<ChannelSync>,
    /// Results for `Run` jobs no shard on this worker could own
    /// ([`RuntimeError::NoShardForChannel`]): shipped separately so the
    /// position still resolves even though no channel claims it.
    orphans: Vec<JobResult>,
}

/// One channel's engine shard, owned by a worker thread for the whole
/// session.
struct Shard {
    channel: u32,
    engine: PinatuboEngine,
    results: Vec<JobResult>,
    /// Set after the first failed request: the channel stops, like a
    /// batch-executor channel queue (committed work stays).
    halted: bool,
    poisoned: Option<(usize, String)>,
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn worker_main(mut shards: Vec<Shard>, rx: &mpsc::Receiver<WorkerMsg>) {
    let mut orphans: Vec<JobResult> = Vec::new();
    while let Ok(msg) = rx.recv() {
        match msg {
            WorkerMsg::Run(jobs) => {
                for job in jobs {
                    run_one(&mut shards, &mut orphans, job);
                }
            }
            WorkerMsg::Apply(delta) => {
                let delta = *delta;
                if let Some(shard) = shards
                    .iter_mut()
                    .find(|s| s.channel == delta.channel() && s.poisoned.is_none())
                {
                    shard.engine.memory_mut().apply_delta(delta);
                }
            }
            WorkerMsg::Sync(reply_tx) => {
                let channels = shards.iter_mut().map(sync_one_shard).collect();
                // A dropped receiver just means the session went away
                // mid-sync; nothing useful to do with the state then.
                let _ = reply_tx.send(SyncReply {
                    channels,
                    orphans: std::mem::take(&mut orphans),
                });
            }
            WorkerMsg::Shutdown => break,
        }
    }
}

fn run_one(shards: &mut [Shard], orphans: &mut Vec<JobResult>, job: Job) {
    let Some(shard) = shards.iter_mut().find(|s| s.channel == job.channel) else {
        // Routing bug: the session queued a job on a worker that owns
        // no shard for its channel. Dropping it would leave the job's
        // position unresolved forever, so it must come back as a hard
        // error.
        debug_assert!(
            false,
            "Run job for channel {} reached a worker owning no shard for it",
            job.channel
        );
        orphans.push((
            job.pos,
            Err(RuntimeError::NoShardForChannel {
                channel: job.channel,
            }),
        ));
        return;
    };
    if shard.poisoned.is_some() {
        // The panic is reported at sync; queued work behind it is part
        // of the poisoned channel's lost state.
        return;
    }
    if shard.halted {
        // A request queued behind a failed one: never executed, but its
        // position must still resolve — as an error, not a silent gap
        // in the results.
        shard.results.push((
            job.pos,
            Err(RuntimeError::ChannelHalted {
                channel: shard.channel,
            }),
        ));
        return;
    }
    let engine = &mut shard.engine;
    let (op, operands, dst): (BitwiseOp, Vec<&PimBitVec>, &PimBitVec) = match &job.work {
        JobWork::Owned { op, operands, dst } => (*op, operands.iter().collect(), dst),
        JobWork::Batch { slab, index } => {
            let request = &slab[*index];
            (request.op, request.operands.iter().collect(), &request.dst)
        }
    };
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        engine.memory_mut().preload_pim_config(job.prime);
        bitwise_on_engine(engine, job.row_bits, op, &operands, dst)
    }));
    match outcome {
        Ok(Ok(v)) => shard.results.push((job.pos, Ok(v))),
        Ok(Err(e)) => {
            shard.results.push((job.pos, Err(e)));
            shard.halted = true;
        }
        Err(payload) => {
            shard.poisoned = Some((job.pos, panic_message(payload)));
        }
    }
}

fn sync_one_shard(shard: &mut Shard) -> ChannelSync {
    if let Some((pos, msg)) = &shard.poisoned {
        // Fail fast: a poisoned shard ships nothing — not even results
        // completed before the panic, since the state they produced
        // cannot be trusted or extracted. The parent keeps the
        // channel's last synced state.
        return ChannelSync {
            channel: shard.channel,
            deltas: Vec::new(),
            mem_stats: MemStats::default(),
            engine_stats: EngineStats::default(),
            trace: Vec::new(),
            results: Vec::new(),
            panicked: Some((*pos, msg.clone())),
            digest: None,
        };
    }
    let deltas = shard.engine.memory_mut().take_dirty_state();
    let mem_stats = shard.engine.memory_mut().take_stats();
    let engine_stats = shard.engine.take_engine_stats();
    let trace = shard.engine.memory_mut().take_trace();
    let digest =
        cfg!(debug_assertions).then(|| shard.engine.memory().channel_digest(shard.channel));
    ChannelSync {
        channel: shard.channel,
        deltas,
        mem_stats,
        engine_stats,
        trace,
        results: std::mem::take(&mut shard.results),
        panicked: None,
        digest,
    }
}

struct WorkerHandle {
    tx: mpsc::Sender<WorkerMsg>,
    join: Option<JoinHandle<()>>,
}

/// Jobs buffered per worker before a flush forces a channel send. Big
/// enough to amortize the send/wake-up cost over a stream of small
/// requests, small enough that workers start executing long before a
/// large batch finishes submitting.
const FLUSH_JOBS: usize = 32;

/// The per-worker flush threshold for this host. With more than one
/// core, workers overlap execution with submission, so slabs are cut at
/// [`FLUSH_JOBS`]. On a single core that overlap buys nothing — the
/// submitter and workers just trade context switches — so jobs buffer
/// until a sync point and each worker then runs its whole queue in one
/// uninterrupted stretch, like the barrier executor but without the
/// per-batch thread spawns.
fn flush_threshold() -> usize {
    match std::thread::available_parallelism() {
        Ok(n) if n.get() > 1 => FLUSH_JOBS,
        _ => usize::MAX,
    }
}

/// A streaming execution session over a persistent worker pool. Create
/// one with [`PimSystem::open_session`]; see the module docs for the
/// execution model.
pub struct ExecSession<'a> {
    system: &'a mut PimSystem,
    threads: Vec<WorkerHandle>,
    thread_of: HashMap<u32, usize>,
    /// Per-worker submission-ordered job buffers, flushed as one
    /// [`WorkerMsg::Run`] slab at [`flush_threshold`] jobs and at every
    /// sync point (results are only observable at sync points, so
    /// buffering never changes what a caller can see).
    pending: Vec<Vec<Job>>,
    /// Cached [`flush_threshold`] for this session.
    flush_jobs: usize,
    /// Per-submission result slots, submission order.
    slots: Vec<Option<(OpSummary, BulkOp)>>,
    first_err: Option<(usize, RuntimeError)>,
    /// Every error observed so far, keyed by submission position — the
    /// root-cause failure *and* the [`RuntimeError::ChannelHalted`]
    /// markers of requests queued behind it, so no position silently
    /// disappears from the result picture.
    errors: std::collections::BTreeMap<usize, RuntimeError>,
    last_op: Option<BitwiseOp>,
    entry_mode: PimConfig,
    row_bits: u64,
}

impl PimSystem {
    /// Opens a persistent execution session with one worker per channel.
    #[must_use]
    pub fn open_session(&mut self) -> ExecSession<'_> {
        let channels = self.engine().memory().geometry().channels as usize;
        self.open_session_with_workers(channels)
    }

    /// Opens a persistent execution session with an explicit worker
    /// count. Channels are distributed over the workers; results and
    /// statistics are identical for every worker count — only wall-clock
    /// time differs.
    #[must_use]
    pub fn open_session_with_workers(&mut self, workers: usize) -> ExecSession<'_> {
        let channels: Vec<u32> = (0..self.engine().memory().geometry().channels).collect();
        let workers = workers.clamp(1, channels.len().max(1));
        let entry_mode = self.engine().memory().pim_config();
        let row_bits = self.row_bits();
        let per_worker = channels.len().div_ceil(workers);
        let mut threads = Vec::new();
        let mut thread_of = HashMap::new();
        for chunk in channels.chunks(per_worker) {
            let shards: Vec<Shard> = chunk
                .iter()
                .map(|&channel| Shard {
                    channel,
                    engine: self.engine_mut().clone_channel(channel),
                    results: Vec::new(),
                    halted: false,
                    poisoned: None,
                })
                .collect();
            for &channel in chunk {
                thread_of.insert(channel, threads.len());
            }
            let (tx, rx) = mpsc::channel();
            let join = std::thread::spawn(move || worker_main(shards, &rx));
            threads.push(WorkerHandle {
                tx,
                join: Some(join),
            });
        }
        let pending = (0..threads.len()).map(|_| Vec::new()).collect();
        ExecSession {
            system: self,
            threads,
            thread_of,
            pending,
            flush_jobs: flush_threshold(),
            slots: Vec::new(),
            first_err: None,
            errors: std::collections::BTreeMap::new(),
            last_op: None,
            entry_mode,
            row_bits,
        }
    }
}

impl ExecSession<'_> {
    /// Submits `dst = op(operands…)` to the pool and returns its
    /// submission position. Single-channel requests are queued on their
    /// home channel and execute asynchronously; channel-straddling
    /// requests synchronize the whole pool and run on the unified
    /// memory before returning.
    ///
    /// # Errors
    ///
    /// Operand/destination length mismatches are rejected immediately.
    /// Execution errors surface at the next sync point; once the
    /// session has failed, further submissions return the first error.
    pub fn submit(
        &mut self,
        op: BitwiseOp,
        operands: &[&PimBitVec],
        dst: &PimBitVec,
    ) -> Result<usize, RuntimeError> {
        self.submit_work(op, operands, dst, |op, operands, dst| JobWork::Owned {
            op,
            operands: operands.iter().map(|v| (*v).clone()).collect(),
            dst: dst.clone(),
        })
    }

    /// Routes one request: queue it on its home channel (payload built
    /// by `make_work`, so the batch path can avoid cloning handles), or
    /// sync and run it on the unified memory if it straddles channels.
    fn submit_work(
        &mut self,
        op: BitwiseOp,
        operands: &[&PimBitVec],
        dst: &PimBitVec,
        make_work: impl FnOnce(BitwiseOp, &[&PimBitVec], &PimBitVec) -> JobWork,
    ) -> Result<usize, RuntimeError> {
        if let Some((_, e)) = &self.first_err {
            return Err(e.clone());
        }
        let pos = self.slots.len();
        if let Err(e) = validate_lengths(operands, dst) {
            self.note_err(pos, e.clone());
            self.slots.push(None);
            return Err(e);
        }
        let prime = self.last_op.map_or(self.entry_mode, mode_for);
        match home_of(operands, dst) {
            Some(channel) => {
                let job = Job {
                    pos,
                    channel,
                    prime,
                    work: make_work(op, operands, dst),
                    row_bits: self.row_bits,
                };
                let thread = self.thread_of[&channel];
                self.pending[thread].push(job);
                if self.pending[thread].len() >= self.flush_jobs {
                    self.flush_thread(thread);
                }
                self.slots.push(None);
            }
            None => {
                // Straddling request: explicit sync point. Drain every
                // queue, run on the unified (reconciled) memory, push
                // the touched state back out to the owning shards.
                self.sync_internal();
                if let Some((_, e)) = &self.first_err {
                    self.slots.push(None);
                    return Err(e.clone());
                }
                self.system
                    .engine_mut()
                    .memory_mut()
                    .preload_pim_config(prime);
                match bitwise_on_engine(self.system.engine_mut(), self.row_bits, op, operands, dst)
                {
                    Ok(v) => self.slots.push(Some(v)),
                    Err(e) => {
                        self.note_err(pos, e.clone());
                        self.slots.push(None);
                        self.last_op = Some(op);
                        return Err(e);
                    }
                }
                self.push_back_parent_writes();
            }
        }
        self.last_op = Some(op);
        Ok(pos)
    }

    /// Submits a whole batch in the scheduler's planned order (the same
    /// order [`PimSystem::execute_batch_serial`] uses), returning each
    /// request's submission position, indexed like `requests`.
    ///
    /// # Errors
    ///
    /// See [`ExecSession::submit`].
    pub fn submit_batch(&mut self, requests: &[BatchRequest]) -> Result<Vec<usize>, RuntimeError> {
        self.submit_batch_shared(&Arc::new(requests.to_vec()))
    }

    /// [`ExecSession::submit_batch`] for a batch the caller already
    /// holds behind an `Arc`: the slab is shared with the workers as-is,
    /// so dispatch clones no row handles — each queued job is an index
    /// into the slab plus an `Arc` bump. This is the cheapest way to
    /// replay the same batch across rounds.
    ///
    /// # Errors
    ///
    /// See [`ExecSession::submit`].
    pub fn submit_batch_shared(
        &mut self,
        requests: &Arc<Vec<BatchRequest>>,
    ) -> Result<Vec<usize>, RuntimeError> {
        let order = self.system.plan_batch(requests);
        let mut positions = vec![0usize; requests.len()];
        for &i in &order {
            let request = &requests[i];
            let operands: Vec<&PimBitVec> = request.operands.iter().collect();
            positions[i] = self.submit_work(request.op, &operands, &request.dst, |_, _, _| {
                JobWork::Batch {
                    slab: Arc::clone(requests),
                    index: i,
                }
            })?;
        }
        Ok(positions)
    }

    /// Drains every channel queue and folds the shards' dirty-state
    /// deltas, statistics and traces into the parent system.
    ///
    /// # Errors
    ///
    /// The earliest-submitted failed request's error, if any request has
    /// failed so far (including worker panics, reported as
    /// [`RuntimeError::WorkerPanicked`]).
    pub fn sync(&mut self) -> Result<(), RuntimeError> {
        self.sync_internal();
        match &self.first_err {
            Some((_, e)) => Err(e.clone()),
            None => Ok(()),
        }
    }

    /// Stores bits into a vector through the parent system (a sync
    /// point: the write must be visible to subsequently submitted
    /// requests, so it lands on the parent and is pushed back out to
    /// the owning shards).
    ///
    /// # Errors
    ///
    /// See [`ExecSession::sync`] and [`PimSystem::store`].
    pub fn store(&mut self, vec: &PimBitVec, bits: &[bool]) -> Result<(), RuntimeError> {
        self.sync()?;
        self.system.store(vec, bits)?;
        self.push_back_parent_writes();
        Ok(())
    }

    /// Reads a vector's bits back (a sync point).
    ///
    /// # Errors
    ///
    /// See [`ExecSession::sync`].
    pub fn load(&mut self, vec: &PimBitVec) -> Result<Vec<bool>, RuntimeError> {
        self.sync()?;
        Ok(self.system.load(vec))
    }

    /// Population count of a vector (a sync point).
    ///
    /// # Errors
    ///
    /// See [`ExecSession::sync`].
    pub fn count_ones(&mut self, vec: &PimBitVec) -> Result<u64, RuntimeError> {
        self.sync()?;
        Ok(self.system.count_ones(vec))
    }

    /// Accumulated memory statistics over everything submitted so far
    /// (a sync point).
    ///
    /// # Errors
    ///
    /// See [`ExecSession::sync`].
    pub fn stats(&mut self) -> Result<MemStats, RuntimeError> {
        self.sync()?;
        Ok(*self.system.stats())
    }

    /// Read-only view of the parent system. Between sync points the
    /// parent's channel mirrors and statistics lag the shards — call
    /// [`ExecSession::sync`] first for a reconciled view.
    #[must_use]
    pub fn system(&self) -> &PimSystem {
        self.system
    }

    /// Allocates a vector mid-session (see [`PimSystem::alloc`]).
    /// Allocation is allocator bookkeeping only — it touches no
    /// simulated memory — so unlike [`ExecSession::store`] it is *not* a
    /// sync point and costs in-flight work nothing.
    ///
    /// # Errors
    ///
    /// See [`PimSystem::alloc`].
    pub fn alloc(&mut self, len_bits: u64) -> Result<PimBitVec, RuntimeError> {
        self.system.alloc(len_bits)
    }

    /// Allocates a co-operated group mid-session (see
    /// [`PimSystem::alloc_group`]); not a sync point.
    ///
    /// # Errors
    ///
    /// See [`PimSystem::alloc_group`].
    pub fn alloc_group(
        &mut self,
        count: usize,
        len_bits: u64,
    ) -> Result<Vec<PimBitVec>, RuntimeError> {
        self.system.alloc_group(count, len_bits)
    }

    /// Channel-steered group allocation mid-session (see
    /// [`PimSystem::alloc_group_on_channel`]); not a sync point. The
    /// serving layer pairs this with the parent's wear ledger to place
    /// new tenant data on the least-worn channel.
    ///
    /// # Errors
    ///
    /// See [`PimSystem::alloc_group_on_channel`].
    pub fn alloc_group_on_channel(
        &mut self,
        channel: u32,
        count: usize,
        len_bits: u64,
    ) -> Result<Vec<PimBitVec>, RuntimeError> {
        self.system.alloc_group_on_channel(channel, count, len_bits)
    }

    /// Releases vectors' rows back to the allocation pool (see
    /// [`PimSystem::release_vecs`]); not a sync point. The caller must
    /// not release vectors still referenced by unsynced submissions.
    pub fn release_vecs<'a, I>(&mut self, vecs: I) -> usize
    where
        I: IntoIterator<Item = &'a PimBitVec>,
    {
        self.system.release_vecs(vecs)
    }

    /// How many requests have been submitted to this session.
    #[must_use]
    pub fn submitted(&self) -> usize {
        self.slots.len()
    }

    /// Ends the session: final sync, worker shutdown, and the abstract
    /// trace of every completed request pushed to the parent in
    /// submission order. Returns the per-request cost summaries, in
    /// submission order.
    ///
    /// # Errors
    ///
    /// The earliest-submitted failed request's error. Committed work —
    /// everything synced from healthy channels — stays in the parent
    /// system either way.
    pub fn close(mut self) -> Result<Vec<OpSummary>, RuntimeError> {
        self.sync_internal();
        self.shutdown();
        if self.first_err.is_none() {
            // Leave the unified mode register where the serial stream
            // would: at the last request's configuration.
            if let Some(op) = self.last_op {
                self.system
                    .engine_mut()
                    .memory_mut()
                    .preload_pim_config(mode_for(op));
            }
        }
        let slots = std::mem::take(&mut self.slots);
        let mut summaries = Vec::with_capacity(slots.len());
        for (summary, record) in slots.into_iter().flatten() {
            self.system.push_trace(record);
            summaries.push(summary);
        }
        match self.first_err.take() {
            Some((_, e)) => Err(e),
            None => Ok(summaries),
        }
    }

    /// Every error recorded so far, keyed by submission position. A
    /// failed request's position carries its root cause; positions
    /// queued behind it on the same channel carry
    /// [`RuntimeError::ChannelHalted`]. Complete only after a sync
    /// point ([`ExecSession::sync`] or any read-side helper).
    #[must_use]
    pub fn position_errors(&self) -> &std::collections::BTreeMap<usize, RuntimeError> {
        &self.errors
    }

    fn note_err(&mut self, pos: usize, e: RuntimeError) {
        self.errors.entry(pos).or_insert_with(|| e.clone());
        match &self.first_err {
            Some((first, _)) if *first <= pos => {}
            _ => self.first_err = Some((pos, e)),
        }
    }

    /// Sends a worker's buffered jobs as one slab. A send can only fail
    /// if the worker died; the panic is then reported at the next sync.
    fn flush_thread(&mut self, thread: usize) {
        if self.pending[thread].is_empty() {
            return;
        }
        let jobs = std::mem::take(&mut self.pending[thread]);
        let _ = self.threads[thread].tx.send(WorkerMsg::Run(jobs));
    }

    /// Drains all queues and reconciles the parent with every shard.
    fn sync_internal(&mut self) {
        for thread in 0..self.threads.len() {
            self.flush_thread(thread);
        }
        let (tx, rx) = mpsc::channel();
        let mut expected = 0usize;
        for handle in &self.threads {
            if handle.tx.send(WorkerMsg::Sync(tx.clone())).is_ok() {
                expected += 1;
            }
        }
        drop(tx);
        let mut channels: Vec<ChannelSync> = Vec::new();
        let mut orphans: Vec<JobResult> = Vec::new();
        for _ in 0..expected {
            let Ok(reply) = rx.recv() else { break };
            channels.extend(reply.channels);
            orphans.extend(reply.orphans);
        }
        for (pos, result) in orphans {
            if let Err(e) = result {
                self.note_err(pos, e);
            }
        }
        // Fixed merge order — ascending channel — so the folded
        // statistics are identical for every worker count.
        channels.sort_by_key(|c| c.channel);
        for sync in channels {
            if let Some((pos, message)) = sync.panicked {
                self.note_err(
                    pos,
                    RuntimeError::WorkerPanicked {
                        channel: sync.channel,
                        message,
                    },
                );
                continue;
            }
            for (pos, result) in sync.results {
                match result {
                    Ok(v) => self.slots[pos] = Some(v),
                    Err(e) => self.note_err(pos, e),
                }
            }
            let mem = self.system.engine_mut().memory_mut();
            for delta in sync.deltas {
                mem.apply_delta(delta);
            }
            mem.merge_stats(sync.mem_stats);
            mem.append_trace(sync.trace);
            self.system
                .engine_mut()
                .merge_engine_stats(sync.engine_stats);
            if let Some(shard_digest) = sync.digest {
                debug_assert_eq!(
                    self.system.engine().memory().channel_digest(sync.channel),
                    shard_digest,
                    "dirty-delta sync must leave channel {} identical to a full split/absorb",
                    sync.channel
                );
            }
        }
        // One ledger check per sync point: detected must equal
        // corrected + uncorrectable once every shard's counters are in.
        self.system.engine().memory().assert_ledger_consistent();
    }

    /// Ships the parent's dirty writes (straddling requests, stores)
    /// back to the owning shards as state-only deltas.
    fn push_back_parent_writes(&mut self) {
        let deltas = self.system.engine_mut().memory_mut().take_dirty_state();
        for delta in deltas {
            if let Some(&thread) = self.thread_of.get(&delta.channel()) {
                let _ = self.threads[thread]
                    .tx
                    .send(WorkerMsg::Apply(Box::new(delta)));
            }
        }
    }

    fn shutdown(&mut self) {
        for handle in &mut self.threads {
            let _ = handle.tx.send(WorkerMsg::Shutdown);
        }
        for handle in &mut self.threads {
            if let Some(join) = handle.join.take() {
                let _ = join.join();
            }
        }
    }
}

impl Drop for ExecSession<'_> {
    fn drop(&mut self) {
        // Best-effort absorb on implicit drop — but never on an
        // unwinding path, where a secondary panic would abort.
        if !std::thread::panicking() && self.threads.iter().any(|h| h.join.is_some()) {
            self.sync_internal();
        }
        self.shutdown();
    }
}

/// [`crate::scheduler::home_channel`] over borrowed operands.
fn home_of(operands: &[&PimBitVec], dst: &PimBitVec) -> Option<u32> {
    let c = dst.rows()[0].channel;
    all_rows(operands, dst).all(|r| r.channel == c).then_some(c)
}

fn all_rows<'a>(
    operands: &'a [&PimBitVec],
    dst: &'a PimBitVec,
) -> impl Iterator<Item = RowAddr> + 'a {
    dst.rows()
        .iter()
        .copied()
        .chain(operands.iter().flat_map(|v| v.rows().iter().copied()))
}

/// The same eager checks [`bitwise_on_engine`] performs, so malformed
/// submissions fail at submit time instead of deep in a worker.
fn validate_lengths(operands: &[&PimBitVec], dst: &PimBitVec) -> Result<(), RuntimeError> {
    let Some(first) = operands.first() else {
        return Err(RuntimeError::Pim(pinatubo_core::PimError::EmptyOperands));
    };
    let len = first.len_bits();
    for v in operands.iter().skip(1) {
        if v.len_bits() != len {
            return Err(RuntimeError::LengthMismatch {
                expected_bits: len,
                got_bits: v.len_bits(),
            });
        }
    }
    if dst.len_bits() != len {
        return Err(RuntimeError::LengthMismatch {
            expected_bits: len,
            got_bits: dst.len_bits(),
        });
    }
    Ok(())
}
