//! Bit-vector → row mapping policies.
//!
//! The paper's OS support "provides the PIM-aware memory management that
//! maximizes the opportunity for calling intra-subarray operations" (§5).
//! The policies below span that design space; the Vector workload's
//! `s`/`r` suffixes (Table 1) are exactly `SubarrayFirst` vs `Random`.

use std::fmt;

/// How the allocator places consecutive bit-vector rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MappingPolicy {
    /// PIM-aware: fill one subarray's rows before moving to the next, so
    /// vectors allocated together land in one subarray and their ops are
    /// intra-subarray.
    SubarrayFirst,
    /// Conventional performance-oriented interleaving: consecutive rows
    /// rotate across banks (good for CPU parallelism, bad for PIM — most
    /// ops become inter-bank).
    BankInterleave,
    /// PIM-oblivious random placement (the `r` workloads): ops degrade to
    /// whatever locality chance provides, mostly host fallbacks.
    Random {
        /// RNG seed, so experiments are reproducible.
        seed: u64,
    },
    /// PIM- and parallelism-aware: each allocation group fills one
    /// subarray (so its ops stay intra-subarray, like `SubarrayFirst`),
    /// but successive groups rotate round-robin across channels so
    /// independent batch requests land on different channels and the
    /// sharded executor can run them concurrently.
    ChannelRotate,
}

impl MappingPolicy {
    /// A random policy with a fixed default seed.
    #[must_use]
    pub fn random() -> Self {
        MappingPolicy::Random { seed: 0x9E3779B9 }
    }
}

impl fmt::Display for MappingPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MappingPolicy::SubarrayFirst => write!(f, "subarray-first"),
            MappingPolicy::BankInterleave => write!(f, "bank-interleave"),
            MappingPolicy::Random { seed } => write!(f, "random(seed={seed:#x})"),
            MappingPolicy::ChannelRotate => write!(f, "channel-rotate"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names() {
        assert_eq!(MappingPolicy::SubarrayFirst.to_string(), "subarray-first");
        assert_eq!(MappingPolicy::BankInterleave.to_string(), "bank-interleave");
        assert!(MappingPolicy::random().to_string().starts_with("random("));
        assert_eq!(MappingPolicy::ChannelRotate.to_string(), "channel-rotate");
    }
}
