//! The Pinatubo software stack (paper §5, Fig. 4).
//!
//! The paper's programming model exposes two functions — `pim_malloc` and
//! `pim_op` — backed by a PIM-aware C runtime, OS memory management and a
//! driver library. This crate is that stack for the simulator:
//!
//! * [`alloc::PimAllocator`] — `pim_malloc`: places each bit-vector on
//!   whole memory rows under a [`mapping::MappingPolicy`]. The PIM-aware
//!   policy packs co-operated vectors into one subarray (maximizing
//!   intra-subarray operations); the interleaved and random policies model
//!   conventional, PIM-oblivious placement.
//! * [`bitvec::PimBitVec`] — the user-level handle to an allocated vector.
//! * [`system::PimSystem`] — `pim_op`: validates a request, splits it into
//!   per-row-segment bulk operations, issues them to the
//!   [`pinatubo_core::PinatuboEngine`], and records an abstract
//!   [`pinatubo_core::BulkOp`] trace for cross-executor comparison.
//!
//! # Example
//!
//! ```
//! use pinatubo_core::BitwiseOp;
//! use pinatubo_runtime::{MappingPolicy, PimSystem};
//!
//! # fn main() -> Result<(), pinatubo_runtime::RuntimeError> {
//! let mut sys = PimSystem::pcm_default(MappingPolicy::SubarrayFirst);
//! let a = sys.alloc(1024)?;
//! let b = sys.alloc(1024)?;
//! let dst = sys.alloc(1024)?;
//! sys.store(&a, &vec![true; 1024])?;
//! sys.store(&b, &vec![false; 1024])?;
//! sys.bitwise(BitwiseOp::And, &[&a, &b], &dst)?;
//! assert_eq!(sys.count_ones(&dst), 0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod alloc;
pub mod bitvec;
pub mod isa;
pub mod mapping;
pub mod microcode;
pub mod pool;
pub mod scheduler;
pub mod system;

pub use alloc::PimAllocator;
pub use bitvec::PimBitVec;
pub use isa::PimInstruction;
pub use mapping::MappingPolicy;
pub use microcode::{CompileOptions, CompiledBatch, MicroOut, MicroProgram, TransposedVec};
pub use pool::ExecSession;
pub use scheduler::{BatchRequest, ScheduleReport};
pub use system::{OpSummary, PimSystem};

use pinatubo_core::PimError;
use pinatubo_mem::MemError;
use std::error::Error;
use std::fmt;

/// Errors produced by the runtime layer.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum RuntimeError {
    /// The allocator ran out of rows.
    OutOfMemory {
        /// Rows requested by the failing allocation.
        requested_rows: u64,
        /// Rows still free.
        free_rows: u64,
    },
    /// An operation mixed bit-vectors of different lengths.
    LengthMismatch {
        /// Length of the first operand.
        expected_bits: u64,
        /// The mismatched length.
        got_bits: u64,
    },
    /// More data was stored into a vector than it holds.
    StoreTooLong {
        /// The vector's capacity.
        capacity_bits: u64,
        /// Bits offered.
        got_bits: u64,
    },
    /// A zero-length allocation was requested.
    EmptyAllocation,
    /// A shard worker in a persistent [`pool::ExecSession`] panicked while
    /// executing a request. The panicking channel's un-synced work is lost
    /// (the parent keeps its last synced state); other channels' committed
    /// state survives.
    WorkerPanicked {
        /// The channel whose shard worker panicked.
        channel: u32,
        /// The panic payload, if it was a string.
        message: String,
    },
    /// A `Run` job reached a pool worker that owns no shard for the
    /// job's channel. The session's channel→worker routing and the
    /// worker's shard set are built from the same geometry, so this is
    /// a routing bug, not a user mistake — but it must surface as a
    /// result at the job's position rather than silently desync the
    /// submission-ordered collection.
    NoShardForChannel {
        /// The channel no shard claimed.
        channel: u32,
    },
    /// A request was queued behind a failing request on the same
    /// channel: the shard halted before reaching it, so it was never
    /// executed. Earlier positions carry the root-cause error; retry
    /// after the session re-syncs.
    ChannelHalted {
        /// The halted channel.
        channel: u32,
    },
    /// The engine rejected the operation.
    Pim(PimError),
    /// The memory rejected an access.
    Mem(MemError),
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::OutOfMemory {
                requested_rows,
                free_rows,
            } => write!(
                f,
                "out of memory: {requested_rows} rows requested, {free_rows} free"
            ),
            RuntimeError::LengthMismatch {
                expected_bits,
                got_bits,
            } => write!(
                f,
                "bit-vector length mismatch: expected {expected_bits} bits, got {got_bits}"
            ),
            RuntimeError::StoreTooLong {
                capacity_bits,
                got_bits,
            } => write!(
                f,
                "cannot store {got_bits} bits into a {capacity_bits}-bit vector"
            ),
            RuntimeError::EmptyAllocation => write!(f, "cannot allocate a zero-length bit-vector"),
            RuntimeError::WorkerPanicked { channel, message } => {
                write!(f, "shard worker for channel {channel} panicked: {message}")
            }
            RuntimeError::NoShardForChannel { channel } => {
                write!(
                    f,
                    "no worker shard owns channel {channel}; the job was not executed"
                )
            }
            RuntimeError::ChannelHalted { channel } => write!(
                f,
                "request skipped: channel {channel} halted on an earlier request's error"
            ),
            RuntimeError::Pim(e) => write!(f, "engine error: {e}"),
            RuntimeError::Mem(e) => write!(f, "memory error: {e}"),
        }
    }
}

impl Error for RuntimeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            RuntimeError::Pim(e) => Some(e),
            RuntimeError::Mem(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PimError> for RuntimeError {
    fn from(e: PimError) -> Self {
        RuntimeError::Pim(e)
    }
}

impl From<MemError> for RuntimeError {
    fn from(e: MemError) -> Self {
        RuntimeError::Mem(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_sources_chain() {
        let e = RuntimeError::from(PimError::EmptyOperands);
        assert!(Error::source(&e).is_some());
        let e = RuntimeError::from(MemError::EmptyOperation);
        assert!(Error::source(&e).is_some());
    }

    #[test]
    fn errors_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<RuntimeError>();
    }
}
