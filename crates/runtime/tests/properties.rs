//! Randomized tests for the software stack: allocation invariants, ISA
//! round-trips, and scheduler semantics preservation. Driven by the in-repo
//! seedable [`SimRng`] for deterministic case generation.

use pinatubo_core::rng::SimRng;
use pinatubo_core::BitwiseOp;
use pinatubo_mem::{MemGeometry, RowAddr};
use pinatubo_runtime::isa::{decode_stream, encode_stream, PimInstruction};
use pinatubo_runtime::{BatchRequest, MappingPolicy, PimAllocator, PimBitVec, PimSystem};

const OPS: [BitwiseOp; 4] = [
    BitwiseOp::Or,
    BitwiseOp::And,
    BitwiseOp::Xor,
    BitwiseOp::Not,
];

fn random_addr(g: &MemGeometry, rng: &mut SimRng) -> RowAddr {
    RowAddr::from_linear(g, rng.gen_range_u64(0, g.total_rows()))
}

/// Any well-formed instruction survives encode → decode unchanged.
#[test]
fn isa_round_trips() {
    let g = MemGeometry::pcm_default();
    let mut rng = SimRng::seed_from_u64(0x15A);
    for case in 0..256 {
        let op = OPS[case % OPS.len()];
        let n = 1 + rng.gen_index(15);
        let operands: Vec<RowAddr> = (0..n).map(|_| random_addr(&g, &mut rng)).collect();
        let operands = if op == BitwiseOp::Not {
            operands[..1].to_vec()
        } else if operands.len() < 2 {
            vec![operands[0], operands[0]]
        } else {
            operands
        };
        let dst = random_addr(&g, &mut rng);
        let cols = 1 + rng.gen_range_u64(0, (1 << 19) - 1);
        let instruction = PimInstruction {
            op,
            operands,
            dst,
            cols,
        };
        let words = encode_stream(&g, std::slice::from_ref(&instruction));
        let decoded = decode_stream(&g, &words).expect("round trip decodes");
        assert_eq!(decoded, vec![instruction]);
    }
}

/// Group allocation never reuses a row and keeps fitting groups in one
/// subarray under the PIM-aware policy.
#[test]
fn alloc_group_invariants() {
    let mut rng = SimRng::seed_from_u64(0xA110C);
    for _ in 0..32 {
        let mut allocator =
            PimAllocator::new(MemGeometry::pcm_default(), MappingPolicy::SubarrayFirst);
        let mut seen = std::collections::HashSet::new();
        let groups = 1 + rng.gen_index(23);
        for _ in 0..groups {
            let size = 1 + rng.gen_index(63);
            let group = allocator.alloc_group(size, 64).expect("allocates");
            assert_eq!(group.len(), size);
            let first = group[0].rows()[0];
            for vector in &group {
                for row in vector.rows() {
                    assert!(seen.insert(*row), "row {row} reused");
                    assert!(row.same_subarray(&first));
                }
            }
        }
    }
}

/// A scheduled batch produces exactly the same destination contents as
/// submission-order execution, for arbitrary dependency chains.
#[test]
fn scheduler_preserves_semantics() {
    let mut outer = SimRng::seed_from_u64(0x5C4E);
    for _ in 0..24 {
        let seed = outer.next_u64();
        let count = 2 + outer.gen_index(8);
        let ops: Vec<(BitwiseOp, u64)> = (0..count)
            .map(|_| (OPS[outer.gen_index(OPS.len())], outer.next_u64()))
            .collect();

        let build = |sys: &mut PimSystem| -> (Vec<BatchRequest>, Vec<PimBitVec>) {
            let mut rng = SimRng::seed_from_u64(seed);
            // A pool the requests read from and write into, creating
            // genuine dependency chains.
            let pool: Vec<PimBitVec> = (0..6)
                .map(|i| {
                    let v = sys.alloc(96).expect("alloc");
                    let bits: Vec<bool> = (0..96).map(|j| (i * 13 + j) % 5 == 0).collect();
                    sys.store(&v, &bits).expect("store");
                    v
                })
                .collect();
            let requests = ops
                .iter()
                .map(|&(op, pick)| {
                    let a = pool[(pick % 6) as usize].clone();
                    let b = pool[((pick >> 8) % 6) as usize].clone();
                    let dst = pool[rng.gen_index(6)].clone();
                    let operands = if op == BitwiseOp::Not {
                        vec![a]
                    } else {
                        vec![a, b]
                    };
                    BatchRequest { op, operands, dst }
                })
                .collect();
            (requests, pool)
        };

        let mut scheduled = PimSystem::pcm_default(MappingPolicy::SubarrayFirst);
        let (requests, pool) = build(&mut scheduled);
        scheduled.execute_batch(&requests).expect("scheduled batch");
        let scheduled_state: Vec<Vec<bool>> = pool.iter().map(|v| scheduled.load(v)).collect();

        let mut sequential = PimSystem::pcm_default(MappingPolicy::SubarrayFirst);
        let (requests, pool) = build(&mut sequential);
        for r in &requests {
            let operands: Vec<&PimBitVec> = r.operands.iter().collect();
            sequential
                .bitwise(r.op, &operands, &r.dst)
                .expect("sequential op");
        }
        let sequential_state: Vec<Vec<bool>> = pool.iter().map(|v| sequential.load(v)).collect();

        assert_eq!(scheduled_state, sequential_state);
    }
}

/// Copy is exact for any length, including multi-segment vectors.
#[test]
fn copy_round_trips() {
    let mut rng = SimRng::seed_from_u64(0xC0);
    for _ in 0..24 {
        let len = 1 + rng.gen_index(1999);
        let bits: Vec<bool> = (0..len).map(|_| rng.gen_bit()).collect();
        let mut sys = PimSystem::pcm_default(MappingPolicy::SubarrayFirst);
        let src = sys.alloc(bits.len() as u64).expect("src");
        let dst = sys.alloc(bits.len() as u64).expect("dst");
        sys.store(&src, &bits).expect("store");
        sys.copy(&src, &dst).expect("copy");
        assert_eq!(sys.load(&dst), bits);
    }
}
