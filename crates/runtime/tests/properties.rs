//! Property tests for the software stack: allocation invariants, ISA
//! round-trips, and scheduler semantics preservation.

use pinatubo_core::BitwiseOp;
use pinatubo_mem::{MemGeometry, RowAddr};
use pinatubo_runtime::isa::{decode_stream, encode_stream, PimInstruction};
use pinatubo_runtime::{BatchRequest, MappingPolicy, PimAllocator, PimBitVec, PimSystem};
use proptest::prelude::*;

fn op_strategy() -> impl Strategy<Value = BitwiseOp> {
    prop::sample::select(vec![
        BitwiseOp::Or,
        BitwiseOp::And,
        BitwiseOp::Xor,
        BitwiseOp::Not,
    ])
}

fn addr_strategy() -> impl Strategy<Value = RowAddr> {
    let g = MemGeometry::pcm_default();
    (0..g.total_rows()).prop_map(move |i| RowAddr::from_linear(&g, i))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any well-formed instruction survives encode → decode unchanged.
    #[test]
    fn isa_round_trips(
        op in op_strategy(),
        operands in prop::collection::vec(addr_strategy(), 1..16),
        dst in addr_strategy(),
        cols in 1u64..(1 << 19),
    ) {
        let operands = if op == BitwiseOp::Not {
            operands[..1].to_vec()
        } else if operands.len() < 2 {
            vec![operands[0], operands[0]]
        } else {
            operands
        };
        let g = MemGeometry::pcm_default();
        let instruction = PimInstruction { op, operands, dst, cols };
        let words = encode_stream(&g, std::slice::from_ref(&instruction));
        let decoded = decode_stream(&g, &words).expect("round trip decodes");
        prop_assert_eq!(decoded, vec![instruction]);
    }

    /// Group allocation never reuses a row and keeps fitting groups in one
    /// subarray under the PIM-aware policy.
    #[test]
    fn alloc_group_invariants(sizes in prop::collection::vec(1usize..64, 1..24)) {
        let mut allocator = PimAllocator::new(
            MemGeometry::pcm_default(),
            MappingPolicy::SubarrayFirst,
        );
        let mut seen = std::collections::HashSet::new();
        for size in sizes {
            let group = allocator.alloc_group(size, 64).expect("allocates");
            prop_assert_eq!(group.len(), size);
            let first = group[0].rows()[0];
            for vector in &group {
                for row in vector.rows() {
                    prop_assert!(seen.insert(*row), "row {} reused", row);
                    prop_assert!(row.same_subarray(&first));
                }
            }
        }
    }

    /// A scheduled batch produces exactly the same destination contents as
    /// submission-order execution, for arbitrary dependency chains.
    #[test]
    fn scheduler_preserves_semantics(
        ops in prop::collection::vec((op_strategy(), any::<u64>()), 2..10),
        seed in any::<u64>(),
    ) {
        use rand::{Rng, SeedableRng};

        let build = |sys: &mut PimSystem| -> (Vec<BatchRequest>, Vec<PimBitVec>) {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            // A pool the requests read from and write into, creating
            // genuine dependency chains.
            let pool: Vec<PimBitVec> = (0..6)
                .map(|i| {
                    let v = sys.alloc(96).expect("alloc");
                    let bits: Vec<bool> = (0..96).map(|j| (i * 13 + j) % 5 == 0).collect();
                    sys.store(&v, &bits).expect("store");
                    v
                })
                .collect();
            let requests = ops
                .iter()
                .map(|&(op, pick)| {
                    let a = pool[(pick % 6) as usize].clone();
                    let b = pool[((pick >> 8) % 6) as usize].clone();
                    let dst = pool[rng.gen_range(0..6)].clone();
                    let operands = if op == BitwiseOp::Not { vec![a] } else { vec![a, b] };
                    BatchRequest { op, operands, dst }
                })
                .collect();
            (requests, pool)
        };

        let mut scheduled = PimSystem::pcm_default(MappingPolicy::SubarrayFirst);
        let (requests, pool) = build(&mut scheduled);
        scheduled.execute_batch(&requests).expect("scheduled batch");
        let scheduled_state: Vec<Vec<bool>> = pool.iter().map(|v| scheduled.load(v)).collect();

        let mut sequential = PimSystem::pcm_default(MappingPolicy::SubarrayFirst);
        let (requests, pool) = build(&mut sequential);
        for r in &requests {
            let operands: Vec<&PimBitVec> = r.operands.iter().collect();
            sequential.bitwise(r.op, &operands, &r.dst).expect("sequential op");
        }
        let sequential_state: Vec<Vec<bool>> = pool.iter().map(|v| sequential.load(v)).collect();

        prop_assert_eq!(scheduled_state, sequential_state);
    }

    /// Copy is exact for any length, including multi-segment vectors.
    #[test]
    fn copy_round_trips(bits in prop::collection::vec(any::<bool>(), 1..2000)) {
        let mut sys = PimSystem::pcm_default(MappingPolicy::SubarrayFirst);
        let src = sys.alloc(bits.len() as u64).expect("src");
        let dst = sys.alloc(bits.len() as u64).expect("dst");
        sys.store(&src, &bits).expect("store");
        sys.copy(&src, &dst).expect("copy");
        prop_assert_eq!(sys.load(&dst), bits);
    }
}
