//! Deterministic fault injection for the NVM array and its sense path.
//!
//! The margin analysis in [`crate::sense_amp`] and the Monte-Carlo sweep in
//! [`crate::yield_analysis`] both stay *analytic*: the functional simulator
//! above them never actually mis-senses a bit. This module closes that gap
//! with a seedable [`FaultModel`] that perturbs the physical quantities the
//! rest of the crate already models:
//!
//! * **stuck-at cells** — a per-cell manufactured defect probability, plus
//!   endurance wear-out after a per-cell write budget (PCM cells fail
//!   stuck-SET or stuck-RESET once their heater degrades);
//! * **resistance drift** — a deterministic per-cell multiplicative shift
//!   that widens each stored level *toward* the sense reference (the
//!   pessimistic direction for sensing);
//! * **process variation** — the same systematic + residual log-space
//!   split the yield analysis uses, re-drawn on every sense so Gaussian
//!   tails produce data-dependent errors exactly where Fig. 5 predicts;
//! * **transient sense flips** — a per-[`SenseMode`] probability that the
//!   latch resolves the wrong way regardless of the bit-line current;
//! * **write-path flips** — a per-attempt probability that the write
//!   driver fails to program a healthy cell (so program-and-verify retries
//!   genuinely help).
//!
//! Everything is driven by the in-tree [`SimRng`]: per-cell quantities are
//! *hashed* from `(seed, cell)` so they are stable across the run, while
//! per-sense draws come from one sequential stream. Same seed ⇒ same fault
//! pattern ⇒ same statistics, on every platform.
//!
//! [`FaultModel::none`] disables every mechanism; callers are expected to
//! skip the fault path entirely in that case (see
//! [`FaultModel::is_none`]), keeping the fault-free simulator bit-identical
//! to a build without this module.

use crate::resistance::{parallel, Ohms};
use crate::rng::{splitmix64, SimRng};
use crate::sense_amp::{CurrentSenseAmp, SenseMargin, SenseMode};
use crate::write_driver::DrivenBit;
use crate::yield_analysis::{sample_factors, ResidualSampler, VariationModel};
use crate::NvmError;

/// Domain-separation salts for the per-cell hashes, so the stuck map, the
/// endurance budgets and the drift magnitudes are independent functions of
/// the same seed.
const SALT_STUCK: u64 = 0x5EED_57AC_0000_0001;
const SALT_ENDURANCE: u64 = 0x5EED_E27D_0000_0002;
const SALT_WEAR_VALUE: u64 = 0x5EED_3EA2_0000_0003;
const SALT_DRIFT: u64 = 0x5EED_D21F_0000_0004;
const SALT_STREAM: u64 = 0x5EED_F10A_0000_0005;
const SALT_CHANNEL: u64 = 0x5EED_C4A2_0000_0006;

/// Identifies one physical cell: a linear row index and a bit position.
///
/// The memory controller derives `row_key` from the full
/// channel/rank/bank/subarray/row coordinate, so the same logical data
/// stored on different rows sees a different (but still deterministic)
/// fault pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CellId {
    /// Linear row index within the device.
    pub row_key: u64,
    /// Bit position within the row.
    pub bit: u64,
}

impl CellId {
    /// Builds a cell identity.
    #[must_use]
    pub fn new(row_key: u64, bit: u64) -> Self {
        CellId { row_key, bit }
    }
}

/// Whether a cell can still be programmed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellHealth {
    /// Programs and senses normally (up to stochastic effects).
    Healthy,
    /// Holds this value regardless of what is written.
    StuckAt(bool),
}

/// Endurance wear-out: cells die after a budget of charged writes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnduranceModel {
    /// Mean per-cell write budget.
    pub mean_writes: u64,
    /// Relative half-width of the uniform budget spread, in `[0, 1)`:
    /// budgets are drawn per cell from
    /// `mean · [1 − spread, 1 + spread]`.
    pub spread: f64,
}

/// A deterministic, seedable fault model for the cell array.
///
/// All probabilities are per cell (stuck-at, endurance) or per sense /
/// write attempt (variation, transients, write flips). The default is
/// [`FaultModel::none`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultModel {
    /// Root seed for the per-cell hashes and the per-sense stream.
    pub seed: u64,
    /// Manufactured stuck-at-0 probability per cell.
    pub stuck_at_zero: f64,
    /// Manufactured stuck-at-1 probability per cell.
    pub stuck_at_one: f64,
    /// Maximum deterministic per-cell resistance shift toward the sense
    /// reference, as a relative factor (0.05 = up to 5%). Each cell's
    /// actual shift is hashed uniformly from `[0, drift_spread]`.
    pub drift_spread: f64,
    /// Stochastic process variation re-drawn on every sense, using the
    /// yield analysis' systematic + residual split. `None` disables it.
    pub variation: Option<VariationModel>,
    /// Endurance wear-out; `None` means cells never wear out.
    pub endurance: Option<EnduranceModel>,
    /// Transient sense-flip probability in READ mode.
    pub transient_read_flip: f64,
    /// Transient sense-flip probability for a 2-row OR; wider ORs scale it
    /// linearly with fan-in (weaker margin ⇒ a noisier latch decision),
    /// clamped to 0.5.
    pub transient_or_flip: f64,
    /// Transient sense-flip probability in AND mode.
    pub transient_and_flip: f64,
    /// Probability that one write attempt fails to program a healthy cell.
    pub write_flip: f64,
}

impl FaultModel {
    /// The fault-free model: every mechanism disabled.
    #[must_use]
    pub fn none() -> Self {
        FaultModel {
            seed: 0,
            stuck_at_zero: 0.0,
            stuck_at_one: 0.0,
            drift_spread: 0.0,
            variation: None,
            endurance: None,
            transient_read_flip: 0.0,
            transient_or_flip: 0.0,
            transient_and_flip: 0.0,
            write_flip: 0.0,
        }
    }

    /// A fault-free model carrying a seed, as a builder starting point.
    #[must_use]
    pub fn with_seed(seed: u64) -> Self {
        FaultModel {
            seed,
            ..FaultModel::none()
        }
    }

    /// Adds manufactured stuck-at defects.
    #[must_use]
    pub fn with_stuck_at(mut self, p_stuck_zero: f64, p_stuck_one: f64) -> Self {
        self.stuck_at_zero = p_stuck_zero;
        self.stuck_at_one = p_stuck_one;
        self
    }

    /// Adds deterministic per-cell drift toward the reference.
    #[must_use]
    pub fn with_drift(mut self, spread: f64) -> Self {
        self.drift_spread = spread;
        self
    }

    /// Adds per-sense stochastic process variation.
    #[must_use]
    pub fn with_variation(mut self, model: VariationModel) -> Self {
        self.variation = Some(model);
        self
    }

    /// Adds endurance wear-out.
    #[must_use]
    pub fn with_endurance(mut self, mean_writes: u64, spread: f64) -> Self {
        self.endurance = Some(EnduranceModel {
            mean_writes,
            spread,
        });
        self
    }

    /// Adds transient sense flips (READ / 2-row OR / AND probabilities).
    #[must_use]
    pub fn with_transients(mut self, read: f64, or2: f64, and2: f64) -> Self {
        self.transient_read_flip = read;
        self.transient_or_flip = or2;
        self.transient_and_flip = and2;
        self
    }

    /// Adds write-attempt failures on healthy cells.
    #[must_use]
    pub fn with_write_flips(mut self, p: f64) -> Self {
        self.write_flip = p;
        self
    }

    /// `true` when every mechanism is disabled — callers then skip the
    /// fault path entirely, guaranteeing bit-identical behavior to a
    /// simulator without fault injection.
    #[must_use]
    pub fn is_none(&self) -> bool {
        self.stuck_at_zero <= 0.0
            && self.stuck_at_one <= 0.0
            && self.drift_spread <= 0.0
            && self.variation.is_none()
            && self.endurance.is_none()
            && self.transient_read_flip <= 0.0
            && self.transient_or_flip <= 0.0
            && self.transient_and_flip <= 0.0
            && self.write_flip <= 0.0
    }

    /// The transient latch-flip probability for one sense under `mode`.
    #[must_use]
    pub fn transient_flip_probability(&self, mode: SenseMode) -> f64 {
        match mode {
            SenseMode::Read => self.transient_read_flip,
            SenseMode::Or { fan_in } => (self.transient_or_flip * fan_in as f64 / 2.0).min(0.5),
            SenseMode::And => self.transient_and_flip,
        }
    }

    /// A uniform `[0, 1)` hash of `(seed, cell, salt)` — stable for the
    /// whole run, independent across salts.
    fn cell_unit(&self, cell: CellId, salt: u64) -> f64 {
        let mut s = self.seed ^ salt;
        let a = splitmix64(&mut s);
        s ^= cell.row_key.wrapping_add(a);
        let b = splitmix64(&mut s);
        s ^= cell.bit.wrapping_add(b);
        (splitmix64(&mut s) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// The manufactured stuck-at value of `cell`, if any.
    #[must_use]
    pub fn manufactured_stuck(&self, cell: CellId) -> Option<bool> {
        let p0 = self.stuck_at_zero.max(0.0);
        let p1 = self.stuck_at_one.max(0.0);
        if p0 <= 0.0 && p1 <= 0.0 {
            return None;
        }
        let u = self.cell_unit(cell, SALT_STUCK);
        if u < p0 {
            Some(false)
        } else if u < p0 + p1 {
            Some(true)
        } else {
            None
        }
    }

    /// The per-cell write budget before endurance failure, if endurance is
    /// modeled.
    #[must_use]
    pub fn endurance_budget(&self, cell: CellId) -> Option<u64> {
        self.endurance.map(|e| {
            let u = self.cell_unit(cell, SALT_ENDURANCE);
            let lo = e.mean_writes as f64 * (1.0 - e.spread);
            let hi = e.mean_writes as f64 * (1.0 + e.spread);
            (lo + u * (hi - lo)).max(1.0) as u64
        })
    }

    /// The health of `cell` after `writes` charged writes: manufactured
    /// defects first, then endurance wear-out (worn cells latch a
    /// hash-chosen stuck value — a degraded PCM heater can fail either
    /// stuck-SET or stuck-RESET).
    #[must_use]
    pub fn cell_health(&self, cell: CellId, writes: u64) -> CellHealth {
        if let Some(v) = self.manufactured_stuck(cell) {
            return CellHealth::StuckAt(v);
        }
        if let Some(budget) = self.endurance_budget(cell) {
            if writes > budget {
                return CellHealth::StuckAt(self.cell_unit(cell, SALT_WEAR_VALUE) < 0.5);
            }
        }
        CellHealth::Healthy
    }

    /// The deterministic drift factor applied to `cell`'s resistance when
    /// it stores `stored`: stored '1' (low resistance) drifts *up*, stored
    /// '0' (high resistance) drifts *down* — both toward the reference,
    /// the pessimistic direction for sensing.
    #[must_use]
    pub fn drift_factor(&self, cell: CellId, stored: bool) -> f64 {
        if self.drift_spread <= 0.0 {
            return 1.0;
        }
        let magnitude = self.cell_unit(cell, SALT_DRIFT) * self.drift_spread;
        if stored {
            1.0 + magnitude
        } else {
            1.0 / (1.0 + magnitude)
        }
    }
}

impl Default for FaultModel {
    fn default() -> Self {
        FaultModel::none()
    }
}

/// One cell as presented to a faulty sense: its identity, the value the
/// controller believes it stores, and its charged-write count (for
/// endurance).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SensedCell {
    /// Physical identity.
    pub cell: CellId,
    /// The functionally stored value.
    pub stored: bool,
    /// Charged writes this cell has absorbed.
    pub writes: u64,
}

/// Mutable fault-injection state: the model plus the sequential stream for
/// per-sense stochastic draws.
#[derive(Debug, Clone)]
pub struct FaultState {
    model: FaultModel,
    rng: SimRng,
}

impl FaultState {
    /// Initializes the state; the stochastic stream is derived from the
    /// model's seed (domain-separated from the per-cell hashes).
    #[must_use]
    pub fn new(model: FaultModel) -> Self {
        let mut s = model.seed ^ SALT_STREAM;
        FaultState {
            model,
            rng: SimRng::seed_from_u64(splitmix64(&mut s)),
        }
    }

    /// Initializes the per-channel state used when the memory is sharded
    /// by channel: every channel draws from its own sequential stream, so
    /// the draws a channel consumes are a pure function of `(seed,
    /// channel)` — independent of how many worker threads execute, or in
    /// which order the channels interleave.
    ///
    /// Channel 0 reproduces [`FaultState::new`] exactly, which keeps every
    /// pre-sharding pinned fault scenario (all on channel 0) bit-identical.
    #[must_use]
    pub fn for_channel(model: FaultModel, channel: u32) -> Self {
        if channel == 0 {
            return FaultState::new(model);
        }
        let mut s = model.seed ^ SALT_STREAM ^ (u64::from(channel).wrapping_mul(SALT_CHANNEL | 1));
        FaultState {
            model,
            rng: SimRng::seed_from_u64(splitmix64(&mut s)),
        }
    }

    /// The model being injected.
    #[must_use]
    pub fn model(&self) -> &FaultModel {
        &self.model
    }

    /// Commits one write-driver firing to a cell: stuck cells keep their
    /// stuck value, healthy cells occasionally miss the programming pulse
    /// ([`FaultModel::write_flip`]). Returns the value the cell actually
    /// holds afterwards.
    pub fn commit_write(&mut self, driven: DrivenBit, cell: CellId, writes: u64) -> bool {
        match self.model.cell_health(cell, writes) {
            CellHealth::StuckAt(v) => v,
            CellHealth::Healthy => {
                if self.model.write_flip > 0.0 && self.rng.gen_bool(self.model.write_flip.min(1.0))
                {
                    !driven.bit()
                } else {
                    driven.bit()
                }
            }
        }
    }
}

impl CurrentSenseAmp {
    /// Senses `cells` in parallel under `mode` with faults injected: stuck
    /// overrides, deterministic drift, per-sense process variation on each
    /// cell's resistance, then a transient latch flip. `margin` must be
    /// this amplifier's margin for `mode` (callers cache it — the interval
    /// construction is too costly per column).
    ///
    /// # Errors
    ///
    /// Returns [`NvmError::FanInExceeded`] when `cells.len()` disagrees
    /// with the mode's fan-in. The margin-based fan-in cap is *not*
    /// enforced here — measuring how over-wide activations fail is the
    /// point — mirroring [`crate::yield_analysis::or_error_rate`].
    pub fn sense_with_faults(
        &self,
        mode: SenseMode,
        margin: &SenseMargin,
        cells: &[SensedCell],
        state: &mut FaultState,
    ) -> Result<bool, NvmError> {
        if cells.len() != mode.fan_in() {
            return Err(NvmError::FanInExceeded {
                requested: cells.len(),
                supported: mode.fan_in(),
            });
        }
        let model = state.model;
        let tech = self.technology();
        let (global, mut residual): (f64, ResidualSampler) = match model.variation {
            Some(m) => sample_factors(tech, m, &mut state.rng),
            None => (1.0, Box::new(|_| 1.0)),
        };
        let rng = &mut state.rng;
        let bitline = parallel(cells.iter().map(|c| {
            let effective = match model.cell_health(c.cell, c.writes) {
                CellHealth::StuckAt(v) => v,
                CellHealth::Healthy => c.stored,
            };
            let r = tech.cell_resistance(effective).get()
                * model.drift_factor(c.cell, effective)
                * global
                * residual(rng);
            Ohms::new(r)
        }));
        let mut sensed = bitline < margin.reference();
        let p = model.transient_flip_probability(mode);
        if p > 0.0 && state.rng.gen_bool(p) {
            sensed = !sensed;
        }
        Ok(sensed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::technology::Technology;
    use crate::write_driver::{WriteDriver, WriteSource};

    fn cell(row: u64, bit: u64) -> CellId {
        CellId::new(row, bit)
    }

    #[test]
    fn none_is_none_and_default() {
        assert!(FaultModel::none().is_none());
        assert!(FaultModel::default().is_none());
        assert!(!FaultModel::with_seed(1).with_stuck_at(1e-3, 0.0).is_none());
        assert!(!FaultModel::with_seed(1)
            .with_variation(VariationModel::Gaussian)
            .is_none());
    }

    #[test]
    fn stuck_map_is_deterministic_and_tracks_probability() {
        let model = FaultModel::with_seed(0xC0FFEE).with_stuck_at(0.05, 0.05);
        let n = 20_000u64;
        let mut stuck0 = 0u64;
        let mut stuck1 = 0u64;
        for i in 0..n {
            match model.manufactured_stuck(cell(i / 64, i % 64)) {
                Some(false) => stuck0 += 1,
                Some(true) => stuck1 += 1,
                None => {}
            }
            // Stable across repeated queries.
            assert_eq!(
                model.manufactured_stuck(cell(i / 64, i % 64)),
                model.manufactured_stuck(cell(i / 64, i % 64))
            );
        }
        let rate0 = stuck0 as f64 / n as f64;
        let rate1 = stuck1 as f64 / n as f64;
        assert!((rate0 - 0.05).abs() < 0.01, "stuck-at-0 rate {rate0}");
        assert!((rate1 - 0.05).abs() < 0.01, "stuck-at-1 rate {rate1}");
    }

    #[test]
    fn endurance_kills_cells_past_budget() {
        let model = FaultModel::with_seed(7).with_endurance(100, 0.2);
        let c = cell(3, 17);
        let budget = model.endurance_budget(c).expect("endurance modeled");
        assert!((80..=120).contains(&budget), "budget {budget}");
        assert_eq!(model.cell_health(c, budget), CellHealth::Healthy);
        assert!(matches!(
            model.cell_health(c, budget + 1),
            CellHealth::StuckAt(_)
        ));
    }

    #[test]
    fn drift_moves_both_levels_toward_the_reference() {
        let model = FaultModel::with_seed(9).with_drift(0.10);
        let c = cell(0, 0);
        let up = model.drift_factor(c, true);
        let down = model.drift_factor(c, false);
        assert!((1.0..=1.10).contains(&up), "low-R drift {up}");
        assert!((1.0 / 1.10..=1.0).contains(&down), "high-R drift {down}");
        // Deterministic.
        assert_eq!(up, model.drift_factor(c, true));
    }

    #[test]
    fn or_transients_scale_with_fan_in() {
        let model = FaultModel::with_seed(1).with_transients(1e-4, 1e-3, 2e-4);
        assert_eq!(model.transient_flip_probability(SenseMode::Read), 1e-4);
        assert_eq!(
            model.transient_flip_probability(SenseMode::or(2).unwrap()),
            1e-3
        );
        assert_eq!(
            model.transient_flip_probability(SenseMode::or(8).unwrap()),
            4e-3
        );
        assert_eq!(model.transient_flip_probability(SenseMode::And), 2e-4);
    }

    #[test]
    fn faultless_sense_matches_logical_or() {
        let tech = Technology::pcm();
        let sa = CurrentSenseAmp::new(&tech);
        let mode = SenseMode::or(4).unwrap();
        let margin = sa.margin(mode);
        let mut state = FaultState::new(FaultModel::none());
        for pattern in 0u32..16 {
            let cells: Vec<SensedCell> = (0..4)
                .map(|i| SensedCell {
                    cell: cell(0, i),
                    stored: pattern >> i & 1 == 1,
                    writes: 0,
                })
                .collect();
            let sensed = sa
                .sense_with_faults(mode, &margin, &cells, &mut state)
                .unwrap();
            assert_eq!(sensed, pattern != 0, "pattern {pattern:04b}");
        }
    }

    #[test]
    fn stuck_at_one_forces_or_result_high() {
        let tech = Technology::pcm();
        let sa = CurrentSenseAmp::new(&tech);
        let mode = SenseMode::or(2).unwrap();
        let margin = sa.margin(mode);
        // Find a cell the model says is stuck at 1.
        let model = FaultModel::with_seed(0xABCD).with_stuck_at(0.0, 0.2);
        let stuck = (0..4096)
            .map(|b| cell(11, b))
            .find(|&c| model.manufactured_stuck(c) == Some(true))
            .expect("a stuck-at-1 cell exists at p = 0.2");
        let healthy = (0..4096)
            .map(|b| cell(11, b))
            .find(|&c| model.manufactured_stuck(c).is_none())
            .expect("a healthy cell exists");
        let mut state = FaultState::new(model);
        let cells = [
            SensedCell {
                cell: stuck,
                stored: false,
                writes: 0,
            },
            SensedCell {
                cell: healthy,
                stored: false,
                writes: 0,
            },
        ];
        let sensed = sa
            .sense_with_faults(mode, &margin, &cells, &mut state)
            .unwrap();
        assert!(sensed, "stuck-at-1 cell must pull the OR high");
    }

    #[test]
    fn write_commit_respects_stuck_cells_and_flips() {
        let tech = Technology::pcm();
        let wd = WriteDriver::new(&tech);
        let model = FaultModel::with_seed(0xABCD).with_stuck_at(0.2, 0.0);
        let stuck = (0..4096)
            .map(|b| cell(5, b))
            .find(|&c| model.manufactured_stuck(c) == Some(false))
            .expect("a stuck-at-0 cell exists at p = 0.2");
        let mut state = FaultState::new(model);
        let driven = wd.drive(WriteSource::SenseAmp, true);
        assert!(!state.commit_write(driven, stuck, 0));

        // Healthy cells with heavy write flips fail sometimes, not always.
        let mut state = FaultState::new(FaultModel::with_seed(3).with_write_flips(0.3));
        let healthy = cell(6, 0);
        let attempts = 2000;
        let failures = (0..attempts)
            .filter(|_| !state.commit_write(wd.drive(WriteSource::Bus, true), healthy, 0))
            .count();
        let rate = failures as f64 / f64::from(attempts);
        assert!((rate - 0.3).abs() < 0.05, "write-flip rate {rate}");
    }

    #[test]
    fn same_seed_same_sense_stream() {
        let tech = Technology::pcm();
        let sa = CurrentSenseAmp::new(&tech);
        let mode = SenseMode::or(8).unwrap();
        let margin = sa.margin(mode);
        let model = FaultModel::with_seed(0x5EED)
            .with_variation(VariationModel::Gaussian)
            .with_transients(1e-3, 1e-3, 1e-3);
        let run = |mut state: FaultState| -> Vec<bool> {
            (0..256)
                .map(|col| {
                    let cells: Vec<SensedCell> = (0..8)
                        .map(|r| SensedCell {
                            cell: cell(r, col),
                            stored: (r + col) % 3 == 0,
                            writes: 0,
                        })
                        .collect();
                    sa.sense_with_faults(mode, &margin, &cells, &mut state)
                        .unwrap()
                })
                .collect()
        };
        assert_eq!(run(FaultState::new(model)), run(FaultState::new(model)));
    }

    #[test]
    fn channel_zero_stream_matches_the_legacy_derivation() {
        let model = FaultModel::with_seed(0x5EED).with_write_flips(0.25);
        let draw = |mut state: FaultState| -> Vec<bool> {
            let tech = Technology::pcm();
            let wd = WriteDriver::new(&tech);
            (0..64)
                .map(|i| state.commit_write(wd.drive(WriteSource::Bus, true), cell(1, i), 0))
                .collect()
        };
        assert_eq!(
            draw(FaultState::new(model)),
            draw(FaultState::for_channel(model, 0)),
            "channel 0 must reproduce the unsharded stream exactly"
        );
        assert_ne!(
            draw(FaultState::for_channel(model, 0)),
            draw(FaultState::for_channel(model, 1)),
            "other channels must draw from independent streams"
        );
        // Streams are a pure function of (seed, channel).
        assert_eq!(
            draw(FaultState::for_channel(model, 3)),
            draw(FaultState::for_channel(model, 3)),
        );
    }

    #[test]
    fn fan_in_mismatch_is_rejected() {
        let tech = Technology::pcm();
        let sa = CurrentSenseAmp::new(&tech);
        let mode = SenseMode::or(4).unwrap();
        let margin = sa.margin(mode);
        let mut state = FaultState::new(FaultModel::none());
        let cells = [SensedCell {
            cell: cell(0, 0),
            stored: true,
            writes: 0,
        }];
        assert!(sa
            .sense_with_faults(mode, &margin, &cells, &mut state)
            .is_err());
    }
}
