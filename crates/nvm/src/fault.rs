//! Deterministic fault injection for the NVM array and its sense path.
//!
//! The margin analysis in [`crate::sense_amp`] and the Monte-Carlo sweep in
//! [`crate::yield_analysis`] both stay *analytic*: the functional simulator
//! above them never actually mis-senses a bit. This module closes that gap
//! with a seedable [`FaultModel`] that perturbs the physical quantities the
//! rest of the crate already models:
//!
//! * **stuck-at cells** — a per-cell manufactured defect probability, plus
//!   endurance wear-out after a per-cell write budget (PCM cells fail
//!   stuck-SET or stuck-RESET once their heater degrades);
//! * **resistance drift** — a deterministic per-cell multiplicative shift
//!   that widens each stored level *toward* the sense reference (the
//!   pessimistic direction for sensing);
//! * **process variation** — the same systematic + residual log-space
//!   split the yield analysis uses, re-drawn on every sense so Gaussian
//!   tails produce data-dependent errors exactly where Fig. 5 predicts;
//! * **transient sense flips** — a per-[`SenseMode`] probability that the
//!   latch resolves the wrong way regardless of the bit-line current;
//! * **write-path flips** — a per-attempt probability that the write
//!   driver fails to program a healthy cell (so program-and-verify retries
//!   genuinely help).
//!
//! **Every draw is a pure function of position.** Per-cell quantities
//! (endurance budgets, wear-out values, drift magnitudes) are hashed from
//! `(seed, cell)`. Per-event quantities (variation factors, transient and
//! write flips) are *counter-keyed*: each physical sense or write on a
//! channel consumes one [`EventKey`] — `(seed, channel, counter)` — and
//! every draw inside the event hashes `(event, column)` through
//! [`unit_hash`]. Nothing is sequential, so a word-packed fast path can
//! *skip-sample* exactly: sparse realizations (which columns flip, which
//! cells are stuck) are generated directly as geometric gap chains
//! ([`FlipColumns`], [`FaultModel::stuck_sites`]) in O(sites) instead of
//! O(columns), and a per-cell reference path walking the same chains in
//! column order reproduces the identical bits. Same seed ⇒ same fault
//! pattern ⇒ same statistics, on every platform, for any execution order.
//!
//! [`FaultModel::none`] disables every mechanism; callers are expected to
//! skip the fault path entirely in that case (see
//! [`FaultModel::is_none`]), keeping the fault-free simulator bit-identical
//! to a build without this module.

use crate::resistance::{parallel, Ohms};
use crate::rng::{hash_u64s, splitmix64, unit_from_u64};
use crate::sense_amp::{CurrentSenseAmp, SenseMargin, SenseMode};
use crate::technology::Technology;
use crate::yield_analysis::{variation_split, VariationModel};

/// Domain-separation salts, so the stuck map, the endurance budgets, the
/// drift magnitudes and each per-event draw family are independent
/// functions of the same seed.
const SALT_STUCK: u64 = 0x5EED_57AC_0000_0001;
const SALT_ENDURANCE: u64 = 0x5EED_E27D_0000_0002;
const SALT_WEAR_VALUE: u64 = 0x5EED_3EA2_0000_0003;
const SALT_DRIFT: u64 = 0x5EED_D21F_0000_0004;
const SALT_STUCK_VALUE: u64 = 0x5EED_57A1_0000_0005;
const SALT_TRANSIENT: u64 = 0x5EED_F11B_0000_0006;
const SALT_WRITE_FLIP: u64 = 0x5EED_3F1B_0000_0007;
const SALT_VAR_GLOBAL_A: u64 = 0x5EED_6A0B_0000_0008;
const SALT_VAR_GLOBAL_B: u64 = 0x5EED_6A0B_0000_0009;
const SALT_VAR_RES_A: u64 = 0x5EED_2E51_0000_000A;
const SALT_VAR_RES_B: u64 = 0x5EED_2E51_0000_000B;

/// The uniform `[0, 1)` draw for `column` inside one counter-keyed event:
/// a pure function of `(seed, channel, counter, column, salt)`. This is
/// the primitive every per-event stochastic quantity reduces to — because
/// no draw depends on any other draw, a fast path may evaluate any subset
/// of columns, in any order, and still agree bit-for-bit with a reference
/// that evaluates all of them.
#[must_use]
pub fn unit_hash(seed: u64, channel: u32, counter: u64, column: u64, salt: u64) -> f64 {
    unit_from_u64(hash_u64s(
        seed ^ salt,
        &[u64::from(channel), counter, column],
    ))
}

/// The largest |g| producible by [`gaussian_from_units`]: `u1` is at least
/// 2⁻⁵³, so `|g| ≤ √(−2 ln 2⁻⁵³) = √(106 ln 2) ≈ 8.57`. Class-interval
/// bounds in the packed sense path rely on this being a hard bound.
#[must_use]
pub fn max_abs_gaussian() -> f64 {
    (106.0 * std::f64::consts::LN_2).sqrt()
}

/// Box–Muller from two uniform units: `unit1 ∈ [0, 1)` is reflected to
/// `u1 = 1 − unit1 ∈ (0, 1]` so the log never sees zero, bounding the
/// output by [`max_abs_gaussian`].
fn gaussian_from_units(unit1: f64, u2: f64) -> f64 {
    let u1 = 1.0 - unit1;
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Identifies one physical cell: a linear row index and a bit position.
///
/// The memory controller derives `row_key` from the full
/// channel/rank/bank/subarray/row coordinate, so the same logical data
/// stored on different rows sees a different (but still deterministic)
/// fault pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CellId {
    /// Linear row index within the device.
    pub row_key: u64,
    /// Bit position within the row.
    pub bit: u64,
}

impl CellId {
    /// Builds a cell identity.
    #[must_use]
    pub fn new(row_key: u64, bit: u64) -> Self {
        CellId { row_key, bit }
    }
}

/// Whether a cell can still be programmed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellHealth {
    /// Programs and senses normally (up to stochastic effects).
    Healthy,
    /// Holds this value regardless of what is written.
    StuckAt(bool),
}

/// Endurance wear-out: cells die after a budget of charged writes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnduranceModel {
    /// Mean per-cell write budget.
    pub mean_writes: u64,
    /// Relative half-width of the uniform budget spread, in `[0, 1)`:
    /// budgets are drawn per cell from
    /// `mean · [1 − spread, 1 + spread]`.
    pub spread: f64,
}

/// A deterministic, seedable fault model for the cell array.
///
/// All probabilities are per cell (stuck-at, endurance) or per sense /
/// write attempt (variation, transients, write flips). The default is
/// [`FaultModel::none`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultModel {
    /// Root seed for the per-cell hashes and the counter-keyed events.
    pub seed: u64,
    /// Manufactured stuck-at-0 probability per cell.
    pub stuck_at_zero: f64,
    /// Manufactured stuck-at-1 probability per cell.
    pub stuck_at_one: f64,
    /// Maximum deterministic per-cell resistance shift toward the sense
    /// reference, as a relative factor (0.05 = up to 5%). Each cell's
    /// actual shift is hashed uniformly from `[0, drift_spread]`.
    pub drift_spread: f64,
    /// Stochastic process variation re-drawn on every sense, using the
    /// yield analysis' systematic + residual split. `None` disables it.
    pub variation: Option<VariationModel>,
    /// Endurance wear-out; `None` means cells never wear out.
    pub endurance: Option<EnduranceModel>,
    /// Transient sense-flip probability in READ mode.
    pub transient_read_flip: f64,
    /// Transient sense-flip probability for a 2-row OR; wider ORs scale it
    /// linearly with fan-in (weaker margin ⇒ a noisier latch decision),
    /// clamped to 0.5.
    pub transient_or_flip: f64,
    /// Transient sense-flip probability in AND mode.
    pub transient_and_flip: f64,
    /// Probability that one write attempt fails to program a healthy cell.
    pub write_flip: f64,
}

impl FaultModel {
    /// The fault-free model: every mechanism disabled.
    #[must_use]
    pub fn none() -> Self {
        FaultModel {
            seed: 0,
            stuck_at_zero: 0.0,
            stuck_at_one: 0.0,
            drift_spread: 0.0,
            variation: None,
            endurance: None,
            transient_read_flip: 0.0,
            transient_or_flip: 0.0,
            transient_and_flip: 0.0,
            write_flip: 0.0,
        }
    }

    /// A fault-free model carrying a seed, as a builder starting point.
    #[must_use]
    pub fn with_seed(seed: u64) -> Self {
        FaultModel {
            seed,
            ..FaultModel::none()
        }
    }

    /// Adds manufactured stuck-at defects.
    #[must_use]
    pub fn with_stuck_at(mut self, p_stuck_zero: f64, p_stuck_one: f64) -> Self {
        self.stuck_at_zero = p_stuck_zero;
        self.stuck_at_one = p_stuck_one;
        self
    }

    /// Adds deterministic per-cell drift toward the reference.
    #[must_use]
    pub fn with_drift(mut self, spread: f64) -> Self {
        self.drift_spread = spread;
        self
    }

    /// Adds per-sense stochastic process variation.
    #[must_use]
    pub fn with_variation(mut self, model: VariationModel) -> Self {
        self.variation = Some(model);
        self
    }

    /// Adds endurance wear-out.
    #[must_use]
    pub fn with_endurance(mut self, mean_writes: u64, spread: f64) -> Self {
        self.endurance = Some(EnduranceModel {
            mean_writes,
            spread,
        });
        self
    }

    /// Adds transient sense flips (READ / 2-row OR / AND probabilities).
    #[must_use]
    pub fn with_transients(mut self, read: f64, or2: f64, and2: f64) -> Self {
        self.transient_read_flip = read;
        self.transient_or_flip = or2;
        self.transient_and_flip = and2;
        self
    }

    /// Adds write-attempt failures on healthy cells.
    #[must_use]
    pub fn with_write_flips(mut self, p: f64) -> Self {
        self.write_flip = p;
        self
    }

    /// `true` when every mechanism is disabled — callers then skip the
    /// fault path entirely, guaranteeing bit-identical behavior to a
    /// simulator without fault injection.
    #[must_use]
    pub fn is_none(&self) -> bool {
        self.stuck_at_zero <= 0.0
            && self.stuck_at_one <= 0.0
            && self.drift_spread <= 0.0
            && self.variation.is_none()
            && self.endurance.is_none()
            && self.transient_read_flip <= 0.0
            && self.transient_or_flip <= 0.0
            && self.transient_and_flip <= 0.0
            && self.write_flip <= 0.0
    }

    /// The transient latch-flip probability for one sense under `mode`.
    #[must_use]
    pub fn transient_flip_probability(&self, mode: SenseMode) -> f64 {
        match mode {
            SenseMode::Read => self.transient_read_flip,
            SenseMode::Or { fan_in } => (self.transient_or_flip * fan_in as f64 / 2.0).min(0.5),
            SenseMode::And => self.transient_and_flip,
        }
    }

    /// A uniform `[0, 1)` hash of `(seed, cell, salt)` — stable for the
    /// whole run, independent across salts.
    fn cell_unit(&self, cell: CellId, salt: u64) -> f64 {
        let mut s = self.seed ^ salt;
        let a = splitmix64(&mut s);
        s ^= cell.row_key.wrapping_add(a);
        let b = splitmix64(&mut s);
        s ^= cell.bit.wrapping_add(b);
        (splitmix64(&mut s) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// The manufactured stuck cells of one row, as a generative geometric
    /// chain: bit positions ascend by gaps drawn geometric with parameter
    /// `p0 + p1`, each site's stuck value drawn by its share — exactly a
    /// per-cell Bernoulli realization, materialized in O(sites) instead of
    /// O(columns). The iterator is unbounded; callers clip with
    /// `take_while` on the bit position.
    #[must_use]
    pub fn stuck_sites(&self, row_key: u64) -> StuckSites {
        let p0 = self.stuck_at_zero.max(0.0);
        let p1 = self.stuck_at_one.max(0.0);
        let p = (p0 + p1).min(1.0);
        StuckSites {
            seed: self.seed,
            row_key,
            zero_share: if p > 0.0 { p0 / (p0 + p1) } else { 0.0 },
            log_q: (-p).ln_1p(),
            next_pos: 0,
            step: 0,
            exhausted: p <= 0.0,
        }
    }

    /// The manufactured stuck-at value of `cell`, if any — a point query
    /// into the same chain [`FaultModel::stuck_sites`] generates, walked
    /// until it reaches or passes the cell.
    #[must_use]
    pub fn manufactured_stuck(&self, cell: CellId) -> Option<bool> {
        for (bit, value) in self.stuck_sites(cell.row_key) {
            if bit >= cell.bit {
                return (bit == cell.bit).then_some(value);
            }
        }
        None
    }

    /// The per-cell write budget before endurance failure, if endurance is
    /// modeled.
    #[must_use]
    pub fn endurance_budget(&self, cell: CellId) -> Option<u64> {
        self.endurance.map(|e| {
            let u = self.cell_unit(cell, SALT_ENDURANCE);
            let lo = e.mean_writes as f64 * (1.0 - e.spread);
            let hi = e.mean_writes as f64 * (1.0 + e.spread);
            (lo + u * (hi - lo)).max(1.0) as u64
        })
    }

    /// A floor under every cell's endurance budget: while a row's charged
    /// writes stay at or below this, no cell can have worn out and the
    /// endurance scan is skipped entirely. `u64::MAX` when endurance is
    /// off.
    #[must_use]
    pub fn min_endurance_budget(&self) -> u64 {
        match self.endurance {
            Some(e) => (e.mean_writes as f64 * (1.0 - e.spread)).max(1.0) as u64,
            None => u64::MAX,
        }
    }

    /// The health of `cell` after `writes` charged writes: manufactured
    /// defects first, then endurance wear-out (worn cells latch a
    /// hash-chosen stuck value — a degraded PCM heater can fail either
    /// stuck-SET or stuck-RESET).
    #[must_use]
    pub fn cell_health(&self, cell: CellId, writes: u64) -> CellHealth {
        if let Some(v) = self.manufactured_stuck(cell) {
            return CellHealth::StuckAt(v);
        }
        if let Some(budget) = self.endurance_budget(cell) {
            if writes > budget {
                return CellHealth::StuckAt(self.cell_unit(cell, SALT_WEAR_VALUE) < 0.5);
            }
        }
        CellHealth::Healthy
    }

    /// Every fault site of one row after `writes` charged writes: the
    /// manufactured stuck chain merged with the endurance-dead cells, as
    /// ascending `(bit, held value)` pairs over the first `cols` columns.
    /// Agrees with [`FaultModel::cell_health`] at every cell (manufactured
    /// defects take precedence over wear-out, exactly as there). The
    /// endurance scan is O(cols) hashes but only runs once `writes`
    /// exceeds [`FaultModel::min_endurance_budget`]; callers cache the
    /// result per `(row, writes)`.
    #[must_use]
    pub fn row_fault_sites(&self, row_key: u64, writes: u64, cols: u64) -> Vec<(u64, bool)> {
        let stuck: Vec<(u64, bool)> = self
            .stuck_sites(row_key)
            .take_while(|&(bit, _)| bit < cols)
            .collect();
        if writes <= self.min_endurance_budget() {
            return stuck;
        }
        let mut sites = Vec::with_capacity(stuck.len());
        let mut manufactured = stuck.into_iter().peekable();
        for bit in 0..cols {
            if let Some(site) = manufactured.next_if(|&(b, _)| b == bit) {
                sites.push(site);
                continue;
            }
            let cell = CellId::new(row_key, bit);
            let budget = self
                .endurance_budget(cell)
                .expect("the scan only runs with endurance modeled");
            if writes > budget {
                sites.push((bit, self.cell_unit(cell, SALT_WEAR_VALUE) < 0.5));
            }
        }
        sites
    }

    /// The deterministic drift factor applied to `cell`'s resistance when
    /// it stores `stored`: stored '1' (low resistance) drifts *up*, stored
    /// '0' (high resistance) drifts *down* — both toward the reference,
    /// the pessimistic direction for sensing.
    #[must_use]
    pub fn drift_factor(&self, cell: CellId, stored: bool) -> f64 {
        if self.drift_spread <= 0.0 {
            return 1.0;
        }
        let magnitude = self.cell_unit(cell, SALT_DRIFT) * self.drift_spread;
        if stored {
            1.0 + magnitude
        } else {
            1.0 / (1.0 + magnitude)
        }
    }

    /// The event-wide systematic variation factor (1.0 when variation is
    /// off) — one draw per sense, keyed on the event alone.
    #[must_use]
    pub fn event_global(&self, tech: &Technology, event: &EventKey) -> f64 {
        let Some(model) = self.variation else {
            return 1.0;
        };
        let (v_sys, _) = variation_split(tech);
        match model {
            VariationModel::BoundedUniform => {
                let (lo, hi) = (1.0 - v_sys, 1.0 + v_sys);
                lo + event.unit(0, SALT_VAR_GLOBAL_A) * (hi - lo)
            }
            VariationModel::Gaussian => {
                let sigma = (1.0 + v_sys).ln() / 3.0;
                (sigma
                    * gaussian_from_units(
                        event.unit(0, SALT_VAR_GLOBAL_A),
                        event.unit(0, SALT_VAR_GLOBAL_B),
                    ))
                .exp()
            }
        }
    }

    /// The per-cell residual variation factor for `(row, column)` inside
    /// one event (1.0 when variation is off).
    #[must_use]
    pub fn residual_factor(
        &self,
        tech: &Technology,
        event: &EventKey,
        row_key: u64,
        column: u64,
    ) -> f64 {
        let Some(model) = self.variation else {
            return 1.0;
        };
        let (_, v_res) = variation_split(tech);
        match model {
            VariationModel::BoundedUniform => {
                let (lo, hi) = (1.0 - v_res, 1.0 + v_res);
                lo + event.cell_unit(row_key, column, SALT_VAR_RES_A) * (hi - lo)
            }
            VariationModel::Gaussian => {
                let sigma = (1.0 + v_res).ln() / 3.0;
                (sigma
                    * gaussian_from_units(
                        event.cell_unit(row_key, column, SALT_VAR_RES_A),
                        event.cell_unit(row_key, column, SALT_VAR_RES_B),
                    ))
                .exp()
            }
        }
    }

    /// Hard bounds on [`FaultModel::residual_factor`]: `(min, max)` over
    /// every possible draw. Uniform residuals are bounded by construction;
    /// Gaussian residuals inherit the [`max_abs_gaussian`] bound of the
    /// unit-reflected Box–Muller. Used by the packed sense path to decide
    /// which ones-count classes could possibly straddle the reference.
    #[must_use]
    pub fn residual_bounds(&self, tech: &Technology) -> (f64, f64) {
        let Some(model) = self.variation else {
            return (1.0, 1.0);
        };
        let (_, v_res) = variation_split(tech);
        match model {
            VariationModel::BoundedUniform => (1.0 - v_res, 1.0 + v_res),
            VariationModel::Gaussian => {
                let m = (1.0 + v_res).ln() / 3.0 * max_abs_gaussian();
                ((-m).exp(), m.exp())
            }
        }
    }
}

impl Default for FaultModel {
    fn default() -> Self {
        FaultModel::none()
    }
}

/// The manufactured stuck-cell chain of one row — see
/// [`FaultModel::stuck_sites`]. Yields ascending `(bit, stuck value)`
/// pairs.
#[derive(Debug, Clone)]
pub struct StuckSites {
    seed: u64,
    row_key: u64,
    zero_share: f64,
    log_q: f64,
    next_pos: u64,
    step: u64,
    exhausted: bool,
}

impl Iterator for StuckSites {
    type Item = (u64, bool);

    fn next(&mut self) -> Option<(u64, bool)> {
        if self.exhausted {
            return None;
        }
        let gap_unit = unit_from_u64(hash_u64s(
            self.seed ^ SALT_STUCK,
            &[self.row_key, self.step],
        ));
        let value_unit = unit_from_u64(hash_u64s(
            self.seed ^ SALT_STUCK_VALUE,
            &[self.row_key, self.step],
        ));
        self.step += 1;
        let gap = ((-gap_unit).ln_1p() / self.log_q).floor();
        let pos = self.next_pos.saturating_add(gap as u64);
        if pos == u64::MAX {
            self.exhausted = true;
            return None;
        }
        self.next_pos = pos + 1;
        Some((pos, value_unit >= self.zero_share))
    }
}

/// One counter-keyed fault event: a physical sense or write on one
/// channel. All stochastic draws inside the event are pure functions of
/// this key plus a position — see [`unit_hash`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventKey {
    seed: u64,
    channel: u32,
    counter: u64,
}

impl EventKey {
    /// The uniform `[0, 1)` draw for `column` under `salt`.
    #[must_use]
    pub fn unit(&self, column: u64, salt: u64) -> f64 {
        unit_hash(self.seed, self.channel, self.counter, column, salt)
    }

    /// A per-cell draw: like [`EventKey::unit`] but additionally keyed on
    /// the row, for quantities that must differ between cells of the same
    /// column (the residual variation factors).
    fn cell_unit(&self, row_key: u64, column: u64, salt: u64) -> f64 {
        unit_from_u64(hash_u64s(
            self.seed ^ salt,
            &[u64::from(self.channel), self.counter, row_key, column],
        ))
    }

    /// The transient latch flips of this sense event: an exact
    /// Bernoulli(`p`)-per-column realization, enumerated sparsely.
    #[must_use]
    pub fn transient_flips(&self, p: f64, cols: u64) -> FlipColumns {
        FlipColumns::new(*self, SALT_TRANSIENT, p, cols)
    }

    /// The programming failures of this write event on healthy cells.
    #[must_use]
    pub fn write_flips(&self, p: f64, cols: u64) -> FlipColumns {
        FlipColumns::new(*self, SALT_WRITE_FLIP, p, cols)
    }
}

/// An exact per-column Bernoulli(`p`) realization over `[0, cols)`,
/// enumerated as ascending flip positions via geometric gap chains: gap
/// `⌊ln(1−u) / ln(1−p)⌋` with each `u` hashed from `(event, step, salt)`.
/// Expected cost O(p · cols) — the fast path iterates only the flips, and
/// the per-cell reference path walks the same positions in column
/// lockstep, so both see the identical flip set.
#[derive(Debug, Clone)]
pub struct FlipColumns {
    event: EventKey,
    salt: u64,
    log_q: f64,
    cols: u64,
    next_pos: u64,
    step: u64,
    exhausted: bool,
}

impl FlipColumns {
    fn new(event: EventKey, salt: u64, p: f64, cols: u64) -> Self {
        let p = p.min(1.0);
        FlipColumns {
            event,
            salt,
            log_q: (-p).ln_1p(),
            cols,
            next_pos: 0,
            step: 0,
            exhausted: p <= 0.0 || cols == 0,
        }
    }
}

impl Iterator for FlipColumns {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        if self.exhausted {
            return None;
        }
        let u = self.event.unit(self.step, self.salt);
        self.step += 1;
        let gap = ((-u).ln_1p() / self.log_q).floor();
        let pos = self.next_pos.saturating_add(gap as u64);
        if pos >= self.cols {
            self.exhausted = true;
            return None;
        }
        self.next_pos = pos + 1;
        Some(pos)
    }
}

/// Per-channel fault-injection state: the model plus the event counter.
///
/// One counter ticks per physical sense *and* per physical write on the
/// channel, so the draws an event sees are a pure function of `(seed,
/// channel, how many events preceded it on this channel)` — independent
/// of worker threads, shard interleaving, or which path (packed or
/// reference) evaluates the event.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultState {
    model: FaultModel,
    channel: u32,
    counter: u64,
}

impl FaultState {
    /// Initializes the state for channel 0.
    #[must_use]
    pub fn new(model: FaultModel) -> Self {
        FaultState::for_channel(model, 0)
    }

    /// Initializes the state for one channel. Every channel's events are
    /// keyed `(seed, channel, counter)`, so shards prime their streams
    /// with nothing but the channel index — no derived seeds, no special
    /// cases.
    #[must_use]
    pub fn for_channel(model: FaultModel, channel: u32) -> Self {
        FaultState {
            model,
            channel,
            counter: 0,
        }
    }

    /// The model being injected.
    #[must_use]
    pub fn model(&self) -> &FaultModel {
        &self.model
    }

    /// The channel this state draws for.
    #[must_use]
    pub fn channel(&self) -> u32 {
        self.channel
    }

    /// How many events this channel has consumed.
    #[must_use]
    pub fn events_drawn(&self) -> u64 {
        self.counter
    }

    /// Claims the next event on this channel (one per physical sense or
    /// write).
    pub fn next_event(&mut self) -> EventKey {
        let key = EventKey {
            seed: self.model.seed,
            channel: self.channel,
            counter: self.counter,
        };
        self.counter += 1;
        key
    }
}

impl CurrentSenseAmp {
    /// Physically senses one column: each cell's nominal resistance is
    /// scaled by its deterministic drift, the event's systematic variation
    /// factor and its per-cell residual, then the parallel combination is
    /// compared against the margin reference. `cells` carries `(row_key,
    /// effective bit)` pairs in operand order — stuck and endurance
    /// overrides are resolved by the caller — and `global` must be
    /// `model.event_global(...)` for this event.
    ///
    /// Transient latch flips are *not* applied here; both the packed and
    /// the reference path XOR the event's [`EventKey::transient_flips`]
    /// chain on top. This function is the single evaluation both paths
    /// share, which is what makes them bit-identical: `parallel` sums
    /// reciprocals in iteration order, so even the floating-point rounding
    /// agrees.
    #[must_use]
    pub fn sense_column_physical(
        &self,
        margin: &SenseMargin,
        model: &FaultModel,
        event: &EventKey,
        global: f64,
        cells: &[(u64, bool)],
        column: u64,
    ) -> bool {
        let tech = self.technology();
        let bitline = parallel(cells.iter().map(|&(row_key, effective)| {
            let r = tech.cell_resistance(effective).get()
                * model.drift_factor(CellId::new(row_key, column), effective)
                * global
                * model.residual_factor(tech, event, row_key, column);
            Ohms::new(r)
        }));
        bitline < margin.reference()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(row: u64, bit: u64) -> CellId {
        CellId::new(row, bit)
    }

    #[test]
    fn none_is_none_and_default() {
        assert!(FaultModel::none().is_none());
        assert!(FaultModel::default().is_none());
        assert!(!FaultModel::with_seed(1).with_stuck_at(1e-3, 0.0).is_none());
        assert!(!FaultModel::with_seed(1)
            .with_variation(VariationModel::Gaussian)
            .is_none());
    }

    #[test]
    fn stuck_map_is_deterministic_and_tracks_probability() {
        let model = FaultModel::with_seed(0xC0FFEE).with_stuck_at(0.05, 0.05);
        let n = 20_000u64;
        let mut stuck0 = 0u64;
        let mut stuck1 = 0u64;
        for i in 0..n {
            match model.manufactured_stuck(cell(i / 64, i % 64)) {
                Some(false) => stuck0 += 1,
                Some(true) => stuck1 += 1,
                None => {}
            }
            // Stable across repeated queries.
            assert_eq!(
                model.manufactured_stuck(cell(i / 64, i % 64)),
                model.manufactured_stuck(cell(i / 64, i % 64))
            );
        }
        let rate0 = stuck0 as f64 / n as f64;
        let rate1 = stuck1 as f64 / n as f64;
        assert!((rate0 - 0.05).abs() < 0.01, "stuck-at-0 rate {rate0}");
        assert!((rate1 - 0.05).abs() < 0.01, "stuck-at-1 rate {rate1}");
    }

    #[test]
    fn stuck_chain_matches_point_queries() {
        let model = FaultModel::with_seed(0xFACE).with_stuck_at(0.03, 0.01);
        let cols = 4096u64;
        let from_chain: Vec<(u64, bool)> = model
            .stuck_sites(9)
            .take_while(|&(bit, _)| bit < cols)
            .collect();
        let from_queries: Vec<(u64, bool)> = (0..cols)
            .filter_map(|b| model.manufactured_stuck(cell(9, b)).map(|v| (b, v)))
            .collect();
        assert!(!from_chain.is_empty(), "p = 0.04 over 4096 cells");
        assert_eq!(from_chain, from_queries);
    }

    #[test]
    fn endurance_kills_cells_past_budget() {
        let model = FaultModel::with_seed(7).with_endurance(100, 0.2);
        let c = cell(3, 17);
        let budget = model.endurance_budget(c).expect("endurance modeled");
        assert!((80..=120).contains(&budget), "budget {budget}");
        assert_eq!(model.cell_health(c, budget), CellHealth::Healthy);
        assert!(matches!(
            model.cell_health(c, budget + 1),
            CellHealth::StuckAt(_)
        ));
        assert!(model.min_endurance_budget() <= budget);
        assert_eq!(FaultModel::none().min_endurance_budget(), u64::MAX);
    }

    #[test]
    fn row_fault_sites_agree_with_cell_health() {
        let model = FaultModel::with_seed(0xD00D)
            .with_stuck_at(0.02, 0.02)
            .with_endurance(10, 0.5);
        let cols = 512u64;
        for writes in [0u64, 4, 20] {
            let sites = model.row_fault_sites(77, writes, cols);
            let mut cursor = sites.iter().copied().peekable();
            for bit in 0..cols {
                let listed = cursor.next_if(|&(b, _)| b == bit).map(|(_, v)| v);
                let health = model.cell_health(cell(77, bit), writes);
                match health {
                    CellHealth::StuckAt(v) => {
                        assert_eq!(listed, Some(v), "writes {writes} bit {bit}")
                    }
                    CellHealth::Healthy => assert_eq!(listed, None, "writes {writes} bit {bit}"),
                }
            }
            assert!(cursor.peek().is_none(), "no sites past cols");
        }
    }

    #[test]
    fn drift_moves_both_levels_toward_the_reference() {
        let model = FaultModel::with_seed(9).with_drift(0.10);
        let c = cell(0, 0);
        let up = model.drift_factor(c, true);
        let down = model.drift_factor(c, false);
        assert!((1.0..=1.10).contains(&up), "low-R drift {up}");
        assert!((1.0 / 1.10..=1.0).contains(&down), "high-R drift {down}");
        // Deterministic.
        assert_eq!(up, model.drift_factor(c, true));
    }

    #[test]
    fn or_transients_scale_with_fan_in() {
        let model = FaultModel::with_seed(1).with_transients(1e-4, 1e-3, 2e-4);
        assert_eq!(model.transient_flip_probability(SenseMode::Read), 1e-4);
        assert_eq!(
            model.transient_flip_probability(SenseMode::or(2).unwrap()),
            1e-3
        );
        assert_eq!(
            model.transient_flip_probability(SenseMode::or(8).unwrap()),
            4e-3
        );
        assert_eq!(model.transient_flip_probability(SenseMode::And), 2e-4);
    }

    #[test]
    fn flip_chain_is_an_exact_bernoulli_realization() {
        let mut state = FaultState::for_channel(FaultModel::with_seed(0xF1), 2);
        let event = state.next_event();
        let cols = 40_000u64;
        let flips: Vec<u64> = event.transient_flips(0.3, cols).collect();
        // Ascending, in range, deterministic.
        assert!(flips.windows(2).all(|w| w[0] < w[1]));
        assert!(flips.iter().all(|&f| f < cols));
        assert_eq!(flips, event.transient_flips(0.3, cols).collect::<Vec<_>>());
        let rate = flips.len() as f64 / cols as f64;
        assert!((rate - 0.3).abs() < 0.02, "flip rate {rate}");
        // Degenerate probabilities.
        assert_eq!(event.transient_flips(0.0, cols).count(), 0);
        assert_eq!(event.write_flips(1.0, 100).count(), 100);
        // Independent families: write flips differ from transient flips.
        assert_ne!(
            event.write_flips(0.3, cols).collect::<Vec<_>>(),
            event.transient_flips(0.3, cols).collect::<Vec<_>>()
        );
    }

    #[test]
    fn events_are_pure_functions_of_seed_channel_and_counter() {
        let model = FaultModel::with_seed(0x5EED).with_write_flips(0.25);
        let draw = |channel: u32, skip: u64| -> Vec<u64> {
            let mut state = FaultState::for_channel(model, channel);
            for _ in 0..skip {
                let _ = state.next_event();
            }
            state.next_event().write_flips(0.25, 4096).collect()
        };
        // The third event's draws do not depend on whether earlier events
        // were consumed one state or another — only on the counter.
        assert_eq!(draw(0, 2), draw(0, 2));
        assert_ne!(draw(0, 2), draw(0, 3), "counter must matter");
        assert_ne!(draw(0, 2), draw(1, 2), "channel must matter");
        // Channel 0 is nothing special anymore: new == for_channel(0).
        let mut a = FaultState::new(model);
        let mut b = FaultState::for_channel(model, 0);
        assert_eq!(a.next_event(), b.next_event());
        assert_eq!(a.events_drawn(), 1);
    }

    #[test]
    fn faultless_sense_matches_logical_or() {
        let tech = Technology::pcm();
        let sa = CurrentSenseAmp::new(&tech);
        let mode = SenseMode::or(4).unwrap();
        let margin = sa.margin(mode);
        let model = FaultModel::none();
        let mut state = FaultState::new(model);
        let event = state.next_event();
        let global = model.event_global(&tech, &event);
        for pattern in 0u32..16 {
            let cells: Vec<(u64, bool)> = (0..4).map(|i| (i, pattern >> i & 1 == 1)).collect();
            let sensed = sa.sense_column_physical(&margin, &model, &event, global, &cells, 0);
            assert_eq!(sensed, pattern != 0, "pattern {pattern:04b}");
        }
    }

    #[test]
    fn stuck_at_one_forces_or_result_high() {
        let tech = Technology::pcm();
        let sa = CurrentSenseAmp::new(&tech);
        let mode = SenseMode::or(2).unwrap();
        let margin = sa.margin(mode);
        // Find a cell the model says is stuck at 1.
        let model = FaultModel::with_seed(0xABCD).with_stuck_at(0.0, 0.2);
        let stuck = (0..4096)
            .map(|b| cell(11, b))
            .find(|&c| model.manufactured_stuck(c) == Some(true))
            .expect("a stuck-at-1 cell exists at p = 0.2");
        let mut state = FaultState::new(model);
        let event = state.next_event();
        let global = model.event_global(&tech, &event);
        // Both rows store 0, but the stuck cell's *effective* value is 1:
        // the caller resolves health and hands the evaluator effective bits.
        let effective = match model.cell_health(stuck, 0) {
            CellHealth::StuckAt(v) => v,
            CellHealth::Healthy => false,
        };
        let cells = [(stuck.row_key, effective), (12u64, false)];
        assert!(
            sa.sense_column_physical(&margin, &model, &event, global, &cells, stuck.bit),
            "stuck-at-1 cell must pull the OR high"
        );
    }

    #[test]
    fn residual_factors_respect_their_bounds() {
        let tech = Technology::pcm();
        for variation in [VariationModel::BoundedUniform, VariationModel::Gaussian] {
            let model = FaultModel::with_seed(0xBEEF).with_variation(variation);
            let (lo, hi) = model.residual_bounds(&tech);
            assert!(lo > 0.0 && lo < 1.0 && hi > 1.0, "bounds ({lo}, {hi})");
            let mut state = FaultState::new(model);
            for _ in 0..64 {
                let event = state.next_event();
                for col in 0..32 {
                    let f = model.residual_factor(&tech, &event, 3, col);
                    assert!((lo..=hi).contains(&f), "{variation:?}: {f} ∉ [{lo}, {hi}]");
                }
                let g = model.event_global(&tech, &event);
                assert!(g > 0.0, "global factor must stay positive");
            }
        }
        // Variation off: both factors are exactly 1.
        let off = FaultModel::with_seed(1);
        let mut state = FaultState::new(off);
        let event = state.next_event();
        assert_eq!(off.event_global(&tech, &event), 1.0);
        assert_eq!(off.residual_factor(&tech, &event, 0, 0), 1.0);
        assert_eq!(off.residual_bounds(&tech), (1.0, 1.0));
    }

    #[test]
    fn gaussian_from_units_is_bounded() {
        let bound = max_abs_gaussian();
        assert!((8.5..8.7).contains(&bound), "bound {bound}");
        // The extreme unit (largest representable below 1) stays within
        // the bound up to rounding the classify pad absorbs.
        let extreme = gaussian_from_units(1.0 - (0.5f64).powi(53), 0.5);
        assert!(extreme.abs() <= bound * (1.0 + 1e-12), "extreme {extreme}");
        assert_eq!(gaussian_from_units(0.0, 0.25).abs(), 0.0, "u1 = 1 ⇒ g = 0");
    }
}
