//! A single 1T1R resistive memory cell.
//!
//! The cell is deliberately tiny: one stored bit plus helpers that map the
//! bit to a resistance under a given [`Technology`]. The array layer
//! (`pinatubo-mem`) stores bits in packed words for speed and only drops
//! down to `Cell` where circuit behaviour matters (sense-margin Monte-Carlo
//! tests, SA validation).

use crate::resistance::{Ohms, ResistanceInterval};
use crate::rng::SimRng;
use crate::technology::Technology;

/// One resistive memory cell holding a single bit.
///
/// Logic "1" is the low-resistance (SET) state, logic "0" the
/// high-resistance (RESET) state — the encoding Pinatubo's multi-row OR
/// depends on (paper §4.2).
///
/// # Example
///
/// ```
/// use pinatubo_nvm::cell::Cell;
/// use pinatubo_nvm::technology::Technology;
///
/// let tech = Technology::pcm();
/// let mut cell = Cell::new(false);
/// cell.write(true);
/// assert_eq!(cell.bit(), true);
/// assert_eq!(cell.resistance(&tech), tech.r_low());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Cell {
    bit: bool,
}

impl Cell {
    /// Creates a cell holding `bit`.
    #[must_use]
    pub fn new(bit: bool) -> Self {
        Cell { bit }
    }

    /// The stored bit.
    #[must_use]
    pub fn bit(self) -> bool {
        self.bit
    }

    /// Writes a new bit (SET for `true`, RESET for `false`).
    pub fn write(&mut self, bit: bool) {
        self.bit = bit;
    }

    /// Nominal resistance of the cell under `tech`.
    #[must_use]
    pub fn resistance(self, tech: &Technology) -> Ohms {
        tech.cell_resistance(self.bit)
    }

    /// Worst-case resistance interval of the cell under `tech`.
    #[must_use]
    pub fn resistance_interval(self, tech: &Technology) -> ResistanceInterval {
        tech.cell_interval(self.bit)
    }

    /// Samples a concrete resistance inside the worst-case variation
    /// interval, for Monte-Carlo validation of the sense margins.
    ///
    /// The sample is uniform over the interval: the margin analysis promises
    /// correct sensing for *any* resistance in the interval, so a uniform
    /// draw stresses the bounds harder than a bell-shaped one would.
    #[must_use]
    pub fn resistance_sampled(self, tech: &Technology, rng: &mut SimRng) -> Ohms {
        let iv = self.resistance_interval(tech);
        Ohms::new(rng.gen_range_f64(iv.lo().get(), iv.hi().get()))
    }
}

impl From<bool> for Cell {
    fn from(bit: bool) -> Cell {
        Cell::new(bit)
    }
}

impl From<Cell> for bool {
    fn from(cell: Cell) -> bool {
        cell.bit()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_cell_is_reset() {
        assert!(!Cell::default().bit());
    }

    #[test]
    fn write_flips_state_and_resistance() {
        let tech = Technology::reram();
        let mut c = Cell::new(false);
        assert_eq!(c.resistance(&tech), tech.r_high());
        c.write(true);
        assert_eq!(c.resistance(&tech), tech.r_low());
    }

    #[test]
    fn sampled_resistance_stays_in_interval() {
        let tech = Technology::pcm();
        let mut rng = SimRng::seed_from_u64(7);
        for bit in [false, true] {
            let cell = Cell::new(bit);
            let iv = cell.resistance_interval(&tech);
            for _ in 0..1000 {
                let r = cell.resistance_sampled(&tech, &mut rng);
                assert!(iv.lo() <= r && r <= iv.hi());
            }
        }
    }

    #[test]
    fn bool_conversions_round_trip() {
        assert!(bool::from(Cell::from(true)));
        assert!(!bool::from(Cell::from(false)));
    }
}
