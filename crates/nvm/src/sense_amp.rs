//! The modified current sense amplifier (CSA) — the heart of Pinatubo.
//!
//! A normal NVM read compares the bit-line resistance against a single
//! reference between `R_low` and `R_high`. Pinatubo adds *more reference
//! circuits* so the same SA can classify the parallel resistance of several
//! simultaneously open cells (paper Fig. 5, Fig. 6):
//!
//! * **OR over n rows** — reference between `R_low ‖ R_high/(n−1)` (the
//!   highest-resistance "at least one 1" case) and `R_high/n` (all zeros).
//! * **AND over 2 rows** — reference between `R_low/2` (both ones) and
//!   `R_low ‖ R_high` (one one). Beyond two rows the "all ones" and
//!   "one zero" cases are not separable on any resistive technology
//!   (paper footnote 3), and [`SenseMode::and`] refuses them.
//! * **XOR / INV** — two micro-steps using the added capacitor `Ch` and the
//!   latch's differential output; modelled by [`XorUnit`] and
//!   [`CurrentSenseAmp::invert`].
//!
//! The margin analysis in [`CurrentSenseAmp::margin`] is the reproduction of
//! the paper's HSPICE validation: instead of transistor waveforms it checks,
//! with worst-case interval arithmetic over the full process-variation
//! spread, that the two logic regions never overlap. With the PCM preset the
//! analysis closes exactly at a fan-in of 128 — the paper's multi-row cap —
//! and the STT-MRAM preset is held to 2 rows by its conservative cap.

use crate::resistance::{parallel, Ohms, ResistanceInterval};
use crate::technology::Technology;
use crate::NvmError;

/// Hard ceiling on the fan-in search. No technology in the NVMDB range gets
/// anywhere near this; it only bounds the search loop.
const FAN_IN_SEARCH_CEILING: usize = 1024;

/// What the sense amplifier is configured to compute, i.e. which reference
/// circuit is switched in (paper Fig. 6 left).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SenseMode {
    /// Plain read of a single open row.
    Read,
    /// Bitwise OR of `fan_in` open rows.
    Or {
        /// Number of simultaneously open rows (≥ 2).
        fan_in: usize,
    },
    /// Bitwise AND of two open rows.
    And,
}

impl SenseMode {
    /// OR of `fan_in` rows.
    ///
    /// # Errors
    ///
    /// Returns [`NvmError::DegenerateFanIn`] if `fan_in < 2`.
    pub fn or(fan_in: usize) -> Result<Self, NvmError> {
        if fan_in < 2 {
            return Err(NvmError::DegenerateFanIn);
        }
        Ok(SenseMode::Or { fan_in })
    }

    /// AND of `fan_in` rows.
    ///
    /// # Errors
    ///
    /// Returns [`NvmError::DegenerateFanIn`] if `fan_in < 2`, and
    /// [`NvmError::UnsupportedAndFanIn`] if `fan_in > 2`: distinguishing
    /// `R_low/(n−1) ‖ R_high` from `R_low/n` is not possible for `n > 2`
    /// (paper footnote 3).
    pub fn and(fan_in: usize) -> Result<Self, NvmError> {
        match fan_in {
            0 | 1 => Err(NvmError::DegenerateFanIn),
            2 => Ok(SenseMode::And),
            _ => Err(NvmError::UnsupportedAndFanIn { requested: fan_in }),
        }
    }

    /// Number of rows this mode senses at once.
    #[must_use]
    pub fn fan_in(self) -> usize {
        match self {
            SenseMode::Read => 1,
            SenseMode::Or { fan_in } => fan_in,
            SenseMode::And => 2,
        }
    }
}

impl std::fmt::Display for SenseMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SenseMode::Read => write!(f, "READ"),
            SenseMode::Or { fan_in } => write!(f, "OR-{fan_in}"),
            SenseMode::And => write!(f, "AND-2"),
        }
    }
}

/// The outcome of the worst-case margin analysis for one sense mode:
/// the two logic regions, the reference placed between them, and whether
/// they are separable under the technology's full variation spread.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SenseMargin {
    /// Resistance region that must sense as logic "1" (more current).
    one_region: ResistanceInterval,
    /// Resistance region that must sense as logic "0" (less current).
    zero_region: ResistanceInterval,
    /// The reference resistance, placed at the geometric mean of the gap.
    reference: Ohms,
    /// Whether the regions are strictly separated.
    separable: bool,
}

impl SenseMargin {
    /// The "1" (low-resistance) region.
    #[must_use]
    pub fn one_region(&self) -> ResistanceInterval {
        self.one_region
    }

    /// The "0" (high-resistance) region.
    #[must_use]
    pub fn zero_region(&self) -> ResistanceInterval {
        self.zero_region
    }

    /// The reference resistance the SA compares against.
    #[must_use]
    pub fn reference(&self) -> Ohms {
        self.reference
    }

    /// Whether the two regions are strictly separated under worst-case
    /// variation — the condition the paper's Fig. 5 asserts.
    #[must_use]
    pub fn is_separable(&self) -> bool {
        self.separable
    }

    /// Ratio of the zero region's lower bound to the one region's upper
    /// bound. Values above 1.0 mean a positive sensing gap; the bigger, the
    /// more robust the sense.
    #[must_use]
    pub fn gap_ratio(&self) -> f64 {
        self.zero_region.lo().get() / self.one_region.hi().get()
    }

    /// Conservatively classifies a column whose bit-line resistance is
    /// only known to lie in `[lo, hi]`: `Some(true)` when even the upper
    /// bound senses "1", `Some(false)` when even the lower bound senses
    /// "0", `None` when the interval straddles the reference and the
    /// column needs an exact per-cell evaluation.
    ///
    /// The padding absorbs floating-point slop between interval bounds
    /// computed from per-class conductance sums and the exact per-cell
    /// `parallel` combination (relative error ≤ fan-in · ε ≈ 3 × 10⁻¹⁴,
    /// far below the pad), so a certain verdict here can never disagree
    /// with the exact comparison against [`SenseMargin::reference`].
    #[must_use]
    pub fn classify_interval(&self, lo: Ohms, hi: Ohms) -> Option<bool> {
        const PAD: f64 = 1e-9;
        let r = self.reference.get();
        if hi.get() * (1.0 + PAD) < r {
            Some(true)
        } else if lo.get() > r * (1.0 + PAD) {
            Some(false)
        } else {
            None
        }
    }
}

/// The current sense amplifier of one mat column, with Pinatubo's extra
/// reference circuits.
///
/// # Example
///
/// ```
/// use pinatubo_nvm::sense_amp::{CurrentSenseAmp, SenseMode};
/// use pinatubo_nvm::technology::Technology;
///
/// # fn main() -> Result<(), pinatubo_nvm::NvmError> {
/// let sa = CurrentSenseAmp::new(&Technology::pcm());
/// // The PCM margin analysis closes exactly at the paper's 128-row cap.
/// assert_eq!(sa.max_or_fan_in(), 128);
/// // A 2-row AND senses "1" only when both cells are low-resistance.
/// let both_ones = pinatubo_nvm::resistance::parallel(
///     [Technology::pcm().r_low(), Technology::pcm().r_low()],
/// );
/// assert!(sa.sense(both_ones, SenseMode::and(2)?)?);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct CurrentSenseAmp {
    tech: Technology,
}

impl CurrentSenseAmp {
    /// Builds an SA model for a resistive technology.
    ///
    /// # Panics
    ///
    /// Panics if `tech` is the charge-based DRAM pseudo-technology: DRAM
    /// has no bit-line resistance to sense and is handled by the S-DRAM
    /// baseline instead.
    #[must_use]
    pub fn new(tech: &Technology) -> Self {
        assert!(
            tech.kind().is_resistive(),
            "current sensing requires a resistive technology, got {}",
            tech.kind()
        );
        CurrentSenseAmp { tech: tech.clone() }
    }

    /// The technology this SA is built for.
    #[must_use]
    pub fn technology(&self) -> &Technology {
        &self.tech
    }

    /// Worst-case margin analysis for `mode` (the Fig. 5 construction).
    #[must_use]
    pub fn margin(&self, mode: SenseMode) -> SenseMargin {
        let one_cell = |bit: bool| self.tech.cell_interval(bit);
        let (one_region, zero_region) = match mode {
            SenseMode::Read => (one_cell(true), one_cell(false)),
            SenseMode::Or { fan_in } => {
                // Worst "1" case: exactly one low-R cell among highs.
                let one = ResistanceInterval::parallel(
                    std::iter::once(one_cell(true))
                        .chain((1..fan_in).map(|_| one_cell(false)))
                        .collect::<Vec<_>>(),
                );
                // "0" case: all cells high-R.
                let zero = ResistanceInterval::parallel(
                    (0..fan_in).map(|_| one_cell(false)).collect::<Vec<_>>(),
                );
                (one, zero)
            }
            SenseMode::And => {
                // "1" case: both cells low-R.
                let one = ResistanceInterval::parallel([one_cell(true), one_cell(true)]);
                // Worst "0" case: one low-R, one high-R.
                let zero = ResistanceInterval::parallel([one_cell(true), one_cell(false)]);
                (one, zero)
            }
        };
        let separable = one_region.strictly_below(zero_region);
        let reference = one_region.hi().geometric_mean(zero_region.lo());
        SenseMargin {
            one_region,
            zero_region,
            reference,
            separable,
        }
    }

    /// Largest OR fan-in with a closed sense margin, clipped by the
    /// technology's conservative cap.
    ///
    /// For the PCM and ReRAM presets this returns 128 (the paper's cap,
    /// emerging from the interval analysis); for STT-MRAM the conservative
    /// cap holds it to 2.
    #[must_use]
    pub fn max_or_fan_in(&self) -> usize {
        let analytic = (2..=FAN_IN_SEARCH_CEILING)
            .take_while(|&n| self.margin(SenseMode::Or { fan_in: n }).is_separable())
            .last()
            .unwrap_or(1);
        match self.tech.conservative_fan_in_cap() {
            Some(cap) => analytic.min(cap),
            None => analytic,
        }
    }

    /// Largest OR fan-in the Monte-Carlo yield analysis calls reliable at
    /// `target_ber`, evaluated with a fresh deterministic stream from
    /// `seed`.
    ///
    /// This is the stochastic counterpart of
    /// [`CurrentSenseAmp::max_or_fan_in`]: the margin analysis asks "can
    /// the worst case ever fail?", this asks "how often do Gaussian tails
    /// fail?". The two are reconciled by construction — both derive from
    /// the same [`Technology`] held by this amplifier — and the reliable
    /// fan-in can only be at or below the margin limit for any sane BER
    /// target (pinned by regression tests at the PCM and STT-MRAM
    /// presets). The memory controller uses this value to decide when a
    /// requested multi-row activation must be split.
    ///
    /// # Errors
    ///
    /// Propagates sampling errors from
    /// [`crate::yield_analysis::max_reliable_or_fan_in`].
    pub fn reliable_or_fan_in(
        &self,
        target_ber: f64,
        trials: u64,
        seed: u64,
    ) -> Result<usize, NvmError> {
        let mut rng = crate::rng::SimRng::seed_from_u64(seed);
        let reliable = crate::yield_analysis::max_reliable_or_fan_in(
            &self.tech, target_ber, trials, &mut rng,
        )?;
        Ok(reliable.min(self.max_or_fan_in()))
    }

    /// Validates that `mode` is sensible on this technology.
    ///
    /// # Errors
    ///
    /// Returns [`NvmError::FanInExceeded`] when an OR's fan-in overruns
    /// [`CurrentSenseAmp::max_or_fan_in`].
    pub fn check_mode(&self, mode: SenseMode) -> Result<(), NvmError> {
        if let SenseMode::Or { fan_in } = mode {
            let supported = self.max_or_fan_in();
            if fan_in > supported {
                return Err(NvmError::FanInExceeded {
                    requested: fan_in,
                    supported,
                });
            }
        }
        Ok(())
    }

    /// Senses a bit-line resistance under `mode`: more current (lower
    /// resistance than the reference) reads as logic "1".
    ///
    /// # Errors
    ///
    /// Returns [`NvmError::FanInExceeded`] when the mode's fan-in is beyond
    /// this technology's margin.
    pub fn sense(&self, bitline: Ohms, mode: SenseMode) -> Result<bool, NvmError> {
        self.check_mode(mode)?;
        let margin = self.margin(mode);
        Ok(bitline < margin.reference())
    }

    /// Like [`CurrentSenseAmp::sense`], but also verifies the resistance
    /// falls inside one of the two legal logic regions. Used by the
    /// validation tests standing in for the paper's HSPICE runs.
    ///
    /// # Errors
    ///
    /// Returns [`NvmError::AmbiguousSense`] if `bitline` lies in the gap
    /// between (or outside) the legal regions, in addition to the errors of
    /// [`CurrentSenseAmp::sense`].
    pub fn sense_checked(&self, bitline: Ohms, mode: SenseMode) -> Result<bool, NvmError> {
        self.check_mode(mode)?;
        let margin = self.margin(mode);
        let in_one = margin.one_region().lo() <= bitline && bitline <= margin.one_region().hi();
        let in_zero = margin.zero_region().lo() <= bitline && bitline <= margin.zero_region().hi();
        // For OR, resistances *below* the worst-case "1" bound (several low
        // cells in parallel) are even more clearly "1"; same for AND's
        // all-high "0" side being above the worst-case "0" bound.
        let below_one = bitline < margin.one_region().lo();
        let above_zero = bitline > margin.zero_region().hi();
        if in_one || below_one {
            Ok(true)
        } else if in_zero || above_zero {
            Ok(false)
        } else {
            Err(NvmError::AmbiguousSense {
                bitline_ohms: bitline.get(),
            })
        }
    }

    /// Convenience: sense the OR/AND of a slice of stored bits using their
    /// nominal resistances. The fan-in is taken from `bits.len()`.
    ///
    /// # Errors
    ///
    /// Propagates the errors of [`SenseMode::or`] / [`SenseMode::and`] and
    /// [`CurrentSenseAmp::sense`].
    pub fn sense_bits(&self, bits: &[bool], op_is_and: bool) -> Result<bool, NvmError> {
        let mode = if op_is_and {
            SenseMode::and(bits.len())?
        } else {
            SenseMode::or(bits.len())?
        };
        let bl = parallel(bits.iter().map(|&b| self.tech.cell_resistance(b)));
        self.sense(bl, mode)
    }

    /// INV: the latch's differential output (paper §4.2, "for INV we simply
    /// output the differential value from the latch").
    #[must_use]
    pub fn invert(&self, latched: bool) -> bool {
        !latched
    }
}

/// The XOR micro-step unit: the added capacitor `Ch` plus two transistors
/// on the SA output (paper Fig. 6).
///
/// XOR takes two micro-steps: the first operand is read onto the capacitor,
/// the second into the latch; the add-on transistors then output the XOR.
///
/// # Example
///
/// ```
/// use pinatubo_nvm::sense_amp::XorUnit;
///
/// let mut xor = XorUnit::new();
/// xor.sample(true);                 // micro-step 1: operand A → Ch
/// assert_eq!(xor.resolve(false), Some(true)); // micro-step 2: A ^ B
/// assert_eq!(xor.resolve(false), None);       // Ch discharged after use
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct XorUnit {
    sampled: Option<bool>,
}

impl XorUnit {
    /// A unit with a discharged capacitor.
    #[must_use]
    pub fn new() -> Self {
        XorUnit::default()
    }

    /// Micro-step 1: sample the first operand onto the capacitor.
    pub fn sample(&mut self, operand: bool) {
        self.sampled = Some(operand);
    }

    /// Micro-step 2: read the second operand into the latch and output the
    /// XOR. Returns `None` if no operand was sampled (the capacitor is
    /// discharged), which models issuing the second micro-step without the
    /// first.
    pub fn resolve(&mut self, operand: bool) -> Option<bool> {
        self.sampled.take().map(|first| first ^ operand)
    }

    /// Whether an operand is currently held on the capacitor.
    #[must_use]
    pub fn is_charged(&self) -> bool {
        self.sampled.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::technology::Technology;

    fn pcm_sa() -> CurrentSenseAmp {
        CurrentSenseAmp::new(&Technology::pcm())
    }

    #[test]
    fn read_margin_is_separable_for_all_resistive_presets() {
        for tech in [
            Technology::pcm(),
            Technology::stt_mram(),
            Technology::reram(),
        ] {
            let sa = CurrentSenseAmp::new(&tech);
            assert!(
                sa.margin(SenseMode::Read).is_separable(),
                "read margin must close for {}",
                tech.kind()
            );
        }
    }

    #[test]
    fn pcm_or_fan_in_caps_at_128() {
        assert_eq!(pcm_sa().max_or_fan_in(), 128);
    }

    #[test]
    fn reram_or_fan_in_caps_at_128() {
        assert_eq!(
            CurrentSenseAmp::new(&Technology::reram()).max_or_fan_in(),
            128
        );
    }

    #[test]
    fn stt_fan_in_is_conservatively_two() {
        assert_eq!(
            CurrentSenseAmp::new(&Technology::stt_mram()).max_or_fan_in(),
            2
        );
    }

    #[test]
    fn margin_and_yield_fan_in_limits_are_reconciled() {
        // Regression pin: the interval-analysis cap and the Monte-Carlo
        // reliability limit must agree through the controller's single
        // source of truth (`reliable_or_fan_in`, which clips to
        // `max_or_fan_in`). Pinned at both presets so a drift in either
        // model shows up here first.
        let pcm = pcm_sa();
        let pcm_reliable = pcm
            .reliable_or_fan_in(1e-3, 2000, 0x5EED)
            .expect("yield sweep runs");
        assert_eq!(pcm.max_or_fan_in(), 128);
        assert_eq!(pcm_reliable, 128);

        let stt = CurrentSenseAmp::new(&Technology::stt_mram());
        let stt_reliable = stt
            .reliable_or_fan_in(1e-3, 2000, 0x5EED)
            .expect("yield sweep runs");
        assert_eq!(stt.max_or_fan_in(), 2);
        assert_eq!(stt_reliable, 2);

        for sa in [&pcm, &stt] {
            let reliable = sa.reliable_or_fan_in(1e-3, 2000, 0x5EED).expect("sweep");
            assert!(
                reliable <= sa.max_or_fan_in(),
                "the stochastic limit can never exceed the margin limit"
            );
        }
    }

    #[test]
    fn or_truth_table_two_rows() {
        let sa = pcm_sa();
        for a in [false, true] {
            for b in [false, true] {
                let got = sa.sense_bits(&[a, b], false).expect("2-row OR senses");
                assert_eq!(got, a | b, "OR({a}, {b})");
            }
        }
    }

    #[test]
    fn and_truth_table_two_rows() {
        let sa = pcm_sa();
        for a in [false, true] {
            for b in [false, true] {
                let got = sa.sense_bits(&[a, b], true).expect("2-row AND senses");
                assert_eq!(got, a & b, "AND({a}, {b})");
            }
        }
    }

    #[test]
    fn or_128_rows_single_one_detected() {
        let sa = pcm_sa();
        let mut bits = [false; 128];
        assert!(!sa.sense_bits(&bits, false).expect("all-zero OR"));
        bits[77] = true;
        assert!(sa.sense_bits(&bits, false).expect("one-hot OR"));
    }

    #[test]
    fn or_beyond_margin_is_rejected() {
        let sa = pcm_sa();
        let err = sa
            .check_mode(SenseMode::Or { fan_in: 129 })
            .expect_err("129-row OR must be rejected");
        assert_eq!(
            err,
            NvmError::FanInExceeded {
                requested: 129,
                supported: 128
            }
        );
    }

    #[test]
    fn and_beyond_two_rows_is_rejected() {
        assert_eq!(
            SenseMode::and(3),
            Err(NvmError::UnsupportedAndFanIn { requested: 3 })
        );
    }

    #[test]
    fn degenerate_fan_ins_are_rejected() {
        assert_eq!(SenseMode::or(1), Err(NvmError::DegenerateFanIn));
        assert_eq!(SenseMode::or(0), Err(NvmError::DegenerateFanIn));
        assert_eq!(SenseMode::and(1), Err(NvmError::DegenerateFanIn));
    }

    #[test]
    fn reference_sits_inside_gap() {
        let sa = pcm_sa();
        for mode in [
            SenseMode::Read,
            SenseMode::Or { fan_in: 2 },
            SenseMode::Or { fan_in: 128 },
            SenseMode::And,
        ] {
            let m = sa.margin(mode);
            assert!(m.is_separable(), "{mode} must be separable");
            assert!(
                m.one_region().hi() < m.reference() && m.reference() < m.zero_region().lo(),
                "{mode}: reference must sit inside the gap"
            );
            assert!(m.gap_ratio() > 1.0);
        }
    }

    #[test]
    fn classify_interval_is_conservative_around_the_reference() {
        let sa = pcm_sa();
        let m = sa.margin(SenseMode::Or { fan_in: 4 });
        let r = m.reference().get();
        // Clearly below / above the reference: certain verdicts.
        assert_eq!(
            m.classify_interval(Ohms::new(r * 0.5), Ohms::new(r * 0.9)),
            Some(true)
        );
        assert_eq!(
            m.classify_interval(Ohms::new(r * 1.1), Ohms::new(r * 2.0)),
            Some(false)
        );
        // Straddling, or within the conservative pad of it: ambiguous.
        assert_eq!(
            m.classify_interval(Ohms::new(r * 0.9), Ohms::new(r * 1.1)),
            None
        );
        assert_eq!(m.classify_interval(Ohms::new(r), Ohms::new(r)), None);
    }

    #[test]
    fn gap_shrinks_with_fan_in() {
        let sa = pcm_sa();
        let g2 = sa.margin(SenseMode::Or { fan_in: 2 }).gap_ratio();
        let g64 = sa.margin(SenseMode::Or { fan_in: 64 }).gap_ratio();
        let g128 = sa.margin(SenseMode::Or { fan_in: 128 }).gap_ratio();
        assert!(g2 > g64 && g64 > g128);
    }

    #[test]
    fn sense_checked_flags_gap_resistances() {
        let sa = pcm_sa();
        let m = sa.margin(SenseMode::Read);
        let err = sa
            .sense_checked(m.reference(), SenseMode::Read)
            .expect_err("the reference itself lies in the gap");
        assert!(matches!(err, NvmError::AmbiguousSense { .. }));
    }

    #[test]
    fn invert_is_differential_output() {
        let sa = pcm_sa();
        assert!(!sa.invert(true));
        assert!(sa.invert(false));
    }

    #[test]
    fn xor_unit_truth_table() {
        for a in [false, true] {
            for b in [false, true] {
                let mut u = XorUnit::new();
                u.sample(a);
                assert!(u.is_charged());
                assert_eq!(u.resolve(b), Some(a ^ b));
                assert!(!u.is_charged());
            }
        }
    }

    #[test]
    fn xor_without_sample_yields_none() {
        let mut u = XorUnit::new();
        assert_eq!(u.resolve(true), None);
    }

    #[test]
    fn xor_micro_steps_sequence_through_read_senses() {
        // XOR is two single-row READ micro-steps (paper §4.2): operand A is
        // sensed and sampled onto Ch, operand B is sensed into the latch,
        // and the add-on transistors output A ^ B. Regression for the
        // sequencing: each micro-step is a plain READ (fan-in 1, never a
        // multi-row mode), Ch holds exactly one operand between the steps,
        // and the second micro-step cannot be issued twice.
        let sa = pcm_sa();
        let tech = Technology::pcm();
        assert_eq!(SenseMode::Read.fan_in(), 1);
        for a in [false, true] {
            for b in [false, true] {
                let mut unit = XorUnit::new();
                let sensed_a = sa
                    .sense(tech.cell_resistance(a), SenseMode::Read)
                    .expect("micro-step 1 reads A");
                assert_eq!(sensed_a, a);
                unit.sample(sensed_a);
                assert!(unit.is_charged(), "Ch holds A between micro-steps");
                let sensed_b = sa
                    .sense(tech.cell_resistance(b), SenseMode::Read)
                    .expect("micro-step 2 reads B");
                assert_eq!(unit.resolve(sensed_b), Some(a ^ b), "XOR({a}, {b})");
                assert!(!unit.is_charged(), "Ch discharges after resolve");
                assert_eq!(
                    unit.resolve(sensed_b),
                    None,
                    "a second resolve without a fresh sample must fail"
                );
            }
        }
    }

    #[test]
    fn resampling_overwrites_a_stale_charge() {
        // An aborted op can leave Ch charged; the next op's first micro-step
        // must overwrite the stale operand, not XOR against it.
        let mut unit = XorUnit::new();
        unit.sample(true);
        unit.sample(false);
        assert_eq!(unit.resolve(true), Some(true));
    }

    #[test]
    #[should_panic(expected = "resistive technology")]
    fn dram_cannot_host_a_current_sa() {
        let _ = CurrentSenseAmp::new(&Technology::dram());
    }

    #[test]
    fn mode_display() {
        assert_eq!(SenseMode::Read.to_string(), "READ");
        assert_eq!(SenseMode::Or { fan_in: 16 }.to_string(), "OR-16");
        assert_eq!(SenseMode::And.to_string(), "AND-2");
    }
}
