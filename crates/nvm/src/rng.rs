//! A small, seedable, dependency-free PRNG for the simulator.
//!
//! The simulator only ever needs *reproducible* pseudo-randomness — synthetic
//! datasets, Monte-Carlo variation sampling, randomized placement — never
//! cryptographic strength. [`SimRng`] is a xoshiro256** generator (Blackman &
//! Vigna) seeded through SplitMix64, the combination recommended by the
//! xoshiro authors: SplitMix64 decorrelates nearby seeds, xoshiro256** passes
//! BigCrush and is a handful of ALU ops per draw.
//!
//! Determinism contract: for a given seed, every method produces the same
//! sequence on every platform and every run. Tests and figure regeneration
//! rely on this.

/// One step of SplitMix64 — used to expand a 64-bit seed into the 256-bit
/// xoshiro state, and handy on its own for hashing seeds together.
#[must_use]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Hashes a sequence of words into 64 uniform bits, keyed by `seed`.
///
/// Built from [`splitmix64`] steps with the running output folded back
/// into the state, so every word position acts as an independent key
/// component: changing any single input word reshuffles the output. This
/// is the primitive behind counter-keyed fault draws — a draw is a pure
/// function of `(seed, position)` rather than of how many draws happened
/// before it.
#[must_use]
pub fn hash_u64s(seed: u64, parts: &[u64]) -> u64 {
    let mut s = seed;
    let mut out = splitmix64(&mut s);
    for &p in parts {
        s ^= p.wrapping_add(out);
        out = splitmix64(&mut s);
    }
    out
}

/// Maps 64 uniform bits onto a uniform `f64` in `[0, 1)` (53 mantissa
/// bits), the same mapping [`SimRng::next_f64`] uses.
#[must_use]
pub fn unit_from_u64(x: u64) -> f64 {
    (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A seedable xoshiro256** pseudo-random generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Creates a generator from a 64-bit seed (SplitMix64-expanded, so
    /// seeds 0, 1, 2… give uncorrelated streams).
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        SimRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// The next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform `f64` in `[0, 1)` (53 random mantissa bits).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform draw from the half-open integer range `[lo, hi)` via
    /// Lemire-style rejection (unbiased).
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn gen_range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        let span = hi - lo;
        // Rejection sampling over the biased high bits of a 128-bit product.
        loop {
            let x = self.next_u64();
            let m = u128::from(x) * u128::from(span);
            let low = m as u64;
            if low >= span.wrapping_neg() % span {
                return lo + (m >> 64) as u64;
            }
        }
    }

    /// A uniform index in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn gen_index(&mut self, n: usize) -> usize {
        self.gen_range_u64(0, n as u64) as usize
    }

    /// A uniform `f64` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty or not finite.
    pub fn gen_range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(
            lo < hi && lo.is_finite() && hi.is_finite(),
            "bad range [{lo}, {hi})"
        );
        lo + self.next_f64() * (hi - lo)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} out of [0, 1]");
        self.next_f64() < p
    }

    /// A uniformly random bit.
    pub fn gen_bit(&mut self) -> bool {
        self.next_u64() >> 63 == 1
    }

    /// One standard-normal sample via Box–Muller.
    pub fn gen_gaussian(&mut self) -> f64 {
        let u1 = self.gen_range_f64(f64::EPSILON, 1.0);
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_matches_reference_vectors() {
        // Reference sequence for seed 0 from the public-domain SplitMix64
        // implementation (Vigna).
        let mut s = 0u64;
        assert_eq!(splitmix64(&mut s), 0xE220_A839_7B1D_CDAF);
        assert_eq!(splitmix64(&mut s), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(splitmix64(&mut s), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn hash_u64s_separates_every_key_component() {
        let base = hash_u64s(1, &[2, 3, 4]);
        assert_eq!(base, hash_u64s(1, &[2, 3, 4]), "pure function");
        assert_ne!(base, hash_u64s(9, &[2, 3, 4]), "seed matters");
        assert_ne!(base, hash_u64s(1, &[9, 3, 4]), "first word matters");
        assert_ne!(base, hash_u64s(1, &[2, 9, 4]), "middle word matters");
        assert_ne!(base, hash_u64s(1, &[2, 3, 9]), "last word matters");
        assert_ne!(base, hash_u64s(1, &[2, 3]), "length matters");
    }

    #[test]
    fn unit_from_u64_spans_the_half_open_interval() {
        assert_eq!(unit_from_u64(0), 0.0);
        let top = unit_from_u64(u64::MAX);
        assert!((0.0..1.0).contains(&top), "got {top}");
        // Matches the SimRng float mapping bit-for-bit.
        let mut rng = SimRng::seed_from_u64(5);
        let mut probe = SimRng::seed_from_u64(5);
        for _ in 0..100 {
            assert_eq!(unit_from_u64(rng.next_u64()), probe.next_f64());
        }
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from_u64(42);
        let mut b = SimRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::seed_from_u64(1);
        let mut b = SimRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SimRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range_u64(10, 17);
            assert!((10..17).contains(&x));
            let f = rng.gen_range_f64(-2.0, 3.0);
            assert!((-2.0..3.0).contains(&f));
            let i = rng.gen_index(3);
            assert!(i < 3);
        }
    }

    #[test]
    fn small_ranges_hit_every_value() {
        let mut rng = SimRng::seed_from_u64(3);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            seen[rng.gen_index(7)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SimRng::seed_from_u64(11);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.25)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.25).abs() < 0.02, "got {rate}");
    }

    #[test]
    fn gaussian_moments_are_sane() {
        let mut rng = SimRng::seed_from_u64(13);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.gen_gaussian()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "variance {var}");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        SimRng::seed_from_u64(0).gen_range_u64(5, 5);
    }
}
