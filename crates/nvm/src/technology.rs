//! Technology presets for the resistive memories Pinatubo targets.
//!
//! All three NVM families share the resistive-cell basics the paper relies
//! on (§2): logic "1" is a low-resistance state, logic "0" a high-resistance
//! state, and the SA senses cell current. The presets below use
//! representative prototype numbers in the ranges of the NVMDB survey the
//! paper cites (\[23\]): a 90 nm PCM (\[10\]), a 64 Mb STT-MRAM (\[24\]) and a
//! fast-read ReRAM (\[8\]). A DRAM pseudo-technology is included for the
//! S-DRAM baseline; it is charge-based, so its "resistances" are unused and
//! it reports no multi-row capability.

use crate::resistance::{Ohms, ResistanceInterval};

/// Which memory technology a chip is built from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum TechnologyKind {
    /// Phase-change memory (1T1R, unipolar write).
    Pcm,
    /// Spin-transfer-torque magnetic RAM (1T1R, bipolar write, low ON/OFF).
    SttMram,
    /// Resistive RAM (1T1R, bipolar write).
    ReRam,
    /// Conventional DRAM; used only by the S-DRAM baseline.
    Dram,
}

impl TechnologyKind {
    /// `true` for the resistive technologies that can host Pinatubo.
    #[must_use]
    pub fn is_resistive(self) -> bool {
        !matches!(self, TechnologyKind::Dram)
    }
}

impl std::fmt::Display for TechnologyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            TechnologyKind::Pcm => "PCM",
            TechnologyKind::SttMram => "STT-MRAM",
            TechnologyKind::ReRam => "ReRAM",
            TechnologyKind::Dram => "DRAM",
        };
        f.write_str(name)
    }
}

/// A memory technology: cell electrical parameters plus the architectural
/// caps the paper derives from them.
///
/// Constructed through the presets ([`Technology::pcm`],
/// [`Technology::stt_mram`], [`Technology::reram`], [`Technology::dram`]) or
/// customized through [`TechnologyBuilder`].
#[derive(Debug, Clone, PartialEq)]
pub struct Technology {
    kind: TechnologyKind,
    /// Low-resistance (SET / logic "1") state, nominal.
    r_low: Ohms,
    /// High-resistance (RESET / logic "0") state, nominal.
    r_high: Ohms,
    /// Symmetric relative process-variation spread applied to every cell
    /// resistance when computing worst-case sense margins.
    variation: f64,
    /// Conservative architectural cap on simultaneously sensed rows, if the
    /// paper imposes one beyond what the analytic margin allows (STT-MRAM is
    /// capped at 2, §4.2).
    conservative_fan_in_cap: Option<usize>,
    /// Whether writes need both current polarities (affects the write-driver
    /// model; PCM is unipolar, STT/ReRAM bipolar, per §4.2 Fig. 8).
    bipolar_write: bool,
}

impl Technology {
    /// 1T1R phase-change memory — the paper's case-study technology.
    ///
    /// ON/OFF ratio 100 (10 kΩ / 1 MΩ). The ±27.85% worst-case variation
    /// spread is calibrated so the analytic OR sense margin closes exactly
    /// at a fan-in of 128 rows, the cap the paper derives from
    /// state-of-the-art PCM TCAM sensing (§4.2). With these numbers the
    /// 128-row limit *emerges* from [`crate::sense_amp`]'s interval
    /// analysis rather than being hard-coded.
    #[must_use]
    pub fn pcm() -> Self {
        Technology {
            kind: TechnologyKind::Pcm,
            r_low: Ohms::new(10e3),
            r_high: Ohms::new(1e6),
            variation: 0.2785,
            conservative_fan_in_cap: None,
            bipolar_write: false,
        }
    }

    /// STT-MRAM with a low ON/OFF ratio (2 kΩ / 5 kΩ, TMR ≈ 150%).
    ///
    /// The paper conservatively assumes at most 2-row operations for
    /// STT-MRAM; the preset records that cap explicitly on top of the
    /// (already tight) analytic margin.
    #[must_use]
    pub fn stt_mram() -> Self {
        Technology {
            kind: TechnologyKind::SttMram,
            r_low: Ohms::new(2e3),
            r_high: Ohms::new(5e3),
            variation: 0.08,
            conservative_fan_in_cap: Some(2),
            bipolar_write: true,
        }
    }

    /// ReRAM with a high ON/OFF ratio (5 kΩ / 500 kΩ).
    #[must_use]
    pub fn reram() -> Self {
        Technology {
            kind: TechnologyKind::ReRam,
            r_low: Ohms::new(5e3),
            r_high: Ohms::new(500e3),
            variation: 0.2785,
            conservative_fan_in_cap: None,
            bipolar_write: true,
        }
    }

    /// Charge-based DRAM, for the S-DRAM baseline only.
    ///
    /// The resistance fields hold placeholder values (DRAM senses charge,
    /// not resistance); the preset exists so the baselines can share the
    /// same plumbing. Multi-row sensing is capped at 2 (triple-row
    /// activation computes on two operand rows plus a result row, \[22\]).
    #[must_use]
    pub fn dram() -> Self {
        Technology {
            kind: TechnologyKind::Dram,
            r_low: Ohms::new(1e3),
            r_high: Ohms::new(2e3),
            variation: 0.05,
            conservative_fan_in_cap: Some(2),
            bipolar_write: false,
        }
    }

    /// Starts a builder seeded from this preset, for sensitivity studies.
    #[must_use]
    pub fn to_builder(&self) -> TechnologyBuilder {
        TechnologyBuilder {
            inner: self.clone(),
        }
    }

    /// The technology family.
    #[must_use]
    pub fn kind(&self) -> TechnologyKind {
        self.kind
    }

    /// Nominal low-resistance (logic "1") state.
    #[must_use]
    pub fn r_low(&self) -> Ohms {
        self.r_low
    }

    /// Nominal high-resistance (logic "0") state.
    #[must_use]
    pub fn r_high(&self) -> Ohms {
        self.r_high
    }

    /// ON/OFF ratio `r_high / r_low`.
    #[must_use]
    pub fn on_off_ratio(&self) -> f64 {
        self.r_high.get() / self.r_low.get()
    }

    /// Worst-case relative variation spread.
    #[must_use]
    pub fn variation(&self) -> f64 {
        self.variation
    }

    /// The conservative fan-in cap, if the paper imposes one.
    #[must_use]
    pub fn conservative_fan_in_cap(&self) -> Option<usize> {
        self.conservative_fan_in_cap
    }

    /// Whether write currents are bipolar (SET and RESET use opposite
    /// polarity).
    #[must_use]
    pub fn bipolar_write(&self) -> bool {
        self.bipolar_write
    }

    /// Nominal resistance of a cell storing `bit`.
    ///
    /// Logic "1" is the low-resistance state (the paper's encoding for PCM
    /// and ReRAM, which is what makes multi-row OR sensible).
    #[must_use]
    pub fn cell_resistance(&self, bit: bool) -> Ohms {
        if bit {
            self.r_low
        } else {
            self.r_high
        }
    }

    /// Worst-case resistance interval of a cell storing `bit`.
    #[must_use]
    pub fn cell_interval(&self, bit: bool) -> ResistanceInterval {
        ResistanceInterval::with_relative_spread(self.cell_resistance(bit), self.variation)
    }
}

/// Builder for customized technologies (sensitivity / ablation studies).
///
/// # Example
///
/// ```
/// use pinatubo_nvm::technology::Technology;
///
/// let tight_pcm = Technology::pcm()
///     .to_builder()
///     .variation(0.05)
///     .build();
/// assert!(tight_pcm.variation() < Technology::pcm().variation());
/// ```
#[derive(Debug, Clone)]
pub struct TechnologyBuilder {
    inner: Technology,
}

impl TechnologyBuilder {
    /// Sets the nominal low-resistance state.
    #[must_use]
    pub fn r_low(mut self, r: Ohms) -> Self {
        self.inner.r_low = r;
        self
    }

    /// Sets the nominal high-resistance state.
    #[must_use]
    pub fn r_high(mut self, r: Ohms) -> Self {
        self.inner.r_high = r;
        self
    }

    /// Sets the worst-case relative variation spread.
    ///
    /// # Panics
    ///
    /// Panics if `rel` is not in `[0, 1)`.
    #[must_use]
    pub fn variation(mut self, rel: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&rel),
            "variation must be in [0, 1), got {rel}"
        );
        self.inner.variation = rel;
        self
    }

    /// Overrides or clears the conservative fan-in cap.
    #[must_use]
    pub fn conservative_fan_in_cap(mut self, cap: Option<usize>) -> Self {
        self.inner.conservative_fan_in_cap = cap;
        self
    }

    /// Finishes the builder.
    ///
    /// # Panics
    ///
    /// Panics if `r_low >= r_high` — the encoding requires a positive
    /// ON/OFF ratio.
    #[must_use]
    pub fn build(self) -> Technology {
        assert!(
            self.inner.r_low < self.inner.r_high,
            "r_low must be below r_high (got {} vs {})",
            self.inner.r_low,
            self.inner.r_high
        );
        self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_have_expected_on_off_ratios() {
        assert!((Technology::pcm().on_off_ratio() - 100.0).abs() < 1e-9);
        assert!((Technology::stt_mram().on_off_ratio() - 2.5).abs() < 1e-9);
        assert!((Technology::reram().on_off_ratio() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn logic_one_is_low_resistance() {
        let t = Technology::pcm();
        assert!(t.cell_resistance(true) < t.cell_resistance(false));
    }

    #[test]
    fn stt_is_conservatively_capped_at_two() {
        assert_eq!(Technology::stt_mram().conservative_fan_in_cap(), Some(2));
        assert_eq!(Technology::pcm().conservative_fan_in_cap(), None);
    }

    #[test]
    fn dram_is_not_resistive() {
        assert!(!Technology::dram().kind().is_resistive());
        assert!(Technology::pcm().kind().is_resistive());
    }

    #[test]
    fn builder_round_trips() {
        let t = Technology::pcm().to_builder().build();
        assert_eq!(t, Technology::pcm());
    }

    #[test]
    #[should_panic(expected = "r_low must be below r_high")]
    fn builder_rejects_inverted_states() {
        let _ = Technology::pcm().to_builder().r_low(Ohms::new(2e6)).build();
    }

    #[test]
    fn kind_display_names() {
        assert_eq!(TechnologyKind::Pcm.to_string(), "PCM");
        assert_eq!(TechnologyKind::SttMram.to_string(), "STT-MRAM");
        assert_eq!(TechnologyKind::ReRam.to_string(), "ReRAM");
        assert_eq!(TechnologyKind::Dram.to_string(), "DRAM");
    }

    #[test]
    fn cell_interval_brackets_nominal() {
        let t = Technology::pcm();
        for bit in [false, true] {
            let iv = t.cell_interval(bit);
            let nom = t.cell_resistance(bit);
            assert!(iv.lo() <= nom && nom <= iv.hi());
        }
    }
}
