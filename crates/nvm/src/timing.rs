//! Command-level timing parameters.
//!
//! These play the role CACTI-3DD and the DDR datasheets play in the paper's
//! methodology (§6.1): every architectural event in the simulator is charged
//! from this table. The PCM preset uses the exact tRCD–tCL–tWR the paper
//! quotes for its 1T1R PCM main memory (18.3–8.9–151.1 ns, from CACTI-3DD
//! \[9\]); the DRAM preset is a stock DDR3-1600 part.

/// Nanoseconds, the time unit used throughout the simulator.
pub type Nanos = f64;

/// Timing parameters of one memory technology + interface.
#[derive(Debug, Clone, PartialEq)]
pub struct TimingParams {
    /// Row activation: address decode + word line up + cells settled on the
    /// bit lines (tRCD).
    pub t_rcd_ns: Nanos,
    /// Each *additional* latched activation of a multi-row op. The LWL
    /// latch holds earlier rows, so later activations only pay the command
    /// issue + decode latency, which is bounded by the DDR command rate.
    pub t_extra_act_ns: Nanos,
    /// Column access / one sense pass through the SA mux (tCL).
    pub t_cl_ns: Nanos,
    /// Row write (tWR) — the dominant cost on PCM.
    pub t_wr_ns: Nanos,
    /// Precharge / bit-line restore before the next activation (tRP).
    pub t_rp_ns: Nanos,
    /// Mode-register set (used to switch the SA reference / PIM config).
    pub t_mrs_ns: Nanos,
    /// One transfer cycle on the chip-internal global data lines.
    pub t_gdl_cycle_ns: Nanos,
    /// One data beat on the DDR bus.
    pub t_bus_beat_ns: Nanos,
    /// Bus width in bits (64 for a DDR3 channel).
    pub bus_width_bits: u32,
    /// Beats per burst (8 for DDR3).
    pub burst_beats: u32,
    /// Minimum gap between activations to *different banks* of one rank
    /// (tRRD). Limits how tightly bank-parallel PIM requests can launch;
    /// a serial command stream already spaces activations by ≥ tRCD, so
    /// the constraint only binds when bank lanes overlap. The
    /// command-interleaved channel model enforces it per ACT command —
    /// each activation slots into the rank's ledger, possibly *between*
    /// earlier requests' activations — not just once per request launch.
    pub t_rrd_ns: Nanos,
    /// Four-activation rolling window per rank (tFAW): any four
    /// activations to one rank must span at least this long, bounding the
    /// rank's peak activation current draw. Like tRRD, checked at
    /// command granularity when requests interleave: the window spans
    /// activations from *all* requests on the rank, whatever order they
    /// were dispatched in.
    pub t_faw_ns: Nanos,
    /// One SEC-DED syndrome/encode pass through the per-bank ECC XOR
    /// tree (a few gate levels wide, pipelined with the column path —
    /// roughly two command-bus clocks). Charged only when the controller
    /// runs with SEC-DED protection.
    pub t_ecc_ns: Nanos,
}

impl TimingParams {
    /// The paper's 1T1R PCM main memory on a DDR3-1600 interface.
    #[must_use]
    pub fn pcm_ddr3_1600() -> Self {
        TimingParams {
            t_rcd_ns: 18.3,
            // Four command-bus clocks at 1.25 ns: the rate at which extra
            // row addresses can be streamed into the LWL latches.
            t_extra_act_ns: 5.0,
            t_cl_ns: 8.9,
            t_wr_ns: 151.1,
            t_rp_ns: 7.8,
            t_mrs_ns: 11.25,
            t_gdl_cycle_ns: 1.25,
            t_bus_beat_ns: 0.625,
            bus_width_bits: 64,
            burst_beats: 8,
            t_rrd_ns: 7.5,
            t_faw_ns: 30.0,
            t_ecc_ns: 2.5,
        }
    }

    /// A stock DDR3-1600 DRAM channel (11-11-11-ish part).
    #[must_use]
    pub fn ddr3_1600() -> Self {
        TimingParams {
            t_rcd_ns: 13.75,
            t_extra_act_ns: 5.0,
            t_cl_ns: 13.75,
            t_wr_ns: 15.0,
            t_rp_ns: 13.75,
            t_mrs_ns: 11.25,
            t_gdl_cycle_ns: 1.25,
            t_bus_beat_ns: 0.625,
            bus_width_bits: 64,
            burst_beats: 8,
            t_rrd_ns: 7.5,
            t_faw_ns: 30.0,
            t_ecc_ns: 2.5,
        }
    }

    /// Duration of one full burst on the bus.
    #[must_use]
    pub fn burst_ns(&self) -> Nanos {
        f64::from(self.burst_beats) * self.t_bus_beat_ns
    }

    /// Bits moved per burst.
    #[must_use]
    pub fn burst_bits(&self) -> u64 {
        u64::from(self.burst_beats) * u64::from(self.bus_width_bits)
    }

    /// Peak bus bandwidth in gigabytes per second.
    #[must_use]
    pub fn bus_bandwidth_gbps(&self) -> f64 {
        let bytes_per_beat = f64::from(self.bus_width_bits) / 8.0;
        bytes_per_beat / self.t_bus_beat_ns
    }

    /// Time to stream `bits` over the bus at peak rate, in whole bursts.
    #[must_use]
    pub fn bus_transfer_ns(&self, bits: u64) -> Nanos {
        let bursts = bits.div_ceil(self.burst_bits());
        bursts as f64 * self.burst_ns()
    }

    /// Time for a multi-row activation of `rows` rows: one full tRCD plus
    /// command-rate-limited extra activations (paper Fig. 7's accumulate
    /// protocol).
    ///
    /// # Panics
    ///
    /// Panics if `rows` is zero.
    #[must_use]
    pub fn multi_activate_ns(&self, rows: usize) -> Nanos {
        assert!(rows > 0, "activation of zero rows is meaningless");
        self.t_rcd_ns + (rows - 1) as f64 * self.t_extra_act_ns
    }

    /// Earliest time a new activation may issue on a rank, given the rank's
    /// previous activation issue times (`history`, oldest first) and the
    /// proposed issue time `now`: tRRD after the most recent activation and
    /// tFAW after the fourth-most-recent one.
    #[must_use]
    pub fn earliest_activation_ns(&self, history: &[Nanos], now: Nanos) -> Nanos {
        let mut earliest = now;
        if let Some(&last) = history.last() {
            earliest = earliest.max(last + self.t_rrd_ns);
        }
        if history.len() >= 4 {
            earliest = earliest.max(history[history.len() - 4] + self.t_faw_ns);
        }
        earliest
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pcm_matches_paper_timings() {
        let t = TimingParams::pcm_ddr3_1600();
        assert!((t.t_rcd_ns - 18.3).abs() < 1e-9);
        assert!((t.t_cl_ns - 8.9).abs() < 1e-9);
        assert!((t.t_wr_ns - 151.1).abs() < 1e-9);
    }

    #[test]
    fn ddr3_bus_is_12_8_gbps() {
        let t = TimingParams::ddr3_1600();
        assert!((t.bus_bandwidth_gbps() - 12.8).abs() < 1e-9);
    }

    #[test]
    fn burst_moves_64_bytes() {
        let t = TimingParams::ddr3_1600();
        assert_eq!(t.burst_bits(), 512);
        assert!((t.burst_ns() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn bus_transfer_rounds_up_to_bursts() {
        let t = TimingParams::ddr3_1600();
        assert!((t.bus_transfer_ns(1) - 5.0).abs() < 1e-9);
        assert!((t.bus_transfer_ns(512) - 5.0).abs() < 1e-9);
        assert!((t.bus_transfer_ns(513) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn multi_activation_is_cheaper_than_serial_activations() {
        let t = TimingParams::pcm_ddr3_1600();
        let multi = t.multi_activate_ns(128);
        let serial = 128.0 * (t.t_rcd_ns + t.t_rp_ns);
        assert!(multi < serial / 2.0);
        // Single-row multi-activation degenerates to a plain tRCD.
        assert!((t.multi_activate_ns(1) - t.t_rcd_ns).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "zero rows")]
    fn zero_row_activation_panics() {
        let _ = TimingParams::pcm_ddr3_1600().multi_activate_ns(0);
    }

    #[test]
    fn inter_activation_constraints_never_bind_a_serial_stream() {
        // A serial command stream spaces activations by at least one full
        // activate+sense+precharge, so tRRD/tFAW must be smaller than that
        // for both presets — otherwise the no-stall accounting of the
        // serial controller would be wrong.
        for t in [TimingParams::pcm_ddr3_1600(), TimingParams::ddr3_1600()] {
            let serial_gap = t.t_rcd_ns + t.t_cl_ns + t.t_rp_ns;
            assert!(t.t_rrd_ns > 0.0 && t.t_rrd_ns < serial_gap);
            assert!(t.t_faw_ns < 4.0 * serial_gap);
            assert!(t.t_faw_ns >= 2.0 * t.t_rrd_ns);
        }
    }

    #[test]
    fn earliest_activation_applies_trrd_and_tfaw() {
        let t = TimingParams::pcm_ddr3_1600();
        // No history: issue immediately.
        assert!((t.earliest_activation_ns(&[], 3.0) - 3.0).abs() < 1e-12);
        // tRRD holds a back-to-back activation off.
        let after_rrd = t.earliest_activation_ns(&[10.0], 10.0);
        assert!((after_rrd - (10.0 + t.t_rrd_ns)).abs() < 1e-12);
        // Far-future issue times are unaffected.
        assert!((t.earliest_activation_ns(&[10.0], 1000.0) - 1000.0).abs() < 1e-12);
        // Four activations in a burst: the fifth waits for the tFAW window
        // opened by history[len-4].
        let history = [0.0, 7.5, 15.0, 22.0];
        let fifth = t.earliest_activation_ns(&history, 25.0);
        assert!(
            (fifth - (history[0] + t.t_faw_ns)).abs() < 1e-12,
            "tFAW (not tRRD at 29.5 or `now` at 25) must gate the fifth ACT"
        );
    }
}
