//! Command-level energy parameters.
//!
//! These play the role NVSim plays in the paper's methodology (§6.1): every
//! architectural event is charged from this table. Absolute picojoules are
//! calibrated (see `DESIGN.md` §3) so that the derived bitwise-operation
//! energy ratios land in the paper's reported bands; all per-workload and
//! per-configuration *spreads* then emerge from the simulator.
//!
//! The key physical distinction the paper leans on is preserved: Pinatubo's
//! in-array compute pays only word-line switching, analog sensing and the
//! (one-row) write-back, while a processor-centric execution pays array
//! read + bus + cache hierarchy + core pipeline energy for every operand
//! bit, in both directions.

/// Picojoules, the energy unit used throughout the simulator.
pub type Picojoules = f64;

/// Energy parameters of one memory technology.
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyParams {
    /// Row activation energy per bit of the opened row (word-line switching
    /// plus the cells' sub-threshold read-current share).
    pub act_pj_per_bit: Picojoules,
    /// Analog sensing energy per sensed bit (the CSA's three phases).
    pub sense_pj_per_bit: Picojoules,
    /// Array write energy per bit (SET/RESET average).
    pub write_pj_per_bit: Picojoules,
    /// Off-chip DDR bus + I/O pad energy per bit.
    pub bus_pj_per_bit: Picojoules,
    /// Global data line transfer inside the chip, per bit.
    pub gdl_pj_per_bit: Picojoules,
    /// Digital bitwise-logic energy per bit at a row/IO buffer (used by
    /// inter-subarray/inter-bank ops and, pervasively, by AC-PIM).
    pub logic_pj_per_bit: Picojoules,
    /// Bit-line precharge per bit of the row.
    pub precharge_pj_per_bit: Picojoules,
    /// SEC-DED syndrome/encode XOR-tree energy per protected data bit
    /// (a handful of XOR gate evaluations — cheaper than a full logic
    /// pass). Check-bit sensing/writing is charged separately at the
    /// array's own per-bit rates.
    pub ecc_pj_per_bit: Picojoules,
    /// Standby (idle) power per stored bit, picowatts. DRAM pays refresh
    /// plus retention leakage; non-volatile cells hold state for free —
    /// the "ultra-low stand-by power" the paper's §1 credits NVM with.
    pub standby_pw_per_bit: f64,
}

impl EnergyParams {
    /// The paper's 1T1R PCM main memory.
    #[must_use]
    pub fn pcm() -> Self {
        EnergyParams {
            act_pj_per_bit: 0.01,
            sense_pj_per_bit: 0.05,
            write_pj_per_bit: 1.0,
            bus_pj_per_bit: 15.0,
            gdl_pj_per_bit: 1.0,
            logic_pj_per_bit: 0.1,
            precharge_pj_per_bit: 0.005,
            ecc_pj_per_bit: 0.02,
            standby_pw_per_bit: 0.15,
        }
    }

    /// A 65 nm DDR3 DRAM (for the S-DRAM baseline). DRAM reads are
    /// destructive, so activation includes the restore cost.
    #[must_use]
    pub fn dram() -> Self {
        EnergyParams {
            act_pj_per_bit: 0.10,
            sense_pj_per_bit: 0.02,
            write_pj_per_bit: 0.10,
            bus_pj_per_bit: 15.0,
            gdl_pj_per_bit: 0.5,
            logic_pj_per_bit: 0.1,
            precharge_pj_per_bit: 0.02,
            ecc_pj_per_bit: 0.02,
            standby_pw_per_bit: 14.6,
        }
    }

    /// STT-MRAM: cheap, fast writes compared with PCM.
    #[must_use]
    pub fn stt_mram() -> Self {
        EnergyParams {
            write_pj_per_bit: 0.3,
            ..EnergyParams::pcm()
        }
    }

    /// ReRAM: write energy between STT-MRAM and PCM.
    #[must_use]
    pub fn reram() -> Self {
        EnergyParams {
            write_pj_per_bit: 0.6,
            ..EnergyParams::pcm()
        }
    }

    /// Energy to activate `rows` rows of `row_bits` bits each.
    #[must_use]
    pub fn activate_pj(&self, rows: usize, row_bits: u64) -> Picojoules {
        rows as f64 * row_bits as f64 * self.act_pj_per_bit
    }

    /// Energy to sense `bits` bits once through the SAs.
    #[must_use]
    pub fn sense_pj(&self, bits: u64) -> Picojoules {
        bits as f64 * self.sense_pj_per_bit
    }

    /// Energy to write `bits` bits into the array.
    #[must_use]
    pub fn write_pj(&self, bits: u64) -> Picojoules {
        bits as f64 * self.write_pj_per_bit
    }

    /// Energy to move `bits` bits over the off-chip bus.
    #[must_use]
    pub fn bus_pj(&self, bits: u64) -> Picojoules {
        bits as f64 * self.bus_pj_per_bit
    }

    /// Energy to move `bits` bits over the global data lines.
    #[must_use]
    pub fn gdl_pj(&self, bits: u64) -> Picojoules {
        bits as f64 * self.gdl_pj_per_bit
    }

    /// Energy for a digital bitwise-logic pass over `bits` bits.
    #[must_use]
    pub fn logic_pj(&self, bits: u64) -> Picojoules {
        bits as f64 * self.logic_pj_per_bit
    }

    /// Energy for one SEC-DED syndrome/encode pass over `bits` protected
    /// data bits (XOR tree only — check-bit array traffic is charged at
    /// the sense/write rates by the caller).
    #[must_use]
    pub fn ecc_pj(&self, bits: u64) -> Picojoules {
        bits as f64 * self.ecc_pj_per_bit
    }

    /// Energy to precharge a row of `row_bits` bits.
    #[must_use]
    pub fn precharge_pj(&self, row_bits: u64) -> Picojoules {
        row_bits as f64 * self.precharge_pj_per_bit
    }

    /// Standby power of `capacity_bits` of this memory, in watts.
    #[must_use]
    pub fn standby_w(&self, capacity_bits: u64) -> f64 {
        capacity_bits as f64 * self.standby_pw_per_bit * 1e-12
    }

    /// Standby energy burned holding `capacity_bits` idle for
    /// `seconds`, in joules.
    #[must_use]
    pub fn standby_j(&self, capacity_bits: u64, seconds: f64) -> f64 {
        self.standby_w(capacity_bits) * seconds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pcm_writes_cost_more_than_reads() {
        let e = EnergyParams::pcm();
        assert!(e.write_pj_per_bit > e.sense_pj_per_bit);
        assert!(e.write_pj_per_bit > e.act_pj_per_bit);
    }

    #[test]
    fn bus_dominates_array_access() {
        // The "memory wall" premise: moving a bit off-chip costs far more
        // than touching it in the array.
        for e in [EnergyParams::pcm(), EnergyParams::dram()] {
            assert!(e.bus_pj_per_bit > 10.0 * e.sense_pj_per_bit);
        }
    }

    #[test]
    fn helpers_scale_linearly() {
        let e = EnergyParams::pcm();
        assert!((e.sense_pj(1000) - 1000.0 * e.sense_pj_per_bit).abs() < 1e-9);
        assert!((e.activate_pj(4, 100) - 4.0 * 100.0 * e.act_pj_per_bit).abs() < 1e-9);
        assert!((e.write_pj(0)).abs() < 1e-12);
    }

    #[test]
    fn nvm_standby_is_orders_below_dram() {
        // The paper's §1 NVM selling point: no refresh, no retention
        // leakage. A 64 GB PCM system idles ~100x below DRAM.
        let bits = 64u64 << 33; // 64 GB in bits
        let pcm = EnergyParams::pcm().standby_w(bits);
        let dram = EnergyParams::dram().standby_w(bits);
        assert!(dram > 50.0 * pcm, "dram {dram} W vs pcm {pcm} W");
        assert!((EnergyParams::pcm().standby_j(bits, 2.0) - 2.0 * pcm).abs() < 1e-12);
    }

    #[test]
    fn stt_writes_are_cheaper_than_pcm() {
        assert!(EnergyParams::stt_mram().write_pj_per_bit < EnergyParams::pcm().write_pj_per_bit);
        assert!(EnergyParams::reram().write_pj_per_bit < EnergyParams::pcm().write_pj_per_bit);
    }
}
