//! The modified write driver (WD).
//!
//! Normally a WD's input comes from the data bus. Pinatubo adds a path that
//! feeds the SA output straight into the WD (paper Fig. 8a), so an
//! operation result can be written back to a row of the same subarray as an
//! *in-place update* — never touching the global data lines or the I/O bus.

use crate::technology::Technology;

/// Where the write driver takes its data from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WriteSource {
    /// Conventional path: data arrives over the (global) data bus.
    Bus,
    /// Pinatubo's added path: the local SA output feeds the WD directly.
    SenseAmp,
}

/// The polarity of the write current a bit needs.
///
/// PCM is unipolar (both SET and RESET use one polarity, differing in pulse
/// shape); STT-MRAM and ReRAM need opposite polarities on the bit line /
/// source line pair (paper §4.2: "We do not show PCM's WD since it is
/// simpler with unidirectional write current").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WritePolarity {
    /// Current from bit line to source line.
    Forward,
    /// Current from source line to bit line (bipolar technologies only).
    Reverse,
}

/// A write driver for one mat column.
#[derive(Debug, Clone)]
pub struct WriteDriver {
    bipolar: bool,
}

impl WriteDriver {
    /// Builds a WD for the given technology.
    #[must_use]
    pub fn new(tech: &Technology) -> Self {
        WriteDriver {
            bipolar: tech.bipolar_write(),
        }
    }

    /// Whether this driver can reverse current polarity.
    #[must_use]
    pub fn is_bipolar(&self) -> bool {
        self.bipolar
    }

    /// The current polarity used to write `bit`.
    ///
    /// Unipolar drivers always drive forward; bipolar drivers reverse for
    /// RESET (`false`).
    #[must_use]
    pub fn polarity_for(&self, bit: bool) -> WritePolarity {
        if self.bipolar && !bit {
            WritePolarity::Reverse
        } else {
            WritePolarity::Forward
        }
    }

    /// Drives one bit from `source` into a cell, returning the value the
    /// cell will hold. The model is functional — energy/time are accounted
    /// by [`crate::energy`] / [`crate::timing`] at the command level — but
    /// keeping the source explicit lets the architecture layer assert that
    /// in-place updates never cross the bus.
    #[must_use]
    pub fn drive(&self, source: WriteSource, bit: bool) -> DrivenBit {
        DrivenBit {
            bit,
            source,
            polarity: self.polarity_for(bit),
        }
    }
}

/// The outcome of one write-driver firing: what was written, from where,
/// with which polarity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DrivenBit {
    bit: bool,
    source: WriteSource,
    polarity: WritePolarity,
}

impl DrivenBit {
    /// The bit value driven into the cell.
    #[must_use]
    pub fn bit(self) -> bool {
        self.bit
    }

    /// Where the data came from.
    #[must_use]
    pub fn source(self) -> WriteSource {
        self.source
    }

    /// The current polarity used.
    #[must_use]
    pub fn polarity(self) -> WritePolarity {
        self.polarity
    }

    /// The value a *healthy* cell holds after this pulse, given whether
    /// the stochastic programming failure fired (`flipped`). Stuck cells
    /// ignore the pulse entirely and are resolved by the caller. Expressed
    /// as an XOR so the word-packed write path (whole-row `data ^ flips`)
    /// and the per-cell reference path commit through the same definition.
    #[must_use]
    pub fn committed(self, flipped: bool) -> bool {
        self.bit ^ flipped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pcm_driver_is_unipolar() {
        let wd = WriteDriver::new(&Technology::pcm());
        assert!(!wd.is_bipolar());
        assert_eq!(wd.polarity_for(true), WritePolarity::Forward);
        assert_eq!(wd.polarity_for(false), WritePolarity::Forward);
    }

    #[test]
    fn stt_driver_reverses_for_reset() {
        let wd = WriteDriver::new(&Technology::stt_mram());
        assert!(wd.is_bipolar());
        assert_eq!(wd.polarity_for(true), WritePolarity::Forward);
        assert_eq!(wd.polarity_for(false), WritePolarity::Reverse);
    }

    #[test]
    fn drive_records_source_and_value() {
        let wd = WriteDriver::new(&Technology::reram());
        let d = wd.drive(WriteSource::SenseAmp, true);
        assert!(d.bit());
        assert_eq!(d.source(), WriteSource::SenseAmp);
        assert_eq!(d.polarity(), WritePolarity::Forward);

        let d = wd.drive(WriteSource::Bus, false);
        assert_eq!(d.source(), WriteSource::Bus);
        assert_eq!(d.polarity(), WritePolarity::Reverse);
    }

    #[test]
    fn committed_is_the_pulse_xor_the_failure() {
        let wd = WriteDriver::new(&Technology::pcm());
        for bit in [false, true] {
            let d = wd.drive(WriteSource::Bus, bit);
            assert_eq!(d.committed(false), bit);
            assert_eq!(d.committed(true), !bit);
        }
    }
}
