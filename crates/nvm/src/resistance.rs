//! Resistance arithmetic for bit-line sensing.
//!
//! When Pinatubo opens several rows of one bit-line column at once, the SA
//! sees the *parallel combination* of the open cells' resistances (paper
//! §4.2: `R_low || R_high` and friends, where `||` is product-over-sum).
//! This module provides that arithmetic plus worst-case interval bounds used
//! by the sense-margin analysis.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, Div, Mul};

/// A resistance in ohms.
///
/// Newtype over `f64` so resistances cannot be confused with energies or
/// times elsewhere in the simulator. Resistances are always finite and
/// strictly positive in this model; [`Ohms::new`] enforces that.
///
/// # Example
///
/// ```
/// use pinatubo_nvm::resistance::{parallel, Ohms};
///
/// let r = parallel([Ohms::new(10_000.0), Ohms::new(10_000.0)]);
/// assert!((r.get() - 5_000.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Ohms(f64);

impl Ohms {
    /// Creates a resistance value.
    ///
    /// # Panics
    ///
    /// Panics if `ohms` is not finite and strictly positive — a bit line
    /// always has some resistance, and zero/negative/NaN values would make
    /// the parallel-combination math meaningless.
    #[must_use]
    pub fn new(ohms: f64) -> Self {
        assert!(
            ohms.is_finite() && ohms > 0.0,
            "resistance must be finite and positive, got {ohms}"
        );
        Ohms(ohms)
    }

    /// Returns the raw value in ohms.
    #[must_use]
    pub fn get(self) -> f64 {
        self.0
    }

    /// Parallel combination of two resistances (product over sum).
    #[must_use]
    pub fn parallel_with(self, other: Ohms) -> Ohms {
        Ohms(self.0 * other.0 / (self.0 + other.0))
    }

    /// Geometric mean of two resistances.
    ///
    /// Sense references sit *between* two resistance regions; the geometric
    /// mean maximizes the multiplicative margin on both sides, which is how
    /// current-sensing references are placed in practice.
    #[must_use]
    pub fn geometric_mean(self, other: Ohms) -> Ohms {
        Ohms((self.0 * other.0).sqrt())
    }
}

impl fmt::Display for Ohms {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1e6 {
            write!(f, "{:.2} Mohm", self.0 / 1e6)
        } else if self.0 >= 1e3 {
            write!(f, "{:.2} kohm", self.0 / 1e3)
        } else {
            write!(f, "{:.2} ohm", self.0)
        }
    }
}

impl Add for Ohms {
    type Output = Ohms;
    fn add(self, rhs: Ohms) -> Ohms {
        Ohms(self.0 + rhs.0)
    }
}

impl Mul<f64> for Ohms {
    type Output = Ohms;
    fn mul(self, rhs: f64) -> Ohms {
        Ohms::new(self.0 * rhs)
    }
}

impl Div<f64> for Ohms {
    type Output = Ohms;
    fn div(self, rhs: f64) -> Ohms {
        Ohms::new(self.0 / rhs)
    }
}

/// Conductance in siemens; the natural domain for parallel combination.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Siemens(f64);

impl Siemens {
    /// Creates a conductance value.
    ///
    /// # Panics
    ///
    /// Panics if `siemens` is not finite and strictly positive.
    #[must_use]
    pub fn new(siemens: f64) -> Self {
        assert!(
            siemens.is_finite() && siemens > 0.0,
            "conductance must be finite and positive, got {siemens}"
        );
        Siemens(siemens)
    }

    /// Returns the raw value in siemens.
    #[must_use]
    pub fn get(self) -> f64 {
        self.0
    }
}

impl From<Ohms> for Siemens {
    fn from(r: Ohms) -> Siemens {
        Siemens(1.0 / r.get())
    }
}

impl From<Siemens> for Ohms {
    fn from(g: Siemens) -> Ohms {
        Ohms::new(1.0 / g.get())
    }
}

impl Add for Siemens {
    type Output = Siemens;
    fn add(self, rhs: Siemens) -> Siemens {
        Siemens(self.0 + rhs.0)
    }
}

impl Sum for Siemens {
    fn sum<I: Iterator<Item = Siemens>>(iter: I) -> Siemens {
        let total: f64 = iter.map(Siemens::get).sum();
        Siemens::new(total)
    }
}

/// Parallel combination of any number of resistances.
///
/// This is the resistance the sense amplifier observes on a bit line with
/// all the given cells open.
///
/// # Panics
///
/// Panics if the iterator is empty — an open bit line with no cells has no
/// defined resistance, and the caller (the SA model) always knows how many
/// rows it activated.
///
/// # Example
///
/// ```
/// use pinatubo_nvm::resistance::{parallel, Ohms};
///
/// // One low-resistance cell dominates many high-resistance ones:
/// let r = parallel(
///     std::iter::once(Ohms::new(10e3)).chain((0..127).map(|_| Ohms::new(1e6))),
/// );
/// assert!(r.get() < 10e3);
/// ```
#[must_use]
pub fn parallel<I>(resistances: I) -> Ohms
where
    I: IntoIterator<Item = Ohms>,
{
    let mut total = 0.0_f64;
    let mut any = false;
    for r in resistances {
        total += 1.0 / r.get();
        any = true;
    }
    assert!(any, "parallel combination of zero resistances is undefined");
    Ohms::new(1.0 / total)
}

/// A worst-case resistance interval `[lo, hi]` under process variation.
///
/// The sense-margin analysis works with intervals rather than point values:
/// a region of cell states is separable from another exactly when their
/// intervals do not overlap (paper Fig. 5, "we assume the variation is well
/// controlled so that no overlap exists").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResistanceInterval {
    lo: Ohms,
    hi: Ohms,
}

impl ResistanceInterval {
    /// Creates an interval from its bounds.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    #[must_use]
    pub fn new(lo: Ohms, hi: Ohms) -> Self {
        assert!(lo <= hi, "interval bounds out of order: {lo} > {hi}");
        ResistanceInterval { lo, hi }
    }

    /// Interval for a nominal resistance with symmetric relative spread
    /// `rel` (e.g. `0.28` for ±28%).
    ///
    /// # Panics
    ///
    /// Panics if `rel` is not in `[0, 1)`.
    #[must_use]
    pub fn with_relative_spread(nominal: Ohms, rel: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&rel),
            "relative spread must be in [0, 1), got {rel}"
        );
        ResistanceInterval {
            lo: nominal * (1.0 - rel),
            hi: nominal * (1.0 + rel),
        }
    }

    /// Lower bound.
    #[must_use]
    pub fn lo(self) -> Ohms {
        self.lo
    }

    /// Upper bound.
    #[must_use]
    pub fn hi(self) -> Ohms {
        self.hi
    }

    /// Whether this interval lies entirely below `other` with a strictly
    /// positive gap.
    #[must_use]
    pub fn strictly_below(self, other: ResistanceInterval) -> bool {
        self.hi.get() < other.lo.get()
    }

    /// Worst-case parallel combination of a set of cell intervals.
    ///
    /// Parallel resistance is monotone in every branch resistance, so the
    /// interval of the combination is the combination of the interval
    /// endpoints.
    ///
    /// # Panics
    ///
    /// Panics if `intervals` is empty.
    #[must_use]
    pub fn parallel<I>(intervals: I) -> ResistanceInterval
    where
        I: IntoIterator<Item = ResistanceInterval> + Clone,
    {
        let lo = parallel(intervals.clone().into_iter().map(ResistanceInterval::lo));
        let hi = parallel(intervals.into_iter().map(ResistanceInterval::hi));
        ResistanceInterval::new(lo, hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_of_equal_resistances_divides() {
        let r = parallel((0..4).map(|_| Ohms::new(1000.0)));
        assert!((r.get() - 250.0).abs() < 1e-9);
    }

    #[test]
    fn parallel_matches_product_over_sum_for_two() {
        let a = Ohms::new(10_000.0);
        let b = Ohms::new(1_000_000.0);
        let expect = 10_000.0 * 1_000_000.0 / 1_010_000.0;
        assert!((parallel([a, b]).get() - expect).abs() < 1e-6);
        assert!((a.parallel_with(b).get() - expect).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "undefined")]
    fn parallel_of_nothing_panics() {
        let _ = parallel(std::iter::empty::<Ohms>());
    }

    #[test]
    #[should_panic(expected = "finite and positive")]
    fn zero_resistance_rejected() {
        let _ = Ohms::new(0.0);
    }

    #[test]
    fn conductance_round_trips() {
        let r = Ohms::new(2_500.0);
        let g = Siemens::from(r);
        let back = Ohms::from(g);
        assert!((back.get() - 2_500.0).abs() < 1e-9);
    }

    #[test]
    fn geometric_mean_sits_between() {
        let lo = Ohms::new(10e3);
        let hi = Ohms::new(1e6);
        let m = lo.geometric_mean(hi);
        assert!(m > lo && m < hi);
        assert!((m.get() - 100e3).abs() < 1.0);
    }

    #[test]
    fn interval_separation_detects_gap() {
        let a = ResistanceInterval::new(Ohms::new(1.0), Ohms::new(2.0));
        let b = ResistanceInterval::new(Ohms::new(3.0), Ohms::new(4.0));
        assert!(a.strictly_below(b));
        assert!(!b.strictly_below(a));
        let overlapping = ResistanceInterval::new(Ohms::new(1.5), Ohms::new(3.5));
        assert!(!a.strictly_below(overlapping));
    }

    #[test]
    fn interval_parallel_contains_point_combinations() {
        let a = ResistanceInterval::with_relative_spread(Ohms::new(10e3), 0.2);
        let b = ResistanceInterval::with_relative_spread(Ohms::new(1e6), 0.2);
        let combined = ResistanceInterval::parallel([a, b]);
        let nominal = parallel([Ohms::new(10e3), Ohms::new(1e6)]);
        assert!(combined.lo() <= nominal && nominal <= combined.hi());
    }

    #[test]
    fn display_uses_human_units() {
        assert_eq!(Ohms::new(1.5e6).to_string(), "1.50 Mohm");
        assert_eq!(Ohms::new(10e3).to_string(), "10.00 kohm");
        assert_eq!(Ohms::new(47.0).to_string(), "47.00 ohm");
    }
}
