//! The modified local word-line (LWL) driver.
//!
//! A conventional driver amplifies one decoded address at a time; Pinatubo
//! adds a feedback transistor (a latch) and a RESET transistor to each
//! driver so that successively decoded addresses *accumulate*: every
//! selected word line stays at VDD until the next RESET (paper Fig. 7).
//! This is what turns a sequence of ordinary row activations into one
//! multi-row activation.

use crate::NvmError;

/// The latch bank of one subarray's LWL drivers.
///
/// Tracks which local word lines are currently held high. The capacity is
/// the maximum number of rows the attached sense amplifier can combine —
/// latching more would waste activations the SA cannot use, so the model
/// treats it as an error.
///
/// # Example
///
/// ```
/// use pinatubo_nvm::lwl_driver::LwlDriverBank;
///
/// # fn main() -> Result<(), pinatubo_nvm::NvmError> {
/// let mut bank = LwlDriverBank::new(128);
/// bank.reset();
/// bank.latch(3)?;
/// bank.latch(71)?;
/// assert_eq!(bank.open_rows(), &[3, 71]);
/// bank.reset();
/// assert!(bank.open_rows().is_empty());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LwlDriverBank {
    capacity: usize,
    open: Vec<usize>,
}

impl LwlDriverBank {
    /// A driver bank able to hold `capacity` rows open at once.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "driver bank capacity must be positive");
        LwlDriverBank {
            capacity,
            open: Vec::new(),
        }
    }

    /// The latch capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Issues the RESET signal: every latched word line drops back to
    /// ground. Must precede each multi-row activation (paper Fig. 7: "it
    /// requires to send out the RESET signal first").
    pub fn reset(&mut self) {
        self.open.clear();
    }

    /// Decodes and latches one row address; the word line stays high until
    /// the next [`LwlDriverBank::reset`]. Latching an already-open row is
    /// idempotent (the latch is already holding VDD).
    ///
    /// # Errors
    ///
    /// Returns [`NvmError::TooManyOpenRows`] if the latch bank is full.
    pub fn latch(&mut self, local_row: usize) -> Result<(), NvmError> {
        if self.open.contains(&local_row) {
            return Ok(());
        }
        if self.open.len() == self.capacity {
            return Err(NvmError::TooManyOpenRows {
                requested: self.open.len() + 1,
                capacity: self.capacity,
            });
        }
        self.open.push(local_row);
        Ok(())
    }

    /// The rows currently held open, in latch order.
    #[must_use]
    pub fn open_rows(&self) -> &[usize] {
        &self.open
    }

    /// Number of rows currently held open.
    #[must_use]
    pub fn open_count(&self) -> usize {
        self.open.len()
    }

    /// Whether a given row is currently open.
    #[must_use]
    pub fn is_open(&self, local_row: usize) -> bool {
        self.open.contains(&local_row)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latch_accumulates_until_reset() {
        let mut bank = LwlDriverBank::new(4);
        bank.latch(0).expect("first row latches");
        bank.latch(2).expect("second row latches");
        bank.latch(7).expect("third row latches");
        assert_eq!(bank.open_count(), 3);
        assert!(bank.is_open(2));
        assert!(!bank.is_open(1));
        bank.reset();
        assert_eq!(bank.open_count(), 0);
    }

    #[test]
    fn relatching_an_open_row_is_idempotent() {
        let mut bank = LwlDriverBank::new(2);
        bank.latch(5).expect("latches");
        bank.latch(5).expect("idempotent relatch");
        assert_eq!(bank.open_rows(), &[5]);
    }

    #[test]
    fn overflow_is_an_error() {
        let mut bank = LwlDriverBank::new(2);
        bank.latch(0).expect("row 0");
        bank.latch(1).expect("row 1");
        let err = bank.latch(2).expect_err("third row must overflow");
        assert_eq!(
            err,
            NvmError::TooManyOpenRows {
                requested: 3,
                capacity: 2
            }
        );
        // The failed latch must not corrupt the open set.
        assert_eq!(bank.open_rows(), &[0, 1]);
    }

    #[test]
    fn reset_recovers_capacity() {
        let mut bank = LwlDriverBank::new(1);
        bank.latch(9).expect("fills the single latch");
        bank.reset();
        bank.latch(10).expect("latch reusable after reset");
        assert_eq!(bank.open_rows(), &[10]);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_is_rejected() {
        let _ = LwlDriverBank::new(0);
    }
}
