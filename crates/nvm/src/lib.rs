//! Device- and circuit-level models for resistive non-volatile memories.
//!
//! This crate is the bottom layer of the Pinatubo reproduction. It models the
//! pieces of an NVM chip that the paper modifies to obtain in-memory bitwise
//! computation:
//!
//! * [`technology`] — technology presets for PCM, STT-MRAM and ReRAM
//!   (resistance levels, ON/OFF ratio, process variation, write behaviour),
//!   plus a DRAM preset used by the S-DRAM baseline.
//! * [`resistance`] — resistance arithmetic: parallel combination of open
//!   cells on a bit line and worst-case interval bounds under variation.
//! * [`cell`] — a single 1T1R resistive cell storing one bit.
//! * [`sense_amp`] — the current sense amplifier (CSA) with switchable
//!   reference circuits. This is the heart of Pinatubo: shifting the
//!   reference turns a read into an OR or an AND over all open rows
//!   (paper Fig. 5 and Fig. 6).
//! * [`lwl_driver`] — the modified local word-line driver that latches
//!   several decoded addresses so multiple rows stay open at once
//!   (paper Fig. 7).
//! * [`write_driver`] — the write driver with the added in-place-update
//!   path from the SA output (paper Fig. 8a).
//! * [`fault`] — deterministic, seedable fault injection (stuck-at cells,
//!   drift, process variation, transient sense flips) so the layers above
//!   can exercise detection and recovery.
//! * [`timing`], [`energy`], [`area`] — calibrated parameter tables playing
//!   the role NVSim / CACTI-3DD play in the paper's methodology.
//!
//! # Example
//!
//! Sense a 4-row OR the way the modified SA does — by comparing the parallel
//! bit-line resistance against the OR reference:
//!
//! ```
//! use pinatubo_nvm::technology::Technology;
//! use pinatubo_nvm::sense_amp::{CurrentSenseAmp, SenseMode};
//!
//! # fn main() -> Result<(), pinatubo_nvm::NvmError> {
//! let tech = Technology::pcm();
//! let sa = CurrentSenseAmp::new(&tech);
//! // Cells storing 0, 0, 1, 0 — their nominal resistances in parallel.
//! let bits = [false, false, true, false];
//! let bl = pinatubo_nvm::resistance::parallel(
//!     bits.iter().map(|&b| tech.cell_resistance(b)),
//! );
//! let out = sa.sense(bl, SenseMode::or(4)?)?;
//! assert!(out); // OR of the open rows is 1
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod area;
pub mod cell;
pub mod energy;
pub mod fault;
pub mod lwl_driver;
pub mod resistance;
pub mod rng;
pub mod sense_amp;
pub mod technology;
pub mod timing;
pub mod write_driver;
pub mod yield_analysis;

pub use area::{AreaBreakdown, AreaModel};
pub use cell::Cell;
pub use energy::EnergyParams;
pub use fault::{CellHealth, CellId, EventKey, FaultModel, FaultState};
pub use resistance::{parallel, Ohms};
pub use rng::SimRng;
pub use sense_amp::{CurrentSenseAmp, SenseMargin, SenseMode};
pub use technology::{Technology, TechnologyKind};
pub use timing::TimingParams;

use std::error::Error;
use std::fmt;

/// Errors produced by the device/circuit layer.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum NvmError {
    /// The requested operation needs more simultaneously open rows than the
    /// sense margin of this technology supports.
    FanInExceeded {
        /// Rows the caller asked to combine.
        requested: usize,
        /// Maximum supported by the technology for this operation.
        supported: usize,
    },
    /// Multi-row AND beyond two rows cannot be sensed reliably on any
    /// resistive technology (paper §4.2 footnote 3).
    UnsupportedAndFanIn {
        /// Rows the caller asked to AND.
        requested: usize,
    },
    /// A fan-in of zero or one is not a bitwise operation.
    DegenerateFanIn,
    /// The sensed bit-line resistance falls inside the forbidden gap between
    /// logic regions — the circuit would be metastable. Raised only by the
    /// strict sensing entry points used in validation tests.
    AmbiguousSense {
        /// The offending bit-line resistance in ohms.
        bitline_ohms: f64,
    },
    /// The LWL driver was asked to latch more rows than its latch bank holds.
    TooManyOpenRows {
        /// Rows already latched plus the new request.
        requested: usize,
        /// Capacity of the latch bank.
        capacity: usize,
    },
}

impl fmt::Display for NvmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NvmError::FanInExceeded {
                requested,
                supported,
            } => write!(
                f,
                "fan-in of {requested} rows exceeds the {supported}-row sense margin"
            ),
            NvmError::UnsupportedAndFanIn { requested } => write!(
                f,
                "multi-row AND of {requested} rows is not sensible on resistive cells"
            ),
            NvmError::DegenerateFanIn => {
                write!(f, "bitwise operations need at least two operand rows")
            }
            NvmError::AmbiguousSense { bitline_ohms } => write!(
                f,
                "bit-line resistance {bitline_ohms:.1} ohm falls between logic regions"
            ),
            NvmError::TooManyOpenRows {
                requested,
                capacity,
            } => write!(
                f,
                "cannot hold {requested} rows open: latch bank capacity is {capacity}"
            ),
        }
    }
}

impl Error for NvmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_is_lowercase_and_unpunctuated() {
        let messages = [
            NvmError::FanInExceeded {
                requested: 9,
                supported: 2,
            }
            .to_string(),
            NvmError::UnsupportedAndFanIn { requested: 3 }.to_string(),
            NvmError::DegenerateFanIn.to_string(),
            NvmError::AmbiguousSense { bitline_ohms: 1.0 }.to_string(),
            NvmError::TooManyOpenRows {
                requested: 3,
                capacity: 2,
            }
            .to_string(),
        ];
        for m in messages {
            assert!(!m.is_empty());
            assert!(!m.ends_with('.'), "{m:?} should not end with a period");
            assert!(
                m.chars().next().expect("non-empty").is_lowercase(),
                "{m:?} should start lowercase"
            );
        }
    }

    #[test]
    fn errors_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NvmError>();
    }
}
