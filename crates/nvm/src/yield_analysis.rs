//! Monte-Carlo yield analysis of the modified sense amplifier.
//!
//! The interval analysis in [`crate::sense_amp`] gives a binary verdict —
//! a sense margin either closes under worst-case variation or it does not.
//! Real design sign-off also wants the *failure probability* when margins
//! are pushed: this module samples cell resistances stochastically and
//! measures the sense-error rate per (technology, fan-in) point, the
//! quantitative counterpart of the paper's statement that "the variation
//! is well controlled so that no overlap exists between the '1' and '0'
//! region" (Fig. 5).
//!
//! Two sampling models are provided:
//!
//! * [`VariationModel::BoundedUniform`] — uniform over the worst-case
//!   interval. Inside the spec this can never fail (the margin analysis
//!   guarantees it), so it validates the analysis itself.
//! * [`VariationModel::Gaussian`] — unbounded log-space Gaussian whose
//!   ±3σ points match the interval bounds. Tails now exist, so error
//!   rates are small but non-zero near the fan-in limit — the realistic
//!   sign-off view.

use crate::resistance::parallel;
use crate::rng::SimRng;
use crate::sense_amp::{CurrentSenseAmp, SenseMode};
use crate::technology::Technology;
use crate::NvmError;

/// How cell resistances scatter around their nominal values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VariationModel {
    /// Uniform over the worst-case interval (the margin analysis'
    /// assumption, exactly).
    BoundedUniform,
    /// Log-space Gaussian with σ = spread/3 (±3σ at the interval bounds).
    Gaussian,
}

/// The outcome of one Monte-Carlo sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct YieldReport {
    /// Trials run.
    pub trials: u64,
    /// Trials whose sensed value differed from the logical truth.
    pub errors: u64,
}

impl YieldReport {
    /// The sense-error rate.
    #[must_use]
    pub fn error_rate(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            self.errors as f64 / self.trials as f64
        }
    }
}

/// Fraction of the variation budget that is systematic (die-level,
/// common to every cell of a trial). Resistance variation in NVM arrays
/// is dominated by correlated effects — programming conditions,
/// temperature, drift — with a smaller independent residual; fully
/// independent sampling would average out over a wide parallel
/// combination and hide exactly the failures the margin analysis guards
/// against.
const SYSTEMATIC_SHARE: f64 = 0.875;

/// Splits a technology's total variation budget into the systematic
/// (die-level) and residual (per-cell) relative half-widths, such that
/// `(1 + v_sys)(1 + v_res) = 1 + v` exactly — bounded sampling therefore
/// never leaves the worst-case interval. Shared by the Monte-Carlo sweep
/// and the counter-keyed fault draws in [`crate::fault`], which must use
/// identical numerics.
#[must_use]
pub(crate) fn variation_split(tech: &Technology) -> (f64, f64) {
    let v = tech.variation();
    let v_res = v * (1.0 - SYSTEMATIC_SHARE);
    let v_sys = (1.0 + v) / (1.0 + v_res) - 1.0;
    (v_sys, v_res)
}

/// Per-cell residual resistance-factor sampler, drawn once per sensed
/// column on top of the trial-wide systematic factor.
pub(crate) type ResidualSampler = Box<dyn FnMut(&mut SimRng) -> f64>;

/// Per-trial systematic factor plus a per-cell residual sampler.
pub(crate) fn sample_factors(
    tech: &Technology,
    model: VariationModel,
    rng: &mut SimRng,
) -> (f64, ResidualSampler) {
    let (v_sys, v_res) = variation_split(tech);
    match model {
        VariationModel::BoundedUniform => {
            let global = rng.gen_range_f64(1.0 - v_sys, 1.0 + v_sys);
            let f = move |rng: &mut SimRng| rng.gen_range_f64(1.0 - v_res, 1.0 + v_res);
            (global, Box::new(f) as ResidualSampler)
        }
        VariationModel::Gaussian => {
            // ±3σ at the worst-case bounds, in log space so factors stay
            // positive.
            let sigma_sys = (1.0 + v_sys).ln() / 3.0;
            let sigma_res = (1.0 + v_res).ln() / 3.0;
            let global = (sigma_sys * rng.gen_gaussian()).exp();
            let f = move |rng: &mut SimRng| (sigma_res * rng.gen_gaussian()).exp();
            (global, Box::new(f) as ResidualSampler)
        }
    }
}

/// Monte-Carlo sense-error rate for an OR of `fan_in` rows.
///
/// Every trial draws a random bit pattern (biased so the hard
/// single-one-among-zeros cases appear often), samples each cell's
/// resistance, senses the parallel combination and compares with the
/// logical OR.
///
/// # Errors
///
/// Returns the underlying fan-in errors from [`SenseMode::or`] for
/// degenerate fan-ins. Fan-ins beyond the margin limit are allowed here —
/// measuring how badly they fail is the point — so the SA's own fan-in
/// check is bypassed by sensing against the reference directly.
pub fn or_error_rate(
    tech: &Technology,
    fan_in: usize,
    model: VariationModel,
    trials: u64,
    rng: &mut SimRng,
) -> Result<YieldReport, NvmError> {
    let mode = SenseMode::or(fan_in)?;
    let sa = CurrentSenseAmp::new(tech);
    let margin = sa.margin(mode);
    let mut errors = 0u64;
    let mut bits = vec![false; fan_in];
    for trial in 0..trials {
        // Cycle through the interesting patterns: all zeros, exactly one
        // one (the worst case), and random fills.
        bits.fill(false);
        match trial % 4 {
            0 => {}
            1 => bits[(trial as usize / 4) % fan_in] = true,
            _ => {
                for b in bits.iter_mut() {
                    *b = rng.gen_bool(0.5);
                }
            }
        }
        let (global, mut residual) = sample_factors(tech, model, rng);
        let bl = parallel(bits.iter().map(|&b| {
            let factor = global * residual(rng);
            crate::resistance::Ohms::new(tech.cell_resistance(b).get() * factor)
        }));
        let sensed = bl < margin.reference();
        if sensed != bits.iter().any(|&b| b) {
            errors += 1;
        }
    }
    Ok(YieldReport { trials, errors })
}

/// The largest OR fan-in whose Gaussian-model error rate stays below
/// `target_ber` over `trials` trials per point.
///
/// # Errors
///
/// Propagates sampling errors from [`or_error_rate`].
pub fn max_reliable_or_fan_in(
    tech: &Technology,
    target_ber: f64,
    trials: u64,
    rng: &mut SimRng,
) -> Result<usize, NvmError> {
    let mut best = 1;
    let mut fan_in = 2;
    while fan_in <= 512 {
        let report = or_error_rate(tech, fan_in, VariationModel::Gaussian, trials, rng)?;
        if report.error_rate() > target_ber {
            break;
        }
        best = fan_in;
        fan_in *= 2;
    }
    Ok(best)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_spec_uniform_sampling_never_errs() {
        let tech = Technology::pcm();
        let mut rng = SimRng::seed_from_u64(0x1EAD);
        for fan_in in [2usize, 16, 128] {
            let report = or_error_rate(
                &tech,
                fan_in,
                VariationModel::BoundedUniform,
                4000,
                &mut rng,
            )
            .expect("valid fan-in");
            assert_eq!(
                report.errors, 0,
                "fan-in {fan_in}: the closed margin guarantees zero errors in-spec"
            );
        }
    }

    #[test]
    fn beyond_margin_fan_in_shows_errors() {
        // Far past the 128-row limit the '1' and '0' regions overlap and
        // even bounded sampling fails.
        let tech = Technology::pcm();
        let mut rng = SimRng::seed_from_u64(0xBAD);
        let report = or_error_rate(&tech, 512, VariationModel::BoundedUniform, 4000, &mut rng)
            .expect("valid fan-in");
        assert!(
            report.error_rate() > 0.01,
            "512-row OR must fail often, got {}",
            report.error_rate()
        );
    }

    #[test]
    fn gaussian_tails_fail_earlier_than_uniform_bounds() {
        let tech = Technology::pcm();
        let mut rng = SimRng::seed_from_u64(0x6A55);
        let reliable = max_reliable_or_fan_in(&tech, 1e-3, 2000, &mut rng).expect("sweep runs");
        assert!(
            (16..=256).contains(&reliable),
            "Gaussian-model reliable fan-in should be near the 128 cap, got {reliable}"
        );
    }

    #[test]
    fn stt_is_reliable_only_at_tiny_fan_in() {
        let tech = Technology::stt_mram();
        let mut rng = SimRng::seed_from_u64(0x57);
        let reliable = max_reliable_or_fan_in(&tech, 1e-3, 2000, &mut rng).expect("sweep runs");
        assert!(
            reliable <= 8,
            "low ON/OFF STT-MRAM cannot support wide ORs, got {reliable}"
        );
    }

    #[test]
    fn error_rate_is_zero_for_zero_trials() {
        assert_eq!(
            YieldReport {
                trials: 0,
                errors: 0
            }
            .error_rate(),
            0.0
        );
    }

    #[test]
    fn degenerate_fan_in_is_rejected() {
        let mut rng = SimRng::seed_from_u64(1);
        assert!(or_error_rate(
            &Technology::pcm(),
            1,
            VariationModel::Gaussian,
            10,
            &mut rng
        )
        .is_err());
    }
}
