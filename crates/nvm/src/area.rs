//! Silicon-area overhead model (paper Fig. 13).
//!
//! Pinatubo's area cost is a handful of analog add-ons: two extra reference
//! branches per SA (AND/OR), a capacitor and two transistors per SA (XOR),
//! a latch + reset transistor per LWL driver, and digital bitwise logic at
//! each bank's global row buffer (inter-subarray ops) and at the chip I/O
//! buffer (inter-bank ops). AC-PIM instead puts a digital compute datapath
//! at every SA column, which is what makes it an order of magnitude more
//! expensive.
//!
//! Per-site areas below are synthesis-calibrated constants (65 nm, playing
//! the role of the paper's synthesis-tool numbers); the site *counts* come
//! from the chip geometry, so the overhead responds to geometry ablations.

/// Square micrometres.
pub type SquareMicrons = f64;

/// Geometry-derived site counts plus calibrated per-site areas.
#[derive(Debug, Clone, PartialEq)]
pub struct AreaModel {
    /// Total chip area (array + periphery).
    pub chip_area_um2: SquareMicrons,
    /// Sense amplifiers on the chip (columns / mux ratio).
    pub sa_count: u64,
    /// Local word-line drivers on the chip (rows × subarrays).
    pub lwl_driver_count: u64,
    /// Banks per chip.
    pub bank_count: u64,
    /// Added AND/OR reference branches, per SA.
    pub and_or_um2_per_sa: SquareMicrons,
    /// Added XOR capacitor + transistors, per SA.
    pub xor_um2_per_sa: SquareMicrons,
    /// Added latch + reset transistor, per LWL driver.
    pub wl_act_um2_per_driver: SquareMicrons,
    /// Added bitwise logic at one bank's global row buffer.
    pub inter_sub_um2_per_bank: SquareMicrons,
    /// Added bitwise logic at the chip I/O buffer.
    pub inter_bank_um2_per_chip: SquareMicrons,
    /// AC-PIM's per-SA digital compute datapath (for the comparison bar).
    pub acpim_logic_um2_per_sa: SquareMicrons,
}

impl AreaModel {
    /// A 1 Gb, 65 nm 1T1R PCM chip: 45 mm² with 32 Ki SAs (mux ratio 32),
    /// 16 Ki LWL drivers and 8 banks.
    #[must_use]
    pub fn pcm_65nm() -> Self {
        AreaModel {
            chip_area_um2: 45.0e6,
            sa_count: 32 * 1024,
            lwl_driver_count: 16 * 1024,
            bank_count: 8,
            and_or_um2_per_sa: 0.27,
            xor_um2_per_sa: 0.82,
            wl_act_um2_per_driver: 1.37,
            inter_sub_um2_per_bank: 40_500.0,
            inter_bank_um2_per_chip: 40_500.0,
            acpim_logic_um2_per_sa: 76.8,
        }
    }

    /// Pinatubo's overhead broken down by component, as percentages of the
    /// chip area (the Fig. 13 pie).
    #[must_use]
    pub fn pinatubo_breakdown(&self) -> AreaBreakdown {
        let pct = |um2: SquareMicrons| 100.0 * um2 / self.chip_area_um2;
        AreaBreakdown {
            and_or_pct: pct(self.and_or_um2_per_sa * self.sa_count as f64),
            xor_pct: pct(self.xor_um2_per_sa * self.sa_count as f64),
            wl_activation_pct: pct(self.wl_act_um2_per_driver * self.lwl_driver_count as f64),
            inter_subarray_pct: pct(self.inter_sub_um2_per_bank * self.bank_count as f64),
            inter_bank_pct: pct(self.inter_bank_um2_per_chip),
        }
    }

    /// Pinatubo's total overhead as a percentage of chip area (~0.9%).
    #[must_use]
    pub fn pinatubo_overhead_pct(&self) -> f64 {
        self.pinatubo_breakdown().total_pct()
    }

    /// AC-PIM's overhead as a percentage of chip area (~6.4%): a digital
    /// datapath at every SA column plus the same buffer logic.
    #[must_use]
    pub fn acpim_overhead_pct(&self) -> f64 {
        let logic = self.acpim_logic_um2_per_sa * self.sa_count as f64;
        let buffers =
            self.inter_sub_um2_per_bank * self.bank_count as f64 + self.inter_bank_um2_per_chip;
        100.0 * (logic + buffers) / self.chip_area_um2
    }
}

impl Default for AreaModel {
    fn default() -> Self {
        AreaModel::pcm_65nm()
    }
}

/// Pinatubo's area overhead by component, in percent of chip area.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AreaBreakdown {
    /// Extra AND/OR reference branches in the SAs.
    pub and_or_pct: f64,
    /// XOR capacitor + transistors in the SAs.
    pub xor_pct: f64,
    /// Multi-row activation latches in the LWL drivers.
    pub wl_activation_pct: f64,
    /// Bitwise logic at the banks' global row buffers.
    pub inter_subarray_pct: f64,
    /// Bitwise logic at the chip I/O buffer.
    pub inter_bank_pct: f64,
}

impl AreaBreakdown {
    /// Overhead of everything inside the subarrays (SA + LWL additions).
    #[must_use]
    pub fn intra_subarray_pct(&self) -> f64 {
        self.and_or_pct + self.xor_pct + self.wl_activation_pct
    }

    /// Total overhead.
    #[must_use]
    pub fn total_pct(&self) -> f64 {
        self.intra_subarray_pct() + self.inter_subarray_pct + self.inter_bank_pct
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol
    }

    #[test]
    fn pinatubo_total_is_about_0_9_pct() {
        let total = AreaModel::pcm_65nm().pinatubo_overhead_pct();
        assert!(close(total, 0.9, 0.1), "got {total}");
    }

    #[test]
    fn acpim_total_is_about_6_4_pct() {
        let total = AreaModel::pcm_65nm().acpim_overhead_pct();
        assert!(close(total, 6.4, 0.2), "got {total}");
    }

    #[test]
    fn breakdown_matches_paper_components() {
        // Paper Fig. 13 right: inter-sub 0.72%, inter-bank 0.09%,
        // xor 0.06%, wl-act 0.05%, and/or 0.02%, intra-sub 0.13%.
        let b = AreaModel::pcm_65nm().pinatubo_breakdown();
        assert!(close(b.inter_subarray_pct, 0.72, 0.02), "{b:?}");
        assert!(close(b.inter_bank_pct, 0.09, 0.01), "{b:?}");
        assert!(close(b.xor_pct, 0.06, 0.01), "{b:?}");
        assert!(close(b.wl_activation_pct, 0.05, 0.01), "{b:?}");
        assert!(close(b.and_or_pct, 0.02, 0.005), "{b:?}");
        assert!(close(b.intra_subarray_pct(), 0.13, 0.02), "{b:?}");
    }

    #[test]
    fn acpim_is_much_more_expensive_than_pinatubo() {
        let m = AreaModel::pcm_65nm();
        assert!(m.acpim_overhead_pct() > 5.0 * m.pinatubo_overhead_pct());
    }

    #[test]
    fn intra_subarray_is_dwarfed_by_buffer_logic() {
        // Paper Fig. 13: "the majority area overhead are taken by
        // inter-subarray/bank operations".
        let b = AreaModel::pcm_65nm().pinatubo_breakdown();
        assert!(b.inter_subarray_pct + b.inter_bank_pct > b.intra_subarray_pct());
    }
}
