//! Property-based validation of the circuit layer.
//!
//! These tests stand in for the paper's HSPICE sweeps (Fig. 6, Fig. 7): for
//! *any* cell contents and *any* resistance values inside the worst-case
//! process-variation intervals, the sense amplifier must produce the exact
//! logic result the reference placement promises.

use pinatubo_nvm::cell::Cell;
use pinatubo_nvm::resistance::{parallel, Ohms};
use pinatubo_nvm::sense_amp::{CurrentSenseAmp, SenseMode, XorUnit};
use pinatubo_nvm::technology::Technology;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Strategy: a row-slice of cell bits with the given fan-in range.
fn bits(fan_in: std::ops::RangeInclusive<usize>) -> impl Strategy<Value = Vec<bool>> {
    prop::collection::vec(any::<bool>(), fan_in)
}

proptest! {
    /// Multi-row OR senses correctly for every bit pattern and every
    /// in-spec resistance assignment, all the way to the 128-row cap.
    #[test]
    fn pcm_or_is_exact_under_variation(bits in bits(2..=128usize), seed in any::<u64>()) {
        let tech = Technology::pcm();
        let sa = CurrentSenseAmp::new(&tech);
        let mut rng = StdRng::seed_from_u64(seed);
        let bl = parallel(
            bits.iter()
                .map(|&b| Cell::new(b).resistance_sampled(&tech, &mut rng)),
        );
        let mode = SenseMode::or(bits.len()).expect("fan-in >= 2");
        let sensed = sa.sense_checked(bl, mode).expect("in-spec resistances never ambiguous");
        let expected = bits.iter().any(|&b| b);
        prop_assert_eq!(sensed, expected);
    }

    /// 2-row AND senses correctly for every pattern and in-spec variation.
    #[test]
    fn pcm_and_is_exact_under_variation(a in any::<bool>(), b in any::<bool>(), seed in any::<u64>()) {
        let tech = Technology::pcm();
        let sa = CurrentSenseAmp::new(&tech);
        let mut rng = StdRng::seed_from_u64(seed);
        let bl = parallel([
            Cell::new(a).resistance_sampled(&tech, &mut rng),
            Cell::new(b).resistance_sampled(&tech, &mut rng),
        ]);
        let sensed = sa.sense_checked(bl, SenseMode::and(2).expect("binary AND")).expect("in-spec");
        prop_assert_eq!(sensed, a & b);
    }

    /// STT-MRAM's conservative 2-row ops are exact despite the low ON/OFF
    /// ratio.
    #[test]
    fn stt_two_row_ops_are_exact(a in any::<bool>(), b in any::<bool>(), seed in any::<u64>()) {
        let tech = Technology::stt_mram();
        let sa = CurrentSenseAmp::new(&tech);
        let mut rng = StdRng::seed_from_u64(seed);
        let bl = parallel([
            Cell::new(a).resistance_sampled(&tech, &mut rng),
            Cell::new(b).resistance_sampled(&tech, &mut rng),
        ]);
        let or = sa.sense_checked(bl, SenseMode::or(2).expect("binary OR")).expect("in-spec");
        prop_assert_eq!(or, a | b);
        let and = sa.sense_checked(bl, SenseMode::and(2).expect("binary AND")).expect("in-spec");
        prop_assert_eq!(and, a & b);
    }

    /// ReRAM multi-row OR is exact up to its 128-row cap.
    #[test]
    fn reram_or_is_exact_under_variation(bits in bits(2..=128usize), seed in any::<u64>()) {
        let tech = Technology::reram();
        let sa = CurrentSenseAmp::new(&tech);
        let mut rng = StdRng::seed_from_u64(seed);
        let bl = parallel(
            bits.iter()
                .map(|&b| Cell::new(b).resistance_sampled(&tech, &mut rng)),
        );
        let mode = SenseMode::or(bits.len()).expect("fan-in >= 2");
        let sensed = sa.sense_checked(bl, mode).expect("in-spec");
        prop_assert_eq!(sensed, bits.iter().any(|&b| b));
    }

    /// Parallel combination is bounded above by its smallest branch and
    /// below by smallest/n: the physics the SA relies on.
    #[test]
    fn parallel_bounds(values in prop::collection::vec(1.0e3..1.0e7f64, 1..64)) {
        let rs: Vec<Ohms> = values.iter().copied().map(Ohms::new).collect();
        let combined = parallel(rs.iter().copied());
        let min = values.iter().copied().fold(f64::INFINITY, f64::min);
        prop_assert!(combined.get() <= min + 1e-9);
        prop_assert!(combined.get() >= min / values.len() as f64 - 1e-9);
    }

    /// Tightening process variation never *reduces* the achievable OR
    /// fan-in.
    #[test]
    fn fan_in_is_monotone_in_variation(v1 in 0.01..0.4f64, v2 in 0.01..0.4f64) {
        let (lo, hi) = if v1 <= v2 { (v1, v2) } else { (v2, v1) };
        let tighter = CurrentSenseAmp::new(
            &Technology::pcm().to_builder().variation(lo).build(),
        );
        let looser = CurrentSenseAmp::new(
            &Technology::pcm().to_builder().variation(hi).build(),
        );
        prop_assert!(tighter.max_or_fan_in() >= looser.max_or_fan_in());
    }

    /// The XOR micro-step unit matches `^` over arbitrary operand streams.
    #[test]
    fn xor_unit_matches_operator(pairs in prop::collection::vec((any::<bool>(), any::<bool>()), 1..32)) {
        let mut unit = XorUnit::new();
        for (a, b) in pairs {
            unit.sample(a);
            prop_assert_eq!(unit.resolve(b), Some(a ^ b));
        }
    }
}
