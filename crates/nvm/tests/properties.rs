//! Randomized validation of the circuit layer.
//!
//! These tests stand in for the paper's HSPICE sweeps (Fig. 6, Fig. 7): for
//! *any* cell contents and *any* resistance values inside the worst-case
//! process-variation intervals, the sense amplifier must produce the exact
//! logic result the reference placement promises. Cases are driven by the
//! in-repo [`SimRng`] with fixed seeds, so every run checks the same
//! (large) deterministic sample.

use pinatubo_nvm::cell::Cell;
use pinatubo_nvm::resistance::{parallel, Ohms};
use pinatubo_nvm::rng::SimRng;
use pinatubo_nvm::sense_amp::{CurrentSenseAmp, SenseMode, XorUnit};
use pinatubo_nvm::technology::Technology;

/// A random bit pattern of length `fan_in`.
fn random_bits(rng: &mut SimRng, fan_in: usize) -> Vec<bool> {
    (0..fan_in).map(|_| rng.gen_bit()).collect()
}

/// Multi-row OR senses correctly for every bit pattern and every in-spec
/// resistance assignment, all the way to the 128-row cap.
fn or_is_exact_under_variation(tech: &Technology, seed: u64) {
    let sa = CurrentSenseAmp::new(tech);
    let mut rng = SimRng::seed_from_u64(seed);
    for case in 0..512 {
        let fan_in = 2 + rng.gen_index(127);
        let mut bits = random_bits(&mut rng, fan_in);
        // Make sure the hard corner cases show up regardless of the draw.
        match case % 4 {
            0 => bits.fill(false),
            1 => {
                bits.fill(false);
                let hot = rng.gen_index(fan_in);
                bits[hot] = true;
            }
            _ => {}
        }
        let bl = parallel(
            bits.iter()
                .map(|&b| Cell::new(b).resistance_sampled(tech, &mut rng)),
        );
        let mode = SenseMode::or(bits.len()).expect("fan-in >= 2");
        let sensed = sa
            .sense_checked(bl, mode)
            .expect("in-spec resistances never ambiguous");
        assert_eq!(sensed, bits.iter().any(|&b| b), "bits {bits:?}");
    }
}

#[test]
fn pcm_or_is_exact_under_variation() {
    or_is_exact_under_variation(&Technology::pcm(), 0xBEEF);
}

#[test]
fn reram_or_is_exact_under_variation() {
    or_is_exact_under_variation(&Technology::reram(), 0xCAFE);
}

/// 2-row AND senses correctly for every pattern and in-spec variation.
#[test]
fn pcm_and_is_exact_under_variation() {
    let tech = Technology::pcm();
    let sa = CurrentSenseAmp::new(&tech);
    let mut rng = SimRng::seed_from_u64(0xA2D);
    for case in 0..256 {
        let (a, b) = (case & 1 == 1, case & 2 == 2);
        let bl = parallel([
            Cell::new(a).resistance_sampled(&tech, &mut rng),
            Cell::new(b).resistance_sampled(&tech, &mut rng),
        ]);
        let sensed = sa
            .sense_checked(bl, SenseMode::and(2).expect("binary AND"))
            .expect("in-spec");
        assert_eq!(sensed, a & b, "a={a} b={b}");
    }
}

/// STT-MRAM's conservative 2-row ops are exact despite the low ON/OFF ratio.
#[test]
fn stt_two_row_ops_are_exact() {
    let tech = Technology::stt_mram();
    let sa = CurrentSenseAmp::new(&tech);
    let mut rng = SimRng::seed_from_u64(0x577);
    for case in 0..256 {
        let (a, b) = (case & 1 == 1, case & 2 == 2);
        let bl = parallel([
            Cell::new(a).resistance_sampled(&tech, &mut rng),
            Cell::new(b).resistance_sampled(&tech, &mut rng),
        ]);
        let or = sa
            .sense_checked(bl, SenseMode::or(2).expect("binary OR"))
            .expect("in-spec");
        assert_eq!(or, a | b);
        let and = sa
            .sense_checked(bl, SenseMode::and(2).expect("binary AND"))
            .expect("in-spec");
        assert_eq!(and, a & b);
    }
}

/// Parallel combination is bounded above by its smallest branch and below
/// by smallest/n: the physics the SA relies on.
#[test]
fn parallel_bounds() {
    let mut rng = SimRng::seed_from_u64(0x9A9);
    for _ in 0..512 {
        let n = 1 + rng.gen_index(63);
        let values: Vec<f64> = (0..n).map(|_| rng.gen_range_f64(1.0e3, 1.0e7)).collect();
        let rs: Vec<Ohms> = values.iter().copied().map(Ohms::new).collect();
        let combined = parallel(rs.iter().copied());
        let min = values.iter().copied().fold(f64::INFINITY, f64::min);
        assert!(combined.get() <= min + 1e-9);
        assert!(combined.get() >= min / values.len() as f64 - 1e-9);
    }
}

/// Tightening process variation never *reduces* the achievable OR fan-in.
#[test]
fn fan_in_is_monotone_in_variation() {
    let mut rng = SimRng::seed_from_u64(0x404);
    for _ in 0..64 {
        let v1 = rng.gen_range_f64(0.01, 0.4);
        let v2 = rng.gen_range_f64(0.01, 0.4);
        let (lo, hi) = if v1 <= v2 { (v1, v2) } else { (v2, v1) };
        let tighter = CurrentSenseAmp::new(&Technology::pcm().to_builder().variation(lo).build());
        let looser = CurrentSenseAmp::new(&Technology::pcm().to_builder().variation(hi).build());
        assert!(
            tighter.max_or_fan_in() >= looser.max_or_fan_in(),
            "variation {lo} should allow at least the fan-in of {hi}"
        );
    }
}

/// The XOR micro-step unit matches `^` over arbitrary operand streams.
#[test]
fn xor_unit_matches_operator() {
    let mut rng = SimRng::seed_from_u64(0x0A);
    for _ in 0..128 {
        let mut unit = XorUnit::new();
        let len = 1 + rng.gen_index(31);
        for _ in 0..len {
            let (a, b) = (rng.gen_bit(), rng.gen_bit());
            unit.sample(a);
            assert_eq!(unit.resolve(b), Some(a ^ b));
        }
    }
}
