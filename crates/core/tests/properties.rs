//! Property tests: the engine's decomposition and routing never change the
//! functional result, for any operation, operand count, placement, and
//! fan-in configuration.

use pinatubo_core::{BitwiseOp, PinatuboConfig, PinatuboEngine};
use pinatubo_mem::{MemConfig, RowAddr, RowData};
use proptest::prelude::*;

/// Apply `op` across operand bit-vectors, scalar reference semantics.
fn reference(op: BitwiseOp, rows: &[Vec<bool>]) -> Vec<bool> {
    let cols = rows[0].len();
    (0..cols)
        .map(|c| {
            if op == BitwiseOp::Not {
                return !rows[0][c];
            }
            rows[1..]
                .iter()
                .fold(rows[0][c], |acc, row| op.apply(acc, row[c]))
        })
        .collect()
}

fn op_strategy() -> impl Strategy<Value = BitwiseOp> {
    prop::sample::select(vec![BitwiseOp::Or, BitwiseOp::And, BitwiseOp::Xor])
}

/// A placement: which subarray/bank/rank each operand row goes to.
#[derive(Debug, Clone)]
enum Placement {
    SameSubarray,
    SameBank,
    SameRank,
    Scattered,
}

fn placement_strategy() -> impl Strategy<Value = Placement> {
    prop::sample::select(vec![
        Placement::SameSubarray,
        Placement::SameBank,
        Placement::SameRank,
        Placement::Scattered,
    ])
}

fn place(p: &Placement, i: u32) -> RowAddr {
    match p {
        Placement::SameSubarray => RowAddr::new(0, 0, 0, 0, i),
        Placement::SameBank => RowAddr::new(0, 0, 0, i % 16, i / 16),
        Placement::SameRank => RowAddr::new(0, 0, i % 8, (i / 8) % 16, i / 128),
        Placement::Scattered => RowAddr::new(i % 4, (i / 4) % 2, (i / 8) % 8, 0, i / 64),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// dst = op(operands…) matches the scalar reference for every shape.
    #[test]
    fn bulk_op_matches_reference(
        op in op_strategy(),
        placement in placement_strategy(),
        n in 2usize..=20,
        cols in 1usize..=128,
        fan_cap in 2usize..=128,
        seed in any::<u64>(),
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let data: Vec<Vec<bool>> = (0..n)
            .map(|_| (0..cols).map(|_| rng.gen()).collect())
            .collect();

        let mut engine = PinatuboEngine::new(
            MemConfig::pcm_default(),
            PinatuboConfig::with_fan_in(fan_cap),
        );
        let addrs: Vec<RowAddr> = (0..n as u32).map(|i| place(&placement, i)).collect();
        let dst = place(&placement, 500);
        for (a, bits) in addrs.iter().zip(&data) {
            engine.memory_mut().poke_row(*a, &RowData::from_bits(bits)).expect("poke");
        }

        let outcome = engine
            .bulk_op(op, &addrs, dst, cols as u64)
            .expect("bulk op succeeds");
        prop_assert!(outcome.time_ns() > 0.0);
        prop_assert!(outcome.energy_pj() > 0.0);

        let got = engine.memory().peek_row(dst).expect("dst written").bits(cols as u64);
        prop_assert_eq!(got, reference(op, &data));
    }

    /// NOT matches inversion for every placement.
    #[test]
    fn not_matches_reference(
        placement in placement_strategy(),
        cols in 1usize..=128,
        seed in any::<u64>(),
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let bits: Vec<bool> = (0..cols).map(|_| rng.gen()).collect();

        let mut engine = PinatuboEngine::new(MemConfig::pcm_default(), PinatuboConfig::default());
        let src = place(&placement, 0);
        let dst = place(&placement, 500);
        engine.memory_mut().poke_row(src, &RowData::from_bits(&bits)).expect("poke");
        engine.bulk_op(BitwiseOp::Not, &[src], dst, cols as u64).expect("NOT");
        let got = engine.memory().peek_row(dst).expect("dst").bits(cols as u64);
        let want: Vec<bool> = bits.iter().map(|b| !b).collect();
        prop_assert_eq!(got, want);
    }

    /// Cost is monotone in work: more operands or more columns never cost
    /// less, on any placement class.
    #[test]
    fn cost_is_monotone_in_work(
        placement in placement_strategy(),
        n in 2usize..=32,
        extra_n in 0usize..=32,
        cols in 64u64..=(1 << 14),
        extra_cols in 0u64..=(1 << 14),
    ) {
        let run = |n: usize, cols: u64| {
            let mut engine = PinatuboEngine::new(
                MemConfig::pcm_default(),
                PinatuboConfig::default(),
            );
            let addrs: Vec<RowAddr> = (0..n as u32).map(|i| place(&placement, i)).collect();
            let dst = place(&placement, 500);
            let outcome = engine.bulk_op(BitwiseOp::Or, &addrs, dst, cols).expect("or");
            (outcome.time_ns(), outcome.energy_pj())
        };
        let (t_small, e_small) = run(n, cols);
        let (t_big, e_big) = run(n + extra_n, cols + extra_cols);
        prop_assert!(t_big >= t_small - 1e-9, "time {t_big} < {t_small}");
        prop_assert!(e_big >= e_small - 1e-9, "energy {e_big} < {e_small}");
    }

    /// Copy is exact and charged on every placement class.
    #[test]
    fn copy_matches_source(
        placement in placement_strategy(),
        cols in 1usize..=256,
        seed in any::<u64>(),
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let bits: Vec<bool> = (0..cols).map(|_| rng.gen()).collect();
        let mut engine = PinatuboEngine::new(MemConfig::pcm_default(), PinatuboConfig::default());
        let src = place(&placement, 0);
        let dst = place(&placement, 500);
        engine.memory_mut().poke_row(src, &RowData::from_bits(&bits)).expect("poke");
        let outcome = engine.copy_row(src, dst, cols as u64).expect("copy");
        prop_assert!(outcome.time_ns() > 0.0);
        prop_assert_eq!(
            engine.memory().peek_row(dst).expect("copied").bits(cols as u64),
            bits
        );
    }

    /// Raising the fan-in cap never slows an intra-subarray OR down.
    #[test]
    fn wider_fan_in_never_hurts(
        n in 2usize..=128,
        lo_cap in 2usize..=16,
        extra in 0usize..=112,
    ) {
        let hi_cap = lo_cap + extra;
        let rows: Vec<RowAddr> = (0..n as u32).map(|i| RowAddr::new(0, 0, 0, 0, i)).collect();
        let dst = RowAddr::new(0, 0, 0, 0, 900);

        let mut narrow = PinatuboEngine::new(
            MemConfig::pcm_default(),
            PinatuboConfig::with_fan_in(lo_cap),
        );
        let t_narrow = narrow.bulk_op(BitwiseOp::Or, &rows, dst, 64).expect("narrow").time_ns();

        let mut wide = PinatuboEngine::new(
            MemConfig::pcm_default(),
            PinatuboConfig::with_fan_in(hi_cap),
        );
        let t_wide = wide.bulk_op(BitwiseOp::Or, &rows, dst, 64).expect("wide").time_ns();

        prop_assert!(t_wide <= t_narrow + 1e-9);
    }
}
