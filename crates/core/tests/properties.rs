//! Randomized tests: the engine's decomposition and routing never change
//! the functional result, for any operation, operand count, placement, and
//! fan-in configuration. Cases are drawn from the in-repo seedable
//! [`SimRng`], so every run exercises the same deterministic sample.

use pinatubo_core::rng::SimRng;
use pinatubo_core::{BitwiseOp, PinatuboConfig, PinatuboEngine};
use pinatubo_mem::{MemConfig, RowAddr, RowData};

/// Apply `op` across operand bit-vectors, scalar reference semantics.
fn reference(op: BitwiseOp, rows: &[Vec<bool>]) -> Vec<bool> {
    let cols = rows[0].len();
    (0..cols)
        .map(|c| {
            if op == BitwiseOp::Not {
                return !rows[0][c];
            }
            rows[1..]
                .iter()
                .fold(rows[0][c], |acc, row| op.apply(acc, row[c]))
        })
        .collect()
}

const OPS: [BitwiseOp; 3] = [BitwiseOp::Or, BitwiseOp::And, BitwiseOp::Xor];

/// A placement: which subarray/bank/rank each operand row goes to.
#[derive(Debug, Clone, Copy)]
enum Placement {
    SameSubarray,
    SameBank,
    SameRank,
    Scattered,
}

const PLACEMENTS: [Placement; 4] = [
    Placement::SameSubarray,
    Placement::SameBank,
    Placement::SameRank,
    Placement::Scattered,
];

fn place(p: Placement, i: u32) -> RowAddr {
    match p {
        Placement::SameSubarray => RowAddr::new(0, 0, 0, 0, i),
        Placement::SameBank => RowAddr::new(0, 0, 0, i % 16, i / 16),
        Placement::SameRank => RowAddr::new(0, 0, i % 8, (i / 8) % 16, i / 128),
        Placement::Scattered => RowAddr::new(i % 4, (i / 4) % 2, (i / 8) % 8, 0, i / 64),
    }
}

/// dst = op(operands…) matches the scalar reference for every shape.
#[test]
fn bulk_op_matches_reference() {
    let mut rng = SimRng::seed_from_u64(0xB0B);
    for case in 0..96 {
        let op = OPS[case % OPS.len()];
        let placement = PLACEMENTS[(case / OPS.len()) % PLACEMENTS.len()];
        let n = 2 + rng.gen_index(19);
        let cols = 1 + rng.gen_index(128);
        let fan_cap = 2 + rng.gen_index(127);
        let data: Vec<Vec<bool>> = (0..n)
            .map(|_| (0..cols).map(|_| rng.gen_bit()).collect())
            .collect();

        let mut engine = PinatuboEngine::new(
            MemConfig::pcm_default(),
            PinatuboConfig::with_fan_in(fan_cap),
        );
        let addrs: Vec<RowAddr> = (0..n as u32).map(|i| place(placement, i)).collect();
        let dst = place(placement, 500);
        for (a, bits) in addrs.iter().zip(&data) {
            engine
                .memory_mut()
                .poke_row(*a, &RowData::from_bits(bits))
                .expect("poke");
        }

        let outcome = engine
            .bulk_op(op, &addrs, dst, cols as u64)
            .expect("bulk op succeeds");
        assert!(outcome.time_ns() > 0.0);
        assert!(outcome.energy_pj() > 0.0);

        let got = engine
            .memory()
            .peek_row(dst)
            .expect("dst written")
            .bits(cols as u64);
        assert_eq!(
            got,
            reference(op, &data),
            "op {op:?}, placement {placement:?}, n {n}, cols {cols}, cap {fan_cap}"
        );
    }
}

/// NOT matches inversion for every placement.
#[test]
fn not_matches_reference() {
    let mut rng = SimRng::seed_from_u64(0x407);
    for placement in PLACEMENTS {
        for _ in 0..8 {
            let cols = 1 + rng.gen_index(128);
            let bits: Vec<bool> = (0..cols).map(|_| rng.gen_bit()).collect();

            let mut engine =
                PinatuboEngine::new(MemConfig::pcm_default(), PinatuboConfig::default());
            let src = place(placement, 0);
            let dst = place(placement, 500);
            engine
                .memory_mut()
                .poke_row(src, &RowData::from_bits(&bits))
                .expect("poke");
            engine
                .bulk_op(BitwiseOp::Not, &[src], dst, cols as u64)
                .expect("NOT");
            let got = engine
                .memory()
                .peek_row(dst)
                .expect("dst")
                .bits(cols as u64);
            let want: Vec<bool> = bits.iter().map(|b| !b).collect();
            assert_eq!(got, want, "placement {placement:?}");
        }
    }
}

/// Cost is monotone in work: more operands or more columns never cost less,
/// on any placement class.
#[test]
fn cost_is_monotone_in_work() {
    let mut rng = SimRng::seed_from_u64(0xC057);
    for placement in PLACEMENTS {
        for _ in 0..8 {
            let n = 2 + rng.gen_index(31);
            let extra_n = rng.gen_index(33);
            let cols = 64 + rng.gen_range_u64(0, (1 << 14) - 63);
            let extra_cols = rng.gen_range_u64(0, 1 << 14);
            let run = |n: usize, cols: u64| {
                let mut engine =
                    PinatuboEngine::new(MemConfig::pcm_default(), PinatuboConfig::default());
                let addrs: Vec<RowAddr> = (0..n as u32).map(|i| place(placement, i)).collect();
                let dst = place(placement, 500);
                let outcome = engine
                    .bulk_op(BitwiseOp::Or, &addrs, dst, cols)
                    .expect("or");
                (outcome.time_ns(), outcome.energy_pj())
            };
            let (t_small, e_small) = run(n, cols);
            let (t_big, e_big) = run(n + extra_n, cols + extra_cols);
            assert!(t_big >= t_small - 1e-9, "time {t_big} < {t_small}");
            assert!(e_big >= e_small - 1e-9, "energy {e_big} < {e_small}");
        }
    }
}

/// Copy is exact and charged on every placement class.
#[test]
fn copy_matches_source() {
    let mut rng = SimRng::seed_from_u64(0xC0B1);
    for placement in PLACEMENTS {
        for _ in 0..8 {
            let cols = 1 + rng.gen_index(256);
            let bits: Vec<bool> = (0..cols).map(|_| rng.gen_bit()).collect();
            let mut engine =
                PinatuboEngine::new(MemConfig::pcm_default(), PinatuboConfig::default());
            let src = place(placement, 0);
            let dst = place(placement, 500);
            engine
                .memory_mut()
                .poke_row(src, &RowData::from_bits(&bits))
                .expect("poke");
            let outcome = engine.copy_row(src, dst, cols as u64).expect("copy");
            assert!(outcome.time_ns() > 0.0);
            assert_eq!(
                engine
                    .memory()
                    .peek_row(dst)
                    .expect("copied")
                    .bits(cols as u64),
                bits
            );
        }
    }
}

/// Raising the fan-in cap never slows an intra-subarray OR down.
#[test]
fn wider_fan_in_never_hurts() {
    let mut rng = SimRng::seed_from_u64(0xFA9);
    for _ in 0..48 {
        let n = 2 + rng.gen_index(127);
        let lo_cap = 2 + rng.gen_index(15);
        let hi_cap = lo_cap + rng.gen_index(113);
        let rows: Vec<RowAddr> = (0..n as u32).map(|i| RowAddr::new(0, 0, 0, 0, i)).collect();
        let dst = RowAddr::new(0, 0, 0, 0, 900);

        let mut narrow = PinatuboEngine::new(
            MemConfig::pcm_default(),
            PinatuboConfig::with_fan_in(lo_cap),
        );
        let t_narrow = narrow
            .bulk_op(BitwiseOp::Or, &rows, dst, 64)
            .expect("narrow")
            .time_ns();

        let mut wide = PinatuboEngine::new(
            MemConfig::pcm_default(),
            PinatuboConfig::with_fan_in(hi_cap),
        );
        let t_wide = wide
            .bulk_op(BitwiseOp::Or, &rows, dst, 64)
            .expect("wide")
            .time_ns();

        assert!(
            t_wide <= t_narrow + 1e-9,
            "caps {lo_cap} vs {hi_cap}, n {n}"
        );
    }
}
