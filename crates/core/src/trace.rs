//! Abstract bulk-operation traces.
//!
//! Applications record the bulk bitwise operations they issue as a
//! [`BulkOp`] stream. The same trace is then priced by every executor —
//! Pinatubo (by replaying it on the real engine), the SIMD processor,
//! S-DRAM and AC-PIM — which is how the paper's Fig. 10/11 comparisons are
//! produced: identical work, different hardware.

use crate::classify::OpClass;
use crate::op::BitwiseOp;

/// One bulk bitwise operation, abstracted from concrete row addresses.
///
/// `locality` records where the runtime's allocator placed the operands —
/// the property that decides which Pinatubo path executes the op. The
/// processor-centric executors ignore it (every placement looks the same
/// through the DDR bus).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BulkOp {
    /// The operation.
    pub op: BitwiseOp,
    /// Number of operand bit-vectors.
    pub operand_count: usize,
    /// Length of each operand in bits.
    pub bits: u64,
    /// Placement class of the operands + destination.
    pub locality: OpClass,
}

impl BulkOp {
    /// A convenience constructor for intra-subarray ops (the common case
    /// under the PIM-aware allocator).
    #[must_use]
    pub fn intra(op: BitwiseOp, operand_count: usize, bits: u64) -> Self {
        BulkOp {
            op,
            operand_count,
            bits,
            locality: OpClass::IntraSubarray,
        }
    }

    /// Total operand bits this op consumes (the "work" used for
    /// equivalent-bandwidth numbers).
    #[must_use]
    pub fn operand_bits(&self) -> u64 {
        self.bits * self.operand_count as u64
    }
}

/// A recorded stream of bulk operations.
pub type OpTrace = Vec<BulkOp>;

/// Total operand bits across a trace.
#[must_use]
pub fn trace_operand_bits(trace: &[BulkOp]) -> u64 {
    trace.iter().map(BulkOp::operand_bits).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn operand_bits_multiply() {
        let op = BulkOp::intra(BitwiseOp::Or, 128, 1 << 19);
        assert_eq!(op.operand_bits(), 128 << 19);
        assert_eq!(op.locality, OpClass::IntraSubarray);
    }

    #[test]
    fn trace_totals_sum() {
        let trace = vec![
            BulkOp::intra(BitwiseOp::Or, 2, 100),
            BulkOp::intra(BitwiseOp::And, 3, 10),
        ];
        assert_eq!(trace_operand_bits(&trace), 230);
    }
}
