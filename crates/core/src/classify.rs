//! Operand-placement classification (paper §4.1).
//!
//! Pinatubo performs three kinds of bitwise operations depending on where
//! the operand rows (including the destination) live. The classification
//! below is exactly the paper's case split, plus the explicit fallback for
//! placements Pinatubo "does not deal with" — operands in different ranks
//! or channels, which must cross the DDR bus.

use pinatubo_mem::RowAddr;
use std::fmt;

/// Which execution path an operand placement allows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum OpClass {
    /// All rows in one subarray: multi-row activation + modified SA.
    IntraSubarray,
    /// All rows in one bank: digital logic at the global row buffer.
    InterSubarray,
    /// All rows in one lock-step chip group: logic at the I/O buffer.
    InterBank,
    /// Rows spread across ranks/channels: operands must cross the DDR bus
    /// and be combined at the host/controller.
    HostFallback,
}

impl OpClass {
    /// Classifies a set of rows (operands plus destination).
    ///
    /// # Panics
    ///
    /// Panics if `rows` is empty — classification of nothing is a caller
    /// bug, and every engine entry point validates emptiness first.
    #[must_use]
    pub fn classify(rows: &[RowAddr]) -> OpClass {
        let (first, rest) = rows
            .split_first()
            .expect("classification needs at least one row");
        if rest.iter().all(|r| first.same_subarray(r)) {
            OpClass::IntraSubarray
        } else if rest.iter().all(|r| first.same_bank(r)) {
            OpClass::InterSubarray
        } else if rest.iter().all(|r| first.same_chip_group(r)) {
            OpClass::InterBank
        } else {
            OpClass::HostFallback
        }
    }

    /// Whether this class stays entirely inside the memory (no DDR bus
    /// traffic for operands or result).
    #[must_use]
    pub fn is_in_memory(self) -> bool {
        self != OpClass::HostFallback
    }
}

impl fmt::Display for OpClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            OpClass::IntraSubarray => "intra-subarray",
            OpClass::InterSubarray => "inter-subarray",
            OpClass::InterBank => "inter-bank",
            OpClass::HostFallback => "host-fallback",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_follows_the_paper_cases() {
        let base = RowAddr::new(0, 0, 0, 0, 1);
        let same_sub = RowAddr::new(0, 0, 0, 0, 2);
        let same_bank = RowAddr::new(0, 0, 0, 5, 2);
        let same_group = RowAddr::new(0, 0, 3, 5, 2);
        let other_rank = RowAddr::new(0, 1, 0, 0, 1);
        let other_channel = RowAddr::new(2, 0, 0, 0, 1);

        assert_eq!(OpClass::classify(&[base, same_sub]), OpClass::IntraSubarray);
        assert_eq!(
            OpClass::classify(&[base, same_bank]),
            OpClass::InterSubarray
        );
        assert_eq!(OpClass::classify(&[base, same_group]), OpClass::InterBank);
        assert_eq!(
            OpClass::classify(&[base, other_rank]),
            OpClass::HostFallback
        );
        assert_eq!(
            OpClass::classify(&[base, other_channel]),
            OpClass::HostFallback
        );
    }

    #[test]
    fn one_stray_row_downgrades_the_class() {
        let a = RowAddr::new(0, 0, 0, 0, 1);
        let b = RowAddr::new(0, 0, 0, 0, 2);
        let stray = RowAddr::new(0, 0, 0, 4, 2);
        assert_eq!(OpClass::classify(&[a, b, stray]), OpClass::InterSubarray);
    }

    #[test]
    fn single_row_is_intra() {
        assert_eq!(
            OpClass::classify(&[RowAddr::new(0, 0, 0, 0, 9)]),
            OpClass::IntraSubarray
        );
    }

    #[test]
    fn in_memory_predicate() {
        assert!(OpClass::IntraSubarray.is_in_memory());
        assert!(OpClass::InterSubarray.is_in_memory());
        assert!(OpClass::InterBank.is_in_memory());
        assert!(!OpClass::HostFallback.is_in_memory());
    }

    #[test]
    fn display_names() {
        assert_eq!(OpClass::IntraSubarray.to_string(), "intra-subarray");
        assert_eq!(OpClass::HostFallback.to_string(), "host-fallback");
    }

    #[test]
    #[should_panic(expected = "at least one row")]
    fn empty_classification_panics() {
        let _ = OpClass::classify(&[]);
    }
}
