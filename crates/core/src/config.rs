//! Engine configuration.

/// Tunables of the PIM engine.
///
/// The defaults describe the full Pinatubo design point of the paper
/// (128-row multi-row operations on PCM, in-place write-back). The
/// evaluation's "Pinatubo-2" configuration is [`PinatuboConfig::two_row`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PinatuboConfig {
    /// Upper bound on rows combined in one analog sense. The effective
    /// fan-in is the minimum of this cap and the technology's sense-margin
    /// limit, so setting it high simply means "whatever the circuit
    /// allows".
    pub max_fan_in: usize,
    /// Whether intra-subarray results are written back through the
    /// modified local write drivers (Fig. 8a). Disabling it models a
    /// design without that modification: every result is exported over
    /// the GDL + DDR bus and written back conventionally — the
    /// `ablation_writeback` study quantifies the difference.
    pub in_place_write_back: bool,
}

impl PinatuboConfig {
    /// Full multi-row operation (the paper's "Pinatubo-128" on PCM —
    /// the circuit margin provides the actual 128 cap).
    #[must_use]
    pub fn multi_row() -> Self {
        PinatuboConfig {
            max_fan_in: 1024,
            in_place_write_back: true,
        }
    }

    /// Two-row operation only (the paper's "Pinatubo-2").
    #[must_use]
    pub fn two_row() -> Self {
        PinatuboConfig {
            max_fan_in: 2,
            ..PinatuboConfig::multi_row()
        }
    }

    /// A specific fan-in cap, for the Fig. 9 sweep (2, 4, 8, …, 128).
    #[must_use]
    pub fn with_fan_in(max_fan_in: usize) -> Self {
        PinatuboConfig {
            max_fan_in,
            ..PinatuboConfig::multi_row()
        }
    }

    /// Disables the Fig. 8a in-place write-back path.
    #[must_use]
    pub fn without_in_place_write_back(mut self) -> Self {
        self.in_place_write_back = false;
        self
    }
}

impl Default for PinatuboConfig {
    fn default() -> Self {
        PinatuboConfig::multi_row()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_multi_row() {
        assert_eq!(PinatuboConfig::default(), PinatuboConfig::multi_row());
    }

    #[test]
    fn presets_differ() {
        assert_eq!(PinatuboConfig::two_row().max_fan_in, 2);
        assert_eq!(PinatuboConfig::with_fan_in(16).max_fan_in, 16);
    }
}
