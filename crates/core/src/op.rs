//! The bulk bitwise operations Pinatubo supports (paper §1: OR, AND, XOR
//! and INV).

use pinatubo_mem::PimConfig;
use std::fmt;

/// A bulk bitwise operation over one or more operand rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BitwiseOp {
    /// Multi-operand OR — the operation multi-row activation accelerates
    /// best (up to 128 operands in one step on PCM).
    Or,
    /// AND — sensed two rows at a time; wider ANDs decompose into a chain.
    And,
    /// XOR — two SA micro-steps per operand pair.
    Xor,
    /// INV/NOT — the SA's differential output; takes one operand.
    Not,
}

impl BitwiseOp {
    /// All operations, in a stable order (handy for sweeps).
    pub const ALL: [BitwiseOp; 4] = [
        BitwiseOp::Or,
        BitwiseOp::And,
        BitwiseOp::Xor,
        BitwiseOp::Not,
    ];

    /// Scalar semantics, for reference models and tests.
    #[must_use]
    pub fn apply(self, a: bool, b: bool) -> bool {
        match self {
            BitwiseOp::Or => a | b,
            BitwiseOp::And => a & b,
            BitwiseOp::Xor => a ^ b,
            BitwiseOp::Not => !a,
        }
    }

    /// How many operands a single analog sense can combine on a technology
    /// whose OR margin allows `max_or_fan_in` rows.
    ///
    /// OR scales with the sense margin; AND is pinned at two rows
    /// (paper footnote 3); XOR works on operand pairs (two micro-steps);
    /// NOT takes a single row.
    #[must_use]
    pub fn analog_fan_in(self, max_or_fan_in: usize) -> usize {
        match self {
            BitwiseOp::Or => max_or_fan_in.max(1),
            BitwiseOp::And | BitwiseOp::Xor => 2,
            BitwiseOp::Not => 1,
        }
    }

    /// The mode-register configuration that selects this operation's SA
    /// reference / micro-step sequence.
    #[must_use]
    pub fn pim_config(self) -> PimConfig {
        match self {
            BitwiseOp::Or => PimConfig::Or,
            BitwiseOp::And => PimConfig::And,
            BitwiseOp::Xor => PimConfig::Xor,
            BitwiseOp::Not => PimConfig::Inv,
        }
    }

    /// Whether the operation combines two or more rows (everything except
    /// NOT).
    #[must_use]
    pub fn is_binary(self) -> bool {
        !matches!(self, BitwiseOp::Not)
    }
}

impl fmt::Display for BitwiseOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BitwiseOp::Or => "OR",
            BitwiseOp::And => "AND",
            BitwiseOp::Xor => "XOR",
            BitwiseOp::Not => "NOT",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_semantics() {
        assert!(BitwiseOp::Or.apply(false, true));
        assert!(!BitwiseOp::And.apply(false, true));
        assert!(BitwiseOp::Xor.apply(false, true));
        assert!(!BitwiseOp::Xor.apply(true, true));
        assert!(BitwiseOp::Not.apply(false, true)); // second operand ignored
        assert!(!BitwiseOp::Not.apply(true, false));
    }

    #[test]
    fn fan_in_rules_follow_the_paper() {
        assert_eq!(BitwiseOp::Or.analog_fan_in(128), 128);
        assert_eq!(BitwiseOp::And.analog_fan_in(128), 2);
        assert_eq!(BitwiseOp::Xor.analog_fan_in(128), 2);
        assert_eq!(BitwiseOp::Not.analog_fan_in(128), 1);
    }

    #[test]
    fn pim_configs_map_one_to_one() {
        use std::collections::HashSet;
        let configs: HashSet<_> = BitwiseOp::ALL.iter().map(|o| o.pim_config()).collect();
        assert_eq!(configs.len(), BitwiseOp::ALL.len());
    }

    #[test]
    fn display_names() {
        let names: Vec<String> = BitwiseOp::ALL.iter().map(ToString::to_string).collect();
        assert_eq!(names, ["OR", "AND", "XOR", "NOT"]);
    }
}
