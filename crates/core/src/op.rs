//! The bulk bitwise operations Pinatubo supports (paper §1: OR, AND, XOR
//! and INV).

use pinatubo_mem::PimConfig;
use std::fmt;

/// A bulk bitwise operation over one or more operand rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BitwiseOp {
    /// Multi-operand OR — the operation multi-row activation accelerates
    /// best (up to 128 operands in one step on PCM).
    Or,
    /// AND — sensed two rows at a time; wider ANDs decompose into a chain.
    And,
    /// XOR — two SA micro-steps per operand pair.
    Xor,
    /// INV/NOT — the SA's differential output; takes one operand.
    Not,
}

impl BitwiseOp {
    /// All operations, in a stable order (handy for sweeps).
    pub const ALL: [BitwiseOp; 4] = [
        BitwiseOp::Or,
        BitwiseOp::And,
        BitwiseOp::Xor,
        BitwiseOp::Not,
    ];

    /// Scalar semantics, for reference models and tests.
    #[must_use]
    pub fn apply(self, a: bool, b: bool) -> bool {
        match self {
            BitwiseOp::Or => a | b,
            BitwiseOp::And => a & b,
            BitwiseOp::Xor => a ^ b,
            BitwiseOp::Not => !a,
        }
    }

    /// How many operands a single analog sense can combine on a technology
    /// whose OR margin allows `max_or_fan_in` rows.
    ///
    /// OR scales with the sense margin; AND is pinned at two rows
    /// (paper footnote 3); XOR works on operand pairs (two micro-steps);
    /// NOT takes a single row.
    #[must_use]
    pub fn analog_fan_in(self, max_or_fan_in: usize) -> usize {
        match self {
            BitwiseOp::Or => max_or_fan_in.max(1),
            BitwiseOp::And | BitwiseOp::Xor => 2,
            BitwiseOp::Not => 1,
        }
    }

    /// The mode-register configuration that selects this operation's SA
    /// reference / micro-step sequence.
    #[must_use]
    pub fn pim_config(self) -> PimConfig {
        match self {
            BitwiseOp::Or => PimConfig::Or,
            BitwiseOp::And => PimConfig::And,
            BitwiseOp::Xor => PimConfig::Xor,
            BitwiseOp::Not => PimConfig::Inv,
        }
    }

    /// Whether the operation combines two or more rows (everything except
    /// NOT).
    #[must_use]
    pub fn is_binary(self) -> bool {
        !matches!(self, BitwiseOp::Not)
    }
}

/// A bit-serial arithmetic operation over bit-transposed integer lanes.
///
/// These are not hardware primitives: `runtime::microcode` synthesizes
/// each one from [`BitwiseOp`] sequences over bit-planes, SIMDRAM-style.
/// The enum lives here so the scalar reference semantics (`eval_lane`)
/// sit next to the bitwise ones (`BitwiseOp::apply`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArithOp {
    /// Lane-wise wrapping addition.
    Add,
    /// Lane-wise wrapping subtraction (two's complement: `a + !b + 1`).
    Sub,
    /// Lane-wise unsigned `a >= b`, producing a one-bit mask per lane.
    CmpGe,
    /// Lane-wise unsigned `a < b`, producing a one-bit mask per lane.
    CmpLt,
    /// Lane-wise unsigned maximum.
    Max,
    /// Lane-wise unsigned minimum.
    Min,
    /// Lane-wise unsigned `a > constant`, producing a one-bit mask per
    /// lane. The constant is broadcast, so its bit-planes are all-zero or
    /// all-one and fold away at compile time.
    ThresholdConst,
    /// Lane-wise logical left shift by a broadcast constant. In the
    /// bit-transposed layout this is a pure plane-index remap — output
    /// plane `k` is input plane `k - s` (zero for `k < s`) — so it
    /// synthesizes to zero logic gates.
    ShlConst,
    /// Lane-wise logical right shift by a broadcast constant; the mirror
    /// plane-index remap (output plane `k` is input plane `k + s`).
    ShrConst,
}

impl ArithOp {
    /// All arithmetic operations, in a stable order (handy for sweeps).
    pub const ALL: [ArithOp; 9] = [
        ArithOp::Add,
        ArithOp::Sub,
        ArithOp::CmpGe,
        ArithOp::CmpLt,
        ArithOp::Max,
        ArithOp::Min,
        ArithOp::ThresholdConst,
        ArithOp::ShlConst,
        ArithOp::ShrConst,
    ];

    /// The all-ones lane value for a `width_bits`-bit lane.
    #[must_use]
    pub fn lane_mask(width_bits: u32) -> u64 {
        assert!(
            (1..=64).contains(&width_bits),
            "lane width must be 1..=64 bits, got {width_bits}"
        );
        if width_bits == 64 {
            u64::MAX
        } else {
            (1u64 << width_bits) - 1
        }
    }

    /// Whether the result is a one-bit mask per lane (comparisons) rather
    /// than a full `width_bits`-bit lane.
    #[must_use]
    pub fn result_is_mask(self) -> bool {
        matches!(
            self,
            ArithOp::CmpGe | ArithOp::CmpLt | ArithOp::ThresholdConst
        )
    }

    /// Whether the second operand is a broadcast constant rather than a
    /// transposed vector.
    #[must_use]
    pub fn takes_constant(self) -> bool {
        matches!(
            self,
            ArithOp::ThresholdConst | ArithOp::ShlConst | ArithOp::ShrConst
        )
    }

    /// Scalar reference semantics for one lane, for reference models and
    /// tests. `b` carries the second vector operand or the broadcast
    /// constant, depending on [`ArithOp::takes_constant`]. Inputs are
    /// masked to `width_bits`; comparison results are `0` or `1`.
    #[must_use]
    pub fn eval_lane(self, a: u64, b: u64, width_bits: u32) -> u64 {
        let mask = Self::lane_mask(width_bits);
        let a = a & mask;
        let b = b & mask;
        match self {
            ArithOp::Add => a.wrapping_add(b) & mask,
            ArithOp::Sub => a.wrapping_sub(b) & mask,
            ArithOp::CmpGe => u64::from(a >= b),
            ArithOp::CmpLt => u64::from(a < b),
            ArithOp::Max => a.max(b),
            ArithOp::Min => a.min(b),
            ArithOp::ThresholdConst => u64::from(a > b),
            ArithOp::ShlConst => {
                if b >= u64::from(width_bits) {
                    0
                } else {
                    (a << b) & mask
                }
            }
            ArithOp::ShrConst => {
                if b >= u64::from(width_bits) {
                    0
                } else {
                    a >> b
                }
            }
        }
    }
}

impl fmt::Display for ArithOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ArithOp::Add => "ADD",
            ArithOp::Sub => "SUB",
            ArithOp::CmpGe => "CMP_GE",
            ArithOp::CmpLt => "CMP_LT",
            ArithOp::Max => "MAX",
            ArithOp::Min => "MIN",
            ArithOp::ThresholdConst => "THRESHOLD",
            ArithOp::ShlConst => "SHL",
            ArithOp::ShrConst => "SHR",
        };
        f.write_str(s)
    }
}

impl fmt::Display for BitwiseOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BitwiseOp::Or => "OR",
            BitwiseOp::And => "AND",
            BitwiseOp::Xor => "XOR",
            BitwiseOp::Not => "NOT",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_semantics() {
        assert!(BitwiseOp::Or.apply(false, true));
        assert!(!BitwiseOp::And.apply(false, true));
        assert!(BitwiseOp::Xor.apply(false, true));
        assert!(!BitwiseOp::Xor.apply(true, true));
        assert!(BitwiseOp::Not.apply(false, true)); // second operand ignored
        assert!(!BitwiseOp::Not.apply(true, false));
    }

    #[test]
    fn fan_in_rules_follow_the_paper() {
        assert_eq!(BitwiseOp::Or.analog_fan_in(128), 128);
        assert_eq!(BitwiseOp::And.analog_fan_in(128), 2);
        assert_eq!(BitwiseOp::Xor.analog_fan_in(128), 2);
        assert_eq!(BitwiseOp::Not.analog_fan_in(128), 1);
    }

    #[test]
    fn pim_configs_map_one_to_one() {
        use std::collections::HashSet;
        let configs: HashSet<_> = BitwiseOp::ALL.iter().map(|o| o.pim_config()).collect();
        assert_eq!(configs.len(), BitwiseOp::ALL.len());
    }

    #[test]
    fn display_names() {
        let names: Vec<String> = BitwiseOp::ALL.iter().map(ToString::to_string).collect();
        assert_eq!(names, ["OR", "AND", "XOR", "NOT"]);
    }

    #[test]
    fn arith_scalar_semantics() {
        assert_eq!(ArithOp::Add.eval_lane(200, 100, 8), 44); // wraps at 2^8
        assert_eq!(ArithOp::Sub.eval_lane(3, 5, 8), 254); // two's complement
        assert_eq!(ArithOp::CmpGe.eval_lane(7, 7, 16), 1);
        assert_eq!(ArithOp::CmpLt.eval_lane(7, 7, 16), 0);
        assert_eq!(ArithOp::Max.eval_lane(3, 200, 8), 200);
        assert_eq!(ArithOp::Min.eval_lane(3, 200, 8), 3);
        assert_eq!(ArithOp::ThresholdConst.eval_lane(128, 127, 8), 1);
        assert_eq!(ArithOp::ThresholdConst.eval_lane(127, 127, 8), 0);
        // Inputs are masked to the lane width before evaluation.
        assert_eq!(ArithOp::Add.eval_lane(0x1_00, 0x2_00, 8), 0);
        assert_eq!(ArithOp::Add.eval_lane(u64::MAX, 1, 64), 0);
        // Shifts are logical, mask to the lane width, and saturate to
        // zero at or beyond it.
        assert_eq!(ArithOp::ShlConst.eval_lane(0b1011, 2, 8), 0b101100);
        assert_eq!(ArithOp::ShlConst.eval_lane(0xC1, 1, 8), 0x82);
        assert_eq!(ArithOp::ShrConst.eval_lane(0b1011, 2, 8), 0b10);
        assert_eq!(ArithOp::ShlConst.eval_lane(0xFF, 8, 8), 0);
        assert_eq!(ArithOp::ShrConst.eval_lane(0xFF, 9, 8), 0);
        assert_eq!(ArithOp::ShlConst.eval_lane(1, 0, 8), 1);
    }

    #[test]
    fn arith_lane_masks() {
        assert_eq!(ArithOp::lane_mask(1), 1);
        assert_eq!(ArithOp::lane_mask(8), 0xFF);
        assert_eq!(ArithOp::lane_mask(64), u64::MAX);
    }

    #[test]
    fn arith_result_shapes() {
        for op in ArithOp::ALL {
            let is_mask = op.result_is_mask();
            match op {
                ArithOp::CmpGe | ArithOp::CmpLt | ArithOp::ThresholdConst => assert!(is_mask),
                _ => assert!(!is_mask),
            }
        }
        assert!(ArithOp::ThresholdConst.takes_constant());
        assert!(ArithOp::ShlConst.takes_constant());
        assert!(ArithOp::ShrConst.takes_constant());
        assert!(!ArithOp::Sub.takes_constant());
    }
}
