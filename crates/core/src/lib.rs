//! The Pinatubo processing-in-NVM engine — the paper's primary
//! contribution.
//!
//! The engine sits where the paper's extended memory controller sits: it
//! receives bulk bitwise operations over *rows* of an NVM main memory and
//! executes each one on the cheapest path its operand placement allows
//! (paper §4.1):
//!
//! * **intra-subarray** — all rows share a subarray: multi-row activation
//!   plus one reference-shifted sense; result written back in place
//!   through the local write drivers;
//! * **inter-subarray** — rows share a bank: the global row buffer's added
//!   logic combines rows streamed over the global data lines;
//! * **inter-bank** — rows share the lock-step chip group: the I/O
//!   buffer's added logic combines them;
//! * **host fallback** — rows live in different ranks/channels: operands
//!   must cross the DDR bus, exactly the conventional path Pinatubo is
//!   designed to avoid (the paper's software stack avoids this placement;
//!   the engine still executes it correctly and charges the full cost).
//!
//! # Example
//!
//! ```
//! use pinatubo_core::{BitwiseOp, OpClass, PinatuboConfig, PinatuboEngine};
//! use pinatubo_mem::{MemConfig, RowAddr, RowData};
//!
//! # fn main() -> Result<(), pinatubo_core::PimError> {
//! let mut engine = PinatuboEngine::new(MemConfig::pcm_default(), PinatuboConfig::default());
//! let rows: Vec<RowAddr> = (0..4).map(|r| RowAddr::new(0, 0, 0, 0, r)).collect();
//! let dst = RowAddr::new(0, 0, 0, 0, 100);
//! engine.memory_mut().poke_row(rows[0], &RowData::from_bits(&[true, false]))?;
//! engine.memory_mut().poke_row(rows[2], &RowData::from_bits(&[false, true]))?;
//!
//! // One 4-row OR, computed in a single multi-row activation.
//! let outcome = engine.bulk_op(BitwiseOp::Or, &rows, dst, 2)?;
//! assert_eq!(outcome.class, OpClass::IntraSubarray);
//! assert_eq!(
//!     engine.memory().peek_row(dst).expect("written").bits(2),
//!     vec![true, true],
//! );
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod classify;
pub mod config;
pub mod engine;
pub mod op;
pub mod trace;

/// The workspace-wide seedable PRNG (re-exported from the device layer so
/// every crate above `pinatubo-core` reaches it without an extra
/// dependency edge).
pub use pinatubo_nvm::rng;

pub use classify::OpClass;
pub use config::PinatuboConfig;
pub use engine::{EngineStats, OpOutcome, PinatuboEngine};
pub use op::{ArithOp, BitwiseOp};
pub use trace::{BulkOp, OpTrace};

use pinatubo_mem::MemError;
use std::error::Error;
use std::fmt;

/// Errors produced by the PIM engine.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PimError {
    /// The operation was given no operand rows.
    EmptyOperands,
    /// NOT takes exactly one operand row.
    NotTakesOneOperand {
        /// How many rows were supplied.
        got: usize,
    },
    /// AND/OR/XOR need at least two operand rows.
    NeedTwoOperands {
        /// How many rows were supplied.
        got: usize,
    },
    /// The configured fan-in cap is below 2, which cannot express any
    /// bitwise operation.
    FanInCapTooSmall {
        /// The configured cap.
        cap: usize,
    },
    /// The operation decomposes into a chain that uses `dst` as an
    /// accumulator, but `dst` is also an operand — its original value
    /// would be overwritten before being read.
    DstAliasesOperands,
    /// An architecture-level failure (address, geometry or circuit limit).
    Mem(MemError),
}

impl fmt::Display for PimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PimError::EmptyOperands => write!(f, "bulk operation has no operand rows"),
            PimError::NotTakesOneOperand { got } => {
                write!(f, "NOT takes exactly one operand row, got {got}")
            }
            PimError::NeedTwoOperands { got } => {
                write!(
                    f,
                    "bitwise operation needs at least two operand rows, got {got}"
                )
            }
            PimError::FanInCapTooSmall { cap } => {
                write!(f, "configured fan-in cap {cap} is below the minimum of 2")
            }
            PimError::DstAliasesOperands => write!(
                f,
                "destination row is also an operand of a chained operation"
            ),
            PimError::Mem(e) => write!(f, "memory error: {e}"),
        }
    }
}

impl Error for PimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PimError::Mem(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MemError> for PimError {
    fn from(e: MemError) -> Self {
        PimError::Mem(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_and_source() {
        let e = PimError::from(MemError::EmptyOperation);
        assert!(Error::source(&e).is_some());
        assert!(PimError::EmptyOperands.to_string().contains("no operand"));
    }

    #[test]
    fn errors_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PimError>();
    }
}
