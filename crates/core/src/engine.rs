//! The bulk-bitwise-operation engine.
//!
//! [`PinatuboEngine::bulk_op`] decomposes an n-operand operation into
//! hardware *primitives* — multi-row OR groups up to the sense-margin
//! fan-in, 2-row AND senses, XOR micro-step pairs, INV reads — and executes
//! each primitive on the cheapest path its placement allows (see
//! [`crate::classify`]). Chaining across groups reuses the destination row
//! as an accumulator, exactly what the in-place write-back path of the
//! modified write drivers makes free.

use crate::classify::OpClass;
use crate::config::PinatuboConfig;
use crate::op::BitwiseOp;
use crate::PimError;
use pinatubo_mem::{MainMemory, MemConfig, MemError, MemStats, PimConfig, RowAddr, RowData};
use pinatubo_nvm::sense_amp::SenseMode;
use std::ops::{Add, AddAssign};

/// Engine-level counters (on top of the memory's command statistics).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EngineStats {
    /// Bulk operations executed.
    pub bulk_ops: u64,
    /// Hardware primitives those decomposed into.
    pub primitives: u64,
    /// Primitives executed intra-subarray.
    pub intra_subarray: u64,
    /// Primitives executed at the global row buffer.
    pub inter_subarray: u64,
    /// Primitives executed at the I/O buffer.
    pub inter_bank: u64,
    /// Primitives that had to fall back to the host path.
    pub host_fallback: u64,
    /// Total operand rows consumed.
    pub operand_rows: u64,
}

impl EngineStats {
    fn count_class(&mut self, class: OpClass) {
        match class {
            OpClass::IntraSubarray => self.intra_subarray += 1,
            OpClass::InterSubarray => self.inter_subarray += 1,
            OpClass::InterBank => self.inter_bank += 1,
            OpClass::HostFallback => self.host_fallback += 1,
        }
    }
}

impl Add for EngineStats {
    type Output = EngineStats;
    fn add(self, rhs: EngineStats) -> EngineStats {
        EngineStats {
            bulk_ops: self.bulk_ops + rhs.bulk_ops,
            primitives: self.primitives + rhs.primitives,
            intra_subarray: self.intra_subarray + rhs.intra_subarray,
            inter_subarray: self.inter_subarray + rhs.inter_subarray,
            inter_bank: self.inter_bank + rhs.inter_bank,
            host_fallback: self.host_fallback + rhs.host_fallback,
            operand_rows: self.operand_rows + rhs.operand_rows,
        }
    }
}

impl AddAssign for EngineStats {
    fn add_assign(&mut self, rhs: EngineStats) {
        *self = *self + rhs;
    }
}

/// What one bulk operation cost.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpOutcome {
    /// The worst placement class any primitive of this op used.
    pub class: OpClass,
    /// Time/energy/event delta attributable to this op.
    pub stats: MemStats,
    /// Hardware primitives the op decomposed into.
    pub primitives: u64,
}

impl OpOutcome {
    /// Simulated time of this op, nanoseconds.
    #[must_use]
    pub fn time_ns(&self) -> f64 {
        self.stats.time_ns
    }

    /// Energy of this op, picojoules.
    #[must_use]
    pub fn energy_pj(&self) -> f64 {
        self.stats.total_energy_pj()
    }
}

/// The Pinatubo engine: an NVM main memory plus the extended controller
/// that drives PIM operations on it.
///
/// See the crate-level example for typical use.
#[derive(Debug)]
pub struct PinatuboEngine {
    mem: MainMemory,
    config: PinatuboConfig,
    stats: EngineStats,
}

impl PinatuboEngine {
    /// Builds an engine over a fresh memory.
    #[must_use]
    pub fn new(mem_config: MemConfig, config: PinatuboConfig) -> Self {
        PinatuboEngine {
            mem: MainMemory::new(mem_config),
            config,
            stats: EngineStats::default(),
        }
    }

    /// Builds an engine over an existing memory (keeps its contents and
    /// statistics).
    #[must_use]
    pub fn with_memory(mem: MainMemory, config: PinatuboConfig) -> Self {
        PinatuboEngine {
            mem,
            config,
            stats: EngineStats::default(),
        }
    }

    /// The underlying memory.
    #[must_use]
    pub fn memory(&self) -> &MainMemory {
        &self.mem
    }

    /// Mutable access to the underlying memory (workload setup).
    pub fn memory_mut(&mut self) -> &mut MainMemory {
        &mut self.mem
    }

    /// Consumes the engine, returning the memory.
    #[must_use]
    pub fn into_memory(self) -> MainMemory {
        self.mem
    }

    /// The engine configuration.
    #[must_use]
    pub fn config(&self) -> &PinatuboConfig {
        &self.config
    }

    /// Engine-level counters.
    #[must_use]
    pub fn stats(&self) -> &EngineStats {
        &self.stats
    }

    /// Splits off a per-channel engine shard: the memory state `channel`
    /// owns moves into the shard (see [`MainMemory::split_channel`]),
    /// the engine configuration is shared, and the shard's counters start
    /// at zero. Merge back with [`PinatuboEngine::absorb`].
    ///
    /// # Panics
    ///
    /// Panics if `channel` is outside the memory geometry.
    #[must_use]
    pub fn split_channel(&mut self, channel: u32) -> PinatuboEngine {
        PinatuboEngine {
            mem: self.mem.split_channel(channel),
            config: self.config.clone(),
            stats: EngineStats::default(),
        }
    }

    /// Merges a shard produced by [`PinatuboEngine::split_channel`] back:
    /// memory state and statistics ledgers (both the memory's and the
    /// engine's) are combined deterministically.
    ///
    /// # Panics
    ///
    /// Panics under the conditions of [`MainMemory::absorb`].
    pub fn absorb(&mut self, shard: PinatuboEngine) {
        self.mem.absorb(shard.mem);
        self.stats += shard.stats;
    }

    /// Clones a per-channel engine shard for a *persistent* worker (see
    /// [`MainMemory::clone_channel`]): this engine keeps a stale mirror of
    /// the channel and is brought up to date with
    /// [`pinatubo_mem::ChannelDelta`]s rather than a whole-state absorb.
    /// The shard's counters start at zero.
    ///
    /// # Panics
    ///
    /// Panics if `channel` is outside the memory geometry.
    #[must_use]
    pub fn clone_channel(&mut self, channel: u32) -> PinatuboEngine {
        PinatuboEngine {
            mem: self.mem.clone_channel(channel),
            config: self.config.clone(),
            stats: EngineStats::default(),
        }
    }

    /// Resets the engine-level counters, returning the old tally — the
    /// counterpart of [`MainMemory::take_stats`] for the delta-sync path.
    pub fn take_engine_stats(&mut self) -> EngineStats {
        std::mem::take(&mut self.stats)
    }

    /// Adds a shard's taken engine counters into this engine's tally.
    pub fn merge_engine_stats(&mut self, stats: EngineStats) {
        self.stats += stats;
    }

    /// Rows one analog OR sense may combine: the configured cap clipped by
    /// the technology's sense margin.
    #[must_use]
    pub fn effective_fan_in(&self) -> usize {
        self.config.max_fan_in.min(self.mem.max_or_fan_in())
    }

    /// Executes one bulk bitwise operation: `dst = op(operands…)` over the
    /// first `cols` bits of each row.
    ///
    /// # Errors
    ///
    /// * [`PimError::EmptyOperands`] / [`PimError::NotTakesOneOperand`] /
    ///   [`PimError::NeedTwoOperands`] on arity violations;
    /// * [`PimError::FanInCapTooSmall`] when OR is requested but neither
    ///   the configuration nor the technology allows even a 2-row sense
    ///   (e.g. the engine was built over DRAM);
    /// * [`PimError::Mem`] for address/geometry/circuit failures.
    pub fn bulk_op(
        &mut self,
        op: BitwiseOp,
        operands: &[RowAddr],
        dst: RowAddr,
        cols: u64,
    ) -> Result<OpOutcome, PimError> {
        if operands.is_empty() {
            return Err(PimError::EmptyOperands);
        }
        match op {
            BitwiseOp::Not if operands.len() != 1 => {
                return Err(PimError::NotTakesOneOperand {
                    got: operands.len(),
                })
            }
            BitwiseOp::Or | BitwiseOp::And | BitwiseOp::Xor if operands.len() < 2 => {
                return Err(PimError::NeedTwoOperands {
                    got: operands.len(),
                })
            }
            _ => {}
        }

        // The placement of the whole operand set (plus dst) decides the
        // decomposition: intra-subarray sets use analog multi-row sensing
        // (chunked by the sense-margin fan-in), everything else streams
        // once through the combining buffer, which has no fan-in limit.
        let mut all = operands.to_vec();
        all.push(dst);
        let class = OpClass::classify(&all);

        // Chained decompositions accumulate through `dst`; if `dst` is also
        // an operand its original value would be clobbered before being
        // read, so the driver rejects the aliasing (single-pass executions
        // read every operand before the write and are safe).
        let chains = class == OpClass::IntraSubarray
            && match op {
                BitwiseOp::Or => operands.len() > self.effective_fan_in().max(2),
                BitwiseOp::And | BitwiseOp::Xor => operands.len() > 2,
                BitwiseOp::Not => false,
            };
        if chains && operands.contains(&dst) {
            return Err(PimError::DstAliasesOperands);
        }

        let before = *self.mem.stats();
        let mut worst = OpClass::IntraSubarray;
        let mut primitives = 0u64;

        match op {
            BitwiseOp::Not => {
                let class = self.primitive_not(operands[0], dst, cols)?;
                worst = worst.max(class);
                primitives += 1;
            }
            BitwiseOp::Or | BitwiseOp::And | BitwiseOp::Xor if class != OpClass::IntraSubarray => {
                // Buffer-logic path: one streaming pass over all operands,
                // one write-back, regardless of operand count.
                self.stats.count_class(class);
                let cfg = match op {
                    BitwiseOp::Or => PimConfig::Or,
                    BitwiseOp::And => PimConfig::And,
                    BitwiseOp::Xor => PimConfig::Xor,
                    BitwiseOp::Not => unreachable!("NOT is handled above"),
                };
                self.buffered_combine(cfg, operands, dst, cols, class)?;
                worst = worst.max(class);
                primitives += 1;
            }
            BitwiseOp::Or => {
                let fan = self.effective_fan_in();
                if fan < 2 {
                    return Err(PimError::FanInCapTooSmall { cap: fan });
                }
                // First group: up to `fan` operands straight into dst.
                let first_len = operands.len().min(fan);
                let class = self.primitive_or(&operands[..first_len], dst, cols)?;
                worst = worst.max(class);
                primitives += 1;
                // Remaining groups accumulate onto dst, which occupies one
                // of the fan-in slots.
                for chunk in operands[first_len..].chunks(fan - 1) {
                    let mut group = Vec::with_capacity(chunk.len() + 1);
                    group.push(dst);
                    group.extend_from_slice(chunk);
                    let class = self.primitive_or(&group, dst, cols)?;
                    worst = worst.max(class);
                    primitives += 1;
                }
            }
            BitwiseOp::And | BitwiseOp::Xor => {
                let class = self.primitive_pair(op, operands[0], operands[1], dst, cols)?;
                worst = worst.max(class);
                primitives += 1;
                for &next in &operands[2..] {
                    let class = self.primitive_pair(op, dst, next, dst, cols)?;
                    worst = worst.max(class);
                    primitives += 1;
                }
            }
        }

        self.stats.bulk_ops += 1;
        self.stats.primitives += primitives;
        self.stats.operand_rows += operands.len() as u64;
        let delta = subtract_stats(*self.mem.stats(), before);
        Ok(OpOutcome {
            class: worst,
            stats: delta,
            primitives,
        })
    }

    /// Copies one row to another (`dst = src`), on the cheapest path the
    /// placement allows. Useful as a data-movement utility and as the
    /// materialization step applications need around scratch registers.
    ///
    /// # Errors
    ///
    /// [`PimError::Mem`] for address/geometry failures.
    pub fn copy_row(
        &mut self,
        src: RowAddr,
        dst: RowAddr,
        cols: u64,
    ) -> Result<OpOutcome, PimError> {
        let before = *self.mem.stats();
        let class = OpClass::classify(&[src, dst]);
        self.stats.count_class(class);
        match class {
            OpClass::IntraSubarray => {
                let data = self.mem.activate_read(src, cols)?;
                self.write_back_local(dst, data)?;
            }
            OpClass::InterSubarray => {
                let data = self.mem.read_row_to_buffer(src, cols)?;
                self.mem.write_row_from_buffer(dst, data)?;
            }
            OpClass::InterBank => {
                let data = self.mem.read_row_to_io_buffer(src, cols)?;
                self.mem.write_row_from_io_buffer(dst, data)?;
            }
            OpClass::HostFallback => {
                let data = self.mem.read_row_over_bus(src, cols)?;
                self.mem.write_row_over_bus(dst, data)?;
            }
        }
        self.stats.bulk_ops += 1;
        self.stats.primitives += 1;
        self.stats.operand_rows += 1;
        Ok(OpOutcome {
            class,
            stats: subtract_stats(*self.mem.stats(), before),
            primitives: 1,
        })
    }

    /// Writes an intra-subarray result back: through the modified local
    /// write drivers when the configuration has the Fig. 8a path, or
    /// exported over GDL + bus and written conventionally when it does
    /// not.
    fn write_back_local(&mut self, dst: RowAddr, data: RowData) -> Result<(), PimError> {
        if self.config.in_place_write_back {
            self.mem.write_row_local(dst, data)?;
        } else {
            self.mem.charge_result_export(data.len_bits());
            self.mem.write_row_over_bus(dst, data)?;
        }
        Ok(())
    }

    /// The last rung of the recovery ladder: when the protected multi-row
    /// sense stays unstable even after re-calibration retries, recompute
    /// the primitive the processor-centric way — parity-checked single-row
    /// reads into the row buffer, a digital combine, and a conventional
    /// write-back. Slower, but immune to multi-row sense-margin faults.
    fn rmw_fallback(
        &mut self,
        cfg: PimConfig,
        rows: &[RowAddr],
        dst: RowAddr,
        cols: u64,
    ) -> Result<(), PimError> {
        self.mem.note_rmw_fallback();
        match self.rmw_combine(cfg, rows, dst, cols) {
            Ok(()) => {
                self.mem.note_recovery_resolved();
                Ok(())
            }
            Err(e) => {
                self.mem.note_recovery_failed();
                Err(e)
            }
        }
    }

    fn rmw_combine(
        &mut self,
        cfg: PimConfig,
        rows: &[RowAddr],
        dst: RowAddr,
        cols: u64,
    ) -> Result<(), PimError> {
        let mut acc: Option<RowData> = None;
        for &row in rows {
            let data = self.mem.activate_read(row, cols)?;
            match &mut acc {
                None => acc = Some(data),
                Some(acc) => self.mem.buffer_logic(cfg, acc, &data, cols)?,
            }
        }
        let acc = acc.expect("rows is non-empty by construction");
        self.write_back_local(dst, acc)
    }

    // ---- primitives ----

    /// One OR group (2..=fan rows) into `dst`.
    fn primitive_or(
        &mut self,
        rows: &[RowAddr],
        dst: RowAddr,
        cols: u64,
    ) -> Result<OpClass, PimError> {
        let mut all = rows.to_vec();
        all.push(dst);
        let class = OpClass::classify(&all);
        self.stats.count_class(class);
        match class {
            OpClass::IntraSubarray => {
                self.mem.set_pim_config(PimConfig::Or);
                let mode = SenseMode::or(rows.len()).map_err(MemError::from)?;
                match self.mem.multi_activate_sense_protected(rows, mode, cols) {
                    Ok(result) => self.write_back_local(dst, result)?,
                    Err(MemError::SenseUnstable { .. }) => {
                        self.rmw_fallback(PimConfig::Or, rows, dst, cols)?;
                    }
                    Err(e) => return Err(e.into()),
                }
            }
            _ => self.buffered_combine(PimConfig::Or, rows, dst, cols, class)?,
        }
        Ok(class)
    }

    /// One 2-row AND or XOR pair into `dst`.
    fn primitive_pair(
        &mut self,
        op: BitwiseOp,
        a: RowAddr,
        b: RowAddr,
        dst: RowAddr,
        cols: u64,
    ) -> Result<OpClass, PimError> {
        let class = OpClass::classify(&[a, b, dst]);
        self.stats.count_class(class);
        match (op, class) {
            (BitwiseOp::And, OpClass::IntraSubarray) => {
                self.mem.set_pim_config(PimConfig::And);
                let mode = SenseMode::and(2).map_err(MemError::from)?;
                match self.mem.multi_activate_sense_protected(&[a, b], mode, cols) {
                    Ok(result) => self.write_back_local(dst, result)?,
                    Err(MemError::SenseUnstable { .. }) => {
                        self.rmw_fallback(PimConfig::And, &[a, b], dst, cols)?;
                    }
                    Err(e) => return Err(e.into()),
                }
            }
            (BitwiseOp::Xor, OpClass::IntraSubarray) => {
                // Two micro-steps: operand A sampled onto Ch, operand B into
                // the latch; the add-on transistors output the XOR (Fig. 6).
                self.mem.set_pim_config(PimConfig::Xor);
                let mut sampled = self.mem.activate_read(a, cols)?;
                let latched = self.mem.activate_read(b, cols)?;
                sampled.xor_assign(&latched);
                self.write_back_local(dst, sampled)?;
            }
            (_, class) => {
                let cfg = match op {
                    BitwiseOp::And => PimConfig::And,
                    BitwiseOp::Xor => PimConfig::Xor,
                    BitwiseOp::Or => PimConfig::Or,
                    BitwiseOp::Not => unreachable!("NOT never reaches primitive_pair"),
                };
                self.buffered_combine(cfg, &[a, b], dst, cols, class)?;
            }
        }
        Ok(class)
    }

    /// INV of one row into `dst`.
    fn primitive_not(
        &mut self,
        src: RowAddr,
        dst: RowAddr,
        cols: u64,
    ) -> Result<OpClass, PimError> {
        let class = OpClass::classify(&[src, dst]);
        self.stats.count_class(class);
        self.mem.set_pim_config(PimConfig::Inv);
        match class {
            OpClass::IntraSubarray => {
                let data = self.mem.activate_read(src, cols)?;
                let inverted = self.mem.invert_in_sense_amp(data);
                self.write_back_local(dst, inverted)?;
            }
            OpClass::InterSubarray => {
                let data = self.mem.read_row_to_buffer(src, cols)?;
                let inverted = self.mem.invert_in_sense_amp(data);
                self.mem.write_row_from_buffer(dst, inverted)?;
            }
            OpClass::InterBank => {
                let data = self.mem.read_row_to_io_buffer(src, cols)?;
                let inverted = self.mem.invert_in_sense_amp(data);
                self.mem.write_row_from_io_buffer(dst, inverted)?;
            }
            OpClass::HostFallback => {
                let data = self.mem.read_row_over_bus(src, cols)?;
                let inverted = self.mem.invert_in_sense_amp(data);
                self.mem.write_row_over_bus(dst, inverted)?;
            }
        }
        Ok(class)
    }

    /// The buffer-logic path shared by inter-subarray, inter-bank and
    /// host-fallback execution: stream operands to the combining buffer,
    /// apply the digital logic, write the result to `dst`.
    fn buffered_combine(
        &mut self,
        cfg: PimConfig,
        rows: &[RowAddr],
        dst: RowAddr,
        cols: u64,
        class: OpClass,
    ) -> Result<(), PimError> {
        self.mem.set_pim_config(cfg);
        let mut acc: Option<RowData> = None;
        for &row in rows {
            let data = match class {
                OpClass::HostFallback => self.mem.read_row_over_bus(row, cols)?,
                OpClass::InterBank => self.mem.read_row_to_io_buffer(row, cols)?,
                _ => self.mem.read_row_to_buffer(row, cols)?,
            };
            match &mut acc {
                None => acc = Some(data),
                Some(acc) => self.mem.buffer_logic(cfg, acc, &data, cols)?,
            }
        }
        let acc = acc.expect("rows is non-empty by construction");
        match class {
            OpClass::HostFallback => self.mem.write_row_over_bus(dst, acc)?,
            OpClass::InterBank => self.mem.write_row_from_io_buffer(dst, acc)?,
            _ => self.mem.write_row_from_buffer(dst, acc)?,
        }
        Ok(())
    }
}

/// Componentwise `after - before` for stats deltas.
fn subtract_stats(after: MemStats, before: MemStats) -> MemStats {
    after - before
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> PinatuboEngine {
        PinatuboEngine::new(MemConfig::pcm_default(), PinatuboConfig::default())
    }

    fn addr(subarray: u32, row: u32) -> RowAddr {
        RowAddr::new(0, 0, 0, subarray, row)
    }

    fn bank_addr(bank: u32, subarray: u32, row: u32) -> RowAddr {
        RowAddr::new(0, 0, bank, subarray, row)
    }

    /// Reference model: apply `op` across operand bit-vectors.
    fn reference(op: BitwiseOp, rows: &[Vec<bool>]) -> Vec<bool> {
        let cols = rows[0].len();
        (0..cols)
            .map(|c| {
                let mut acc = rows[0][c];
                if op == BitwiseOp::Not {
                    return !acc;
                }
                for row in &rows[1..] {
                    acc = op.apply(acc, row[c]);
                }
                acc
            })
            .collect()
    }

    fn load(engine: &mut PinatuboEngine, addrs: &[RowAddr], rows: &[Vec<bool>]) {
        for (a, bits) in addrs.iter().zip(rows) {
            engine
                .memory_mut()
                .poke_row(*a, &RowData::from_bits(bits))
                .expect("poke");
        }
    }

    #[test]
    fn or_128_rows_is_one_primitive() {
        let mut e = engine();
        let rows: Vec<RowAddr> = (0..128).map(|r| addr(0, r)).collect();
        let dst = addr(0, 200);
        let data: Vec<Vec<bool>> = (0..128).map(|i| vec![i == 77, false, i % 2 == 0]).collect();
        load(&mut e, &rows, &data);
        let outcome = e.bulk_op(BitwiseOp::Or, &rows, dst, 3).expect("128-row OR");
        assert_eq!(outcome.class, OpClass::IntraSubarray);
        assert_eq!(outcome.primitives, 1);
        assert_eq!(
            e.memory().peek_row(dst).expect("dst written").bits(3),
            reference(BitwiseOp::Or, &data)
        );
        assert_eq!(e.stats().intra_subarray, 1);
    }

    #[test]
    fn or_beyond_fan_in_chains_through_dst() {
        let mut e = engine();
        // 200 operands with a 128 fan-in: group of 128, then 72 + dst.
        let rows: Vec<RowAddr> = (0..200).map(|r| addr(0, r)).collect();
        let dst = addr(0, 300);
        let data: Vec<Vec<bool>> = (0..200).map(|i| vec![i == 199]).collect();
        load(&mut e, &rows, &data);
        let outcome = e.bulk_op(BitwiseOp::Or, &rows, dst, 1).expect("200-row OR");
        assert_eq!(outcome.primitives, 2);
        assert!(e.memory().peek_row(dst).expect("dst").get(0));
    }

    #[test]
    fn two_row_config_decomposes_or() {
        let mut e = PinatuboEngine::new(MemConfig::pcm_default(), PinatuboConfig::two_row());
        assert_eq!(e.effective_fan_in(), 2);
        let rows: Vec<RowAddr> = (0..8).map(|r| addr(0, r)).collect();
        let dst = addr(0, 100);
        let data: Vec<Vec<bool>> = (0..8).map(|i| vec![i == 5]).collect();
        load(&mut e, &rows, &data);
        // 2 + accumulate 1-at-a-time: 1 + 6 = 7 primitives.
        let outcome = e.bulk_op(BitwiseOp::Or, &rows, dst, 1).expect("chained OR");
        assert_eq!(outcome.primitives, 7);
        assert!(e.memory().peek_row(dst).expect("dst").get(0));
    }

    #[test]
    fn and_chains_pairwise() {
        let mut e = engine();
        let rows: Vec<RowAddr> = (0..3).map(|r| addr(0, r)).collect();
        let dst = addr(0, 50);
        let data = vec![
            vec![true, true, false],
            vec![true, true, true],
            vec![true, false, true],
        ];
        load(&mut e, &rows, &data);
        let outcome = e.bulk_op(BitwiseOp::And, &rows, dst, 3).expect("3-way AND");
        assert_eq!(outcome.primitives, 2);
        assert_eq!(
            e.memory().peek_row(dst).expect("dst").bits(3),
            reference(BitwiseOp::And, &data)
        );
    }

    #[test]
    fn xor_uses_two_reads_per_pair() {
        let mut e = engine();
        let rows = [addr(0, 0), addr(0, 1)];
        let dst = addr(0, 9);
        let data = vec![vec![true, false, true], vec![true, true, false]];
        load(&mut e, &rows, &data);
        let outcome = e.bulk_op(BitwiseOp::Xor, &rows, dst, 3).expect("XOR");
        assert_eq!(outcome.stats.events.activates, 2);
        assert_eq!(outcome.stats.events.row_writes, 1);
        assert_eq!(
            e.memory().peek_row(dst).expect("dst").bits(3),
            reference(BitwiseOp::Xor, &data)
        );
    }

    #[test]
    fn not_inverts_in_place_path() {
        let mut e = engine();
        let src = addr(0, 0);
        let dst = addr(0, 1);
        let data = vec![vec![true, false, true]];
        load(&mut e, &[src], &data);
        e.bulk_op(BitwiseOp::Not, &[src], dst, 3).expect("NOT");
        assert_eq!(
            e.memory().peek_row(dst).expect("dst").bits(3),
            vec![false, true, false]
        );
    }

    #[test]
    fn inter_subarray_operands_use_buffer_logic() {
        let mut e = engine();
        let a = addr(0, 0);
        let b = addr(1, 0); // different subarray, same bank
        let dst = addr(0, 5);
        let data = vec![vec![true, false], vec![false, true]];
        load(&mut e, &[a, b], &data);
        let outcome = e
            .bulk_op(BitwiseOp::Or, &[a, b], dst, 2)
            .expect("inter-sub OR");
        assert_eq!(outcome.class, OpClass::InterSubarray);
        assert!(outcome.stats.events.logic_passes >= 1);
        assert!(outcome.stats.events.gdl_transfers >= 2);
        assert_eq!(outcome.stats.events.bus_bits, 0, "no DDR bus traffic");
        assert_eq!(
            e.memory().peek_row(dst).expect("dst").bits(2),
            vec![true, true]
        );
    }

    #[test]
    fn inter_bank_operands_classify_and_compute() {
        let mut e = engine();
        let a = bank_addr(0, 0, 0);
        let b = bank_addr(3, 0, 0);
        let dst = bank_addr(0, 0, 5);
        let data = vec![vec![true, true], vec![true, false]];
        load(&mut e, &[a, b], &data);
        let outcome = e
            .bulk_op(BitwiseOp::And, &[a, b], dst, 2)
            .expect("inter-bank AND");
        assert_eq!(outcome.class, OpClass::InterBank);
        assert_eq!(
            e.memory().peek_row(dst).expect("dst").bits(2),
            vec![true, false]
        );
    }

    #[test]
    fn cross_rank_operands_fall_back_to_host() {
        let mut e = engine();
        let a = RowAddr::new(0, 0, 0, 0, 0);
        let b = RowAddr::new(0, 1, 0, 0, 0);
        let dst = RowAddr::new(0, 0, 0, 0, 5);
        let data = vec![vec![true, false], vec![false, true]];
        load(&mut e, &[a, b], &data);
        let outcome = e
            .bulk_op(BitwiseOp::Xor, &[a, b], dst, 2)
            .expect("host XOR");
        assert_eq!(outcome.class, OpClass::HostFallback);
        assert!(
            outcome.stats.events.bus_bits > 0,
            "operands crossed the bus"
        );
        assert_eq!(
            e.memory().peek_row(dst).expect("dst").bits(2),
            vec![true, true]
        );
    }

    #[test]
    fn intra_is_faster_and_cheaper_than_host_fallback() {
        let make = || engine();
        let data = vec![vec![true; 64], vec![false; 64]];

        let mut intra = make();
        let (a, b, d) = (addr(0, 0), addr(0, 1), addr(0, 2));
        load(&mut intra, &[a, b], &data);
        let intra_out = intra.bulk_op(BitwiseOp::Or, &[a, b], d, 64).expect("intra");

        let mut host = make();
        let (a2, b2) = (RowAddr::new(0, 0, 0, 0, 0), RowAddr::new(1, 0, 0, 0, 0));
        load(&mut host, &[a2, b2], &data);
        let host_out = host.bulk_op(BitwiseOp::Or, &[a2, b2], d, 64).expect("host");

        assert!(intra_out.time_ns() < host_out.time_ns());
        assert!(intra_out.energy_pj() < host_out.energy_pj());
    }

    #[test]
    fn arity_violations_are_rejected() {
        let mut e = engine();
        assert_eq!(
            e.bulk_op(BitwiseOp::Or, &[], addr(0, 0), 1),
            Err(PimError::EmptyOperands)
        );
        assert_eq!(
            e.bulk_op(BitwiseOp::Or, &[addr(0, 0)], addr(0, 1), 1),
            Err(PimError::NeedTwoOperands { got: 1 })
        );
        assert_eq!(
            e.bulk_op(BitwiseOp::Not, &[addr(0, 0), addr(0, 1)], addr(0, 2), 1),
            Err(PimError::NotTakesOneOperand { got: 2 })
        );
    }

    #[test]
    fn or_on_dram_memory_is_rejected() {
        let mut e = PinatuboEngine::new(MemConfig::dram_default(), PinatuboConfig::default());
        let err = e
            .bulk_op(BitwiseOp::Or, &[addr(0, 0), addr(0, 1)], addr(0, 2), 1)
            .expect_err("DRAM cannot multi-row OR");
        assert_eq!(err, PimError::FanInCapTooSmall { cap: 1 });
    }

    #[test]
    fn multi_row_or_beats_two_row_in_time() {
        let rows: Vec<RowAddr> = (0..64).map(|r| addr(0, r)).collect();
        let dst = addr(0, 100);
        let cols = 1 << 14;

        let mut multi = engine();
        let t_multi = multi
            .bulk_op(BitwiseOp::Or, &rows, dst, cols)
            .expect("multi")
            .time_ns();

        let mut two = PinatuboEngine::new(MemConfig::pcm_default(), PinatuboConfig::two_row());
        let t_two = two
            .bulk_op(BitwiseOp::Or, &rows, dst, cols)
            .expect("two-row")
            .time_ns();

        assert!(
            t_multi < t_two / 4.0,
            "multi-row {t_multi} ns should be far below chained {t_two} ns"
        );
    }

    #[test]
    fn outcome_stats_are_deltas() {
        let mut e = engine();
        let rows = [addr(0, 0), addr(0, 1)];
        let dst = addr(0, 2);
        let first = e.bulk_op(BitwiseOp::Or, &rows, dst, 8).expect("first");
        let second = e.bulk_op(BitwiseOp::Or, &rows, dst, 8).expect("second");
        // The second op includes no MRS (mode cached), so it is no more
        // expensive than the first.
        assert!(second.time_ns() <= first.time_ns());
        assert!(second.time_ns() > 0.0);
    }

    #[test]
    fn chained_alias_of_dst_is_rejected() {
        let mut e = engine();
        let rows: Vec<RowAddr> = (0..4).map(|r| addr(0, r)).collect();
        // XOR over 4 operands chains through dst; dst aliasing an operand
        // would read a clobbered value.
        assert_eq!(
            e.bulk_op(BitwiseOp::Xor, &rows, rows[2], 4),
            Err(PimError::DstAliasesOperands)
        );
        // A single-group OR reads every operand before writing: aliasing
        // is safe and produces the correct result.
        let data = vec![vec![true, false], vec![false, false]];
        load(&mut e, &rows[..2], &data);
        e.bulk_op(BitwiseOp::Or, &rows[..2], rows[1], 2)
            .expect("single-group alias is fine");
        assert_eq!(
            e.memory().peek_row(rows[1]).expect("dst").bits(2),
            vec![true, false]
        );
    }

    #[test]
    fn copy_row_moves_data_on_every_path() {
        let mut e = engine();
        let data = vec![vec![true, false, true]];
        let cases = [
            (addr(0, 0), addr(0, 5), OpClass::IntraSubarray),
            (addr(0, 1), addr(3, 5), OpClass::InterSubarray),
            (bank_addr(0, 0, 2), bank_addr(5, 0, 2), OpClass::InterBank),
            (
                RowAddr::new(0, 0, 0, 0, 3),
                RowAddr::new(2, 0, 0, 0, 3),
                OpClass::HostFallback,
            ),
        ];
        for (src, dst, expect_class) in cases {
            load(&mut e, &[src], &data);
            let outcome = e.copy_row(src, dst, 3).expect("copy");
            assert_eq!(outcome.class, expect_class);
            assert_eq!(
                e.memory().peek_row(dst).expect("copied").bits(3),
                data[0],
                "{expect_class:?}"
            );
        }
    }

    #[test]
    fn inter_bank_costs_more_than_inter_subarray() {
        let cols = 1 << 14;
        let mut inter_sub = engine();
        let s = inter_sub
            .bulk_op(BitwiseOp::Or, &[addr(0, 0), addr(1, 0)], addr(0, 5), cols)
            .expect("inter-sub");
        let mut inter_bank = engine();
        let b = inter_bank
            .bulk_op(
                BitwiseOp::Or,
                &[bank_addr(0, 0, 0), bank_addr(1, 0, 0)],
                bank_addr(0, 0, 5),
                cols,
            )
            .expect("inter-bank");
        assert_eq!(s.class, OpClass::InterSubarray);
        assert_eq!(b.class, OpClass::InterBank);
        assert!(
            b.time_ns() > s.time_ns(),
            "the extra GDL hop to the I/O buffer must cost time ({} vs {})",
            b.time_ns(),
            s.time_ns()
        );
        assert!(b.energy_pj() > s.energy_pj());
    }

    #[test]
    fn disabling_in_place_write_back_costs_bus_traffic() {
        let rows: Vec<RowAddr> = (0..8).map(|r| addr(0, r)).collect();
        let dst = addr(0, 100);
        let cols = 1 << 14;

        let mut with = engine();
        let fast = with
            .bulk_op(BitwiseOp::Or, &rows, dst, cols)
            .expect("in-place");
        assert_eq!(fast.stats.events.bus_bits, 0);

        let mut without = PinatuboEngine::new(
            MemConfig::pcm_default(),
            PinatuboConfig::multi_row().without_in_place_write_back(),
        );
        let slow = without
            .bulk_op(BitwiseOp::Or, &rows, dst, cols)
            .expect("exported");
        assert!(
            slow.stats.events.bus_bits > 0,
            "result crossed the bus twice"
        );
        assert!(slow.time_ns() > fast.time_ns());
        assert!(slow.energy_pj() > fast.energy_pj());
        // Functional result identical either way.
        assert_eq!(
            with.memory().peek_row(dst).expect("a").count_ones(),
            without.memory().peek_row(dst).expect("b").count_ones()
        );
    }

    #[test]
    fn engine_counters_accumulate() {
        let mut e = engine();
        let rows = [addr(0, 0), addr(0, 1)];
        e.bulk_op(BitwiseOp::Or, &rows, addr(0, 2), 4).expect("or");
        e.bulk_op(BitwiseOp::And, &rows, addr(0, 3), 4)
            .expect("and");
        assert_eq!(e.stats().bulk_ops, 2);
        assert_eq!(e.stats().primitives, 2);
        assert_eq!(e.stats().intra_subarray, 2);
        assert_eq!(e.stats().operand_rows, 4);
    }
}
