//! Arc-backed copy-on-write row pages.
//!
//! Row storage groups [`ROWS_PER_PAGE`] consecutive rows of one subarray
//! into an immutable, reference-counted [`RowPage`]. Sharing a channel's
//! state — a worker shard cloned by `MainMemory::clone_channel`, the
//! session parent's stale mirror, a point-in-time snapshot — is then a
//! reference-count bump per page instead of a deep copy per row, and a
//! dirty page travels inside a [`ChannelDelta`](crate::ChannelDelta) as
//! one more reference instead of a cloned row image. A page is deep-copied
//! exactly once: on the first write while it is shared (`Arc::make_mut`),
//! which is what keeps `open_session` and sync cost proportional to
//! *touched* state rather than to memory capacity.

use crate::address::{RowAddr, SubarrayId};
use crate::array::RowData;
use std::collections::HashMap;
use std::sync::Arc;

/// Rows per copy-on-write page. Small enough that the one-time deep copy
/// of a shared page on first write stays cheap (at most this many row
/// images), large enough that page-table overhead stays negligible next
/// to per-row storage. Allocators can align co-written groups to this
/// boundary so a hot destination row does not drag cold neighbours
/// through the copy.
pub const ROWS_PER_PAGE: u32 = 4;

/// Identity of one page: a subarray and a page index within it. Rows
/// `index * ROWS_PER_PAGE .. (index + 1) * ROWS_PER_PAGE` of the subarray
/// live in this page, so a page never spans subarrays (and therefore
/// never spans channels).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub(crate) struct PageId {
    pub(crate) subarray: SubarrayId,
    pub(crate) index: u32,
}

impl PageId {
    /// The page holding `addr`, and the row's slot within it.
    pub(crate) fn of(addr: RowAddr) -> (PageId, usize) {
        (
            PageId {
                subarray: addr.subarray_id(),
                index: addr.row / ROWS_PER_PAGE,
            },
            (addr.row % ROWS_PER_PAGE) as usize,
        )
    }

    /// The channel owning this page.
    pub(crate) fn channel(&self) -> u32 {
        self.subarray.channel
    }

    /// The subarray-relative row index of `slot`.
    pub(crate) fn row_of_slot(&self, slot: usize) -> u32 {
        self.index * ROWS_PER_PAGE + slot as u32
    }
}

/// One page of row images. Slots are `None` until their row is first
/// materialized (absent rows read as zeros at the controller level).
#[derive(Debug, Clone, Default)]
pub(crate) struct RowPage {
    slots: [Option<RowData>; ROWS_PER_PAGE as usize],
}

impl RowPage {
    /// The populated slots, ascending.
    pub(crate) fn iter(&self) -> impl Iterator<Item = (usize, &RowData)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(slot, data)| data.as_ref().map(|d| (slot, d)))
    }
}

/// The sparse page table: every materialized page of the memory, shared
/// by reference until written.
#[derive(Debug, Default)]
pub(crate) struct PageTable {
    pages: HashMap<PageId, Arc<RowPage>>,
}

impl PageTable {
    /// The stored image of `addr`, if the row was ever materialized.
    pub(crate) fn get(&self, addr: RowAddr) -> Option<&RowData> {
        let (id, slot) = PageId::of(addr);
        self.pages.get(&id)?.slots[slot].as_ref()
    }

    /// Stores `data` at `addr`, copying the owning page first if it is
    /// currently shared. Returns whether such a copy-on-write happened
    /// (the caller's cue to count it).
    pub(crate) fn insert(&mut self, addr: RowAddr, data: RowData) -> bool {
        let (id, slot) = PageId::of(addr);
        let page = self.pages.entry(id).or_default();
        let copied = Arc::strong_count(page) > 1;
        Arc::make_mut(page).slots[slot] = Some(data);
        copied
    }

    /// Moves every page of `channel` out into a new table (the
    /// `split_channel` storage transfer; no row data is copied).
    pub(crate) fn drain_channel(&mut self, channel: u32) -> PageTable {
        let ids: Vec<PageId> = self
            .pages
            .keys()
            .filter(|id| id.channel() == channel)
            .copied()
            .collect();
        let mut out = PageTable::default();
        for id in ids {
            if let Some(page) = self.pages.remove(&id) {
                out.pages.insert(id, page);
            }
        }
        out
    }

    /// Shares every page of `channel` into a new table — one reference
    /// bump per page, zero row copies. Writes on either side copy the
    /// affected page first (see [`PageTable::insert`]).
    pub(crate) fn share_channel(&self, channel: u32) -> PageTable {
        PageTable {
            pages: self
                .pages
                .iter()
                .filter(|(id, _)| id.channel() == channel)
                .map(|(&id, page)| (id, Arc::clone(page)))
                .collect(),
        }
    }

    /// One more reference to the page `id`, for shipping it in a delta.
    pub(crate) fn page(&self, id: PageId) -> Option<Arc<RowPage>> {
        self.pages.get(&id).map(Arc::clone)
    }

    /// Installs a shipped page wholesale, replacing any local version.
    /// The page becomes shared between shipper and receiver; the next
    /// local write copies it.
    pub(crate) fn insert_page(&mut self, id: PageId, page: Arc<RowPage>) {
        self.pages.insert(id, page);
    }

    /// Moves every page of `other` in, replacing on collision (the
    /// `absorb` merge; the shard's version of a page wins).
    pub(crate) fn extend(&mut self, other: PageTable) {
        self.pages.extend(other.pages);
    }

    /// Every materialized row of `channel` as `((subarray, row), data)`,
    /// unsorted — the digest path sorts by key itself.
    pub(crate) fn channel_rows(&self, channel: u32) -> Vec<((SubarrayId, u32), &RowData)> {
        self.pages
            .iter()
            .filter(|(id, _)| id.channel() == channel)
            .flat_map(|(id, page)| {
                page.iter()
                    .map(move |(slot, data)| ((id.subarray, id.row_of_slot(slot)), data))
            })
            .collect()
    }

    /// Materialized pages (tests / capacity introspection).
    #[cfg(test)]
    pub(crate) fn page_count(&self) -> usize {
        self.pages.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(channel: u32, row: u32) -> RowAddr {
        RowAddr::new(channel, 0, 0, 0, row)
    }

    #[test]
    fn page_id_groups_consecutive_rows() {
        let (p0, s0) = PageId::of(addr(0, 0));
        let (p7, s7) = PageId::of(addr(0, ROWS_PER_PAGE - 1));
        let (p8, s8) = PageId::of(addr(0, ROWS_PER_PAGE));
        assert_eq!(p0, p7);
        assert_ne!(p0, p8);
        assert_eq!((s0, s7, s8), (0, ROWS_PER_PAGE as usize - 1, 0));
        assert_eq!(p8.row_of_slot(s8), ROWS_PER_PAGE);
    }

    #[test]
    fn shared_pages_copy_only_on_first_write() {
        let mut parent = PageTable::default();
        for row in 0..ROWS_PER_PAGE * 2 {
            assert!(
                !parent.insert(addr(0, row), RowData::from_bits(&[true])),
                "unshared inserts never copy"
            );
        }
        let mut shard = parent.share_channel(0);
        assert_eq!(shard.page_count(), 2);
        // First write to a shared page copies it; the second write to the
        // same (now exclusive) page does not.
        assert!(shard.insert(addr(0, 0), RowData::from_bits(&[false])));
        assert!(!shard.insert(addr(0, 1), RowData::from_bits(&[false])));
        // The other shared page was never written and still copies.
        assert!(shard.insert(addr(0, ROWS_PER_PAGE), RowData::from_bits(&[false])));
        // The parent kept its original images throughout.
        assert_eq!(
            parent.get(addr(0, 0)),
            Some(&RowData::from_bits(&[true])),
            "copy-on-write must not leak into the sharing side"
        );
    }

    #[test]
    fn drain_moves_and_share_keeps() {
        let mut table = PageTable::default();
        table.insert(addr(0, 0), RowData::from_bits(&[true]));
        table.insert(addr(1, 0), RowData::from_bits(&[false]));
        let shared = table.share_channel(1);
        assert!(table.get(addr(1, 0)).is_some(), "share keeps the source");
        let drained = table.drain_channel(1);
        assert!(table.get(addr(1, 0)).is_none(), "drain moves the source");
        assert_eq!(drained.get(addr(1, 0)), shared.get(addr(1, 0)));
        assert!(table.get(addr(0, 0)).is_some());
    }

    #[test]
    fn channel_rows_lists_only_materialized_rows() {
        let mut table = PageTable::default();
        table.insert(addr(0, 3), RowData::from_bits(&[true]));
        table.insert(addr(0, 11), RowData::from_bits(&[true, false]));
        table.insert(addr(2, 5), RowData::from_bits(&[false]));
        let mut rows = table.channel_rows(0);
        rows.sort_unstable_by_key(|&(key, _)| key);
        let keys: Vec<u32> = rows.iter().map(|&((_, row), _)| row).collect();
        assert_eq!(keys, vec![3, 11]);
        assert_eq!(table.channel_rows(1).len(), 0);
        assert_eq!(table.channel_rows(2).len(), 1);
    }
}
