//! (72,64) Hamming SEC-DED code, one check byte per 64-bit data word.
//!
//! Classic extended-Hamming construction: codeword positions `1..=71`
//! carry the 64 data bits at the non-power-of-two positions and seven
//! Hamming check bits at positions `1, 2, 4, …, 64`; an eighth overall
//! parity bit extends the minimum distance to 4, so every single-bit
//! error is *correctable* (the syndrome names its codeword position) and
//! every double-bit error is *detectable* (non-zero syndrome with even
//! overall parity). Three or more flips can alias a single- or zero-error
//! syndrome — the code's own blind spot, far narrower than parity's
//! (any even number of flips).
//!
//! The packed encoder works word-at-a-time: check bit `j` is the parity
//! of the data word ANDed with a precomputed coverage mask, so encoding
//! a word costs seven AND+popcount pairs instead of 64 per-bit loop
//! iterations — the same bit-sliced idiom as the PR 4 fault path. A
//! naive per-bit implementation ([`encode_reference`] /
//! [`decode_reference`]) is kept as the oracle the property tests pin
//! the packed path against.

/// Number of check bits stored per 64-bit data word (7 Hamming + 1
/// overall parity): the code's 12.5 % storage overhead.
pub const CHECK_BITS_PER_WORD: u64 = 8;

/// Codeword position of data bit `i`: the `(i+1)`-th position in
/// `1..=71` that is not a power of two.
const fn data_positions() -> [u8; 64] {
    let mut out = [0u8; 64];
    let mut pos: u8 = 1;
    let mut i = 0;
    while i < 64 {
        if !pos.is_power_of_two() {
            out[i] = pos;
            i += 1;
        }
        pos += 1;
    }
    out
}

/// Inverse of [`data_positions`]: data bit index at codeword position
/// `p`, or `-1` for check-bit and invalid positions.
const fn position_data_bits() -> [i8; 128] {
    let mut out = [-1i8; 128];
    let positions = data_positions();
    let mut i = 0;
    while i < 64 {
        out[positions[i] as usize] = i as i8;
        i += 1;
    }
    out
}

/// Coverage mask for Hamming check bit `j`: bit `i` is set iff data bit
/// `i`'s codeword position has bit `j` set.
const fn coverage_masks() -> [u64; 7] {
    let mut masks = [0u64; 7];
    let positions = data_positions();
    let mut i = 0;
    while i < 64 {
        let mut j = 0;
        while j < 7 {
            if positions[i] & (1 << j) != 0 {
                masks[j] |= 1u64 << i;
            }
            j += 1;
        }
        i += 1;
    }
    masks
}

const DATA_POS: [u8; 64] = data_positions();
const POS_DATA: [i8; 128] = position_data_bits();
const MASKS: [u64; 7] = coverage_masks();

/// What the decoder concluded about one sensed word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decode {
    /// Syndrome clean: the word is accepted as sensed.
    Clean,
    /// Single-bit error. `Some(i)` names the data bit to flip;
    /// `None` means the error sits in a stored check bit (the data
    /// word is already correct).
    Single(Option<u8>),
    /// Double-bit (or syndrome-invalid multi-bit) error: detected but
    /// not correctable — the caller falls back to the retry ladder.
    Double,
}

/// Packed encoder: the check byte for one data word (Hamming bits
/// `c0..=c6` in bits 0–6, overall parity in bit 7). Seven masked
/// popcounts plus one overall popcount — O(1) per word.
#[must_use]
pub fn encode(word: u64) -> u8 {
    let mut check: u8 = 0;
    for (j, mask) in MASKS.iter().enumerate() {
        check |= (((word & mask).count_ones() as u8) & 1) << j;
    }
    // The overall bit covers the data word *and* the seven check bits.
    let overall = (word.count_ones() as u8 + check.count_ones() as u8) & 1;
    check | (overall << 7)
}

/// Decodes a sensed word against its stored check byte.
///
/// The syndrome is the XOR of the recomputed and stored Hamming bits; a
/// mismatching overall parity marks an odd number of flips. With the
/// check store modeled reliable (as the parity array before it), data
/// errors always produce a valid data-bit syndrome; the check-bit and
/// invalid-position cases are still classified faithfully so the codec
/// stands on its own.
#[must_use]
pub fn decode(sensed: u64, check: u8) -> Decode {
    let mut syndrome: u8 = 0;
    for (j, mask) in MASKS.iter().enumerate() {
        let recomputed = ((sensed & mask).count_ones() as u8) & 1;
        syndrome |= (recomputed ^ (check >> j & 1)) << j;
    }
    // Stored overall covers data + c0..=c6, so sensed-data parity XOR
    // the parity of the whole stored byte is the overall mismatch.
    let overall = (sensed.count_ones() as u8 + check.count_ones() as u8) & 1 == 1;
    classify(syndrome, overall)
}

/// Shared syndrome classification for the packed and reference decoders.
fn classify(syndrome: u8, overall: bool) -> Decode {
    match (syndrome, overall) {
        (0, false) => Decode::Clean,
        (0, true) => Decode::Single(None), // overall-parity bit itself
        (s, true) => match POS_DATA.get(s as usize) {
            Some(&d) if d >= 0 => Decode::Single(Some(d as u8)),
            _ if s.is_power_of_two() && s <= 64 => Decode::Single(None), // a check bit
            _ => Decode::Double, // invalid position: >= 3 flips detected
        },
        (_, false) => Decode::Double,
    }
}

/// Applies a decode verdict to the sensed word: flips the named data
/// bit on a correctable single, leaves everything else untouched.
/// Returns the number of data bits changed (0 or 1).
#[must_use]
pub fn correct(sensed: &mut u64, verdict: Decode) -> u64 {
    match verdict {
        Decode::Single(Some(bit)) => {
            *sensed ^= 1u64 << bit;
            1
        }
        _ => 0,
    }
}

/// Per-bit reference encoder: builds the 72-position codeword cell by
/// cell, exactly as a per-cell datapath would. Pinned equal to
/// [`encode`] by the property tests; not used on any hot path.
#[must_use]
pub fn encode_reference(word: u64) -> u8 {
    let mut check: u8 = 0;
    for j in 0..7u8 {
        let mut parity = 0u8;
        for (i, &pos) in DATA_POS.iter().enumerate() {
            if pos & (1 << j) != 0 {
                parity ^= (word >> i & 1) as u8;
            }
        }
        check |= parity << j;
    }
    let mut overall = 0u8;
    for i in 0..64 {
        overall ^= (word >> i & 1) as u8;
    }
    for j in 0..7 {
        overall ^= check >> j & 1;
    }
    check | (overall << 7)
}

/// Per-bit reference decoder: walks every codeword position,
/// accumulating the syndrome as the XOR of the positions whose parity
/// group fails — the textbook per-cell formulation. Pinned equal to
/// [`decode`] by the property tests.
#[must_use]
pub fn decode_reference(sensed: u64, check: u8) -> Decode {
    // XOR of the positions of all set codeword bits is 0 for a valid
    // codeword (each syndrome bit j is group j's parity), so folding
    // set-bit positions yields the error syndrome directly.
    let mut syndrome: u8 = 0;
    let mut ones: u8 = 0;
    for (i, &pos) in DATA_POS.iter().enumerate() {
        if sensed >> i & 1 == 1 {
            syndrome ^= pos;
            ones ^= 1;
        }
    }
    for j in 0..7u8 {
        if check >> j & 1 == 1 {
            syndrome ^= 1 << j;
            ones ^= 1;
        }
    }
    let overall = ones ^ (check >> 7) == 1;
    classify(syndrome, overall)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// SplitMix64 — a throwaway deterministic word generator for the
    /// exhaustive-ish sweeps (the workspace PRNG lives upstream in
    /// `pinatubo_core`, which depends on this crate).
    fn splitmix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn sample_words() -> Vec<u64> {
        let mut words = vec![0, u64::MAX, 1, 1 << 63, 0xAAAA_AAAA_AAAA_AAAA];
        let mut s = 0x5EED;
        words.extend((0..64).map(|_| splitmix(&mut s)));
        words
    }

    #[test]
    fn tables_are_a_valid_hamming_layout() {
        // 64 distinct non-power-of-two positions in 1..=71, invertible.
        for (i, &pos) in DATA_POS.iter().enumerate() {
            assert!((3..=71).contains(&pos) && !pos.is_power_of_two());
            assert_eq!(POS_DATA[pos as usize], i as i8);
        }
        for p in [1usize, 2, 4, 8, 16, 32, 64, 0, 72, 127] {
            assert_eq!(POS_DATA[p], -1);
        }
    }

    #[test]
    fn packed_encode_matches_reference() {
        for word in sample_words() {
            assert_eq!(encode(word), encode_reference(word), "word {word:#x}");
        }
    }

    #[test]
    fn clean_words_decode_clean() {
        for word in sample_words() {
            let check = encode(word);
            assert_eq!(decode(word, check), Decode::Clean);
            assert_eq!(decode_reference(word, check), Decode::Clean);
        }
    }

    #[test]
    fn every_single_flip_is_corrected() {
        for word in sample_words() {
            let check = encode(word);
            for bit in 0..64 {
                let mut sensed = word ^ (1u64 << bit);
                let verdict = decode(sensed, check);
                assert_eq!(verdict, Decode::Single(Some(bit as u8)));
                assert_eq!(decode_reference(sensed, check), verdict);
                assert_eq!(correct(&mut sensed, verdict), 1);
                assert_eq!(sensed, word);
            }
        }
    }

    #[test]
    fn every_double_flip_is_detected() {
        for word in [0u64, u64::MAX, 0x0123_4567_89AB_CDEF] {
            let check = encode(word);
            for a in 0..64 {
                for b in (a + 1)..64 {
                    let sensed = word ^ (1u64 << a) ^ (1u64 << b);
                    assert_eq!(decode(sensed, check), Decode::Double, "flips {a},{b}");
                    assert_eq!(decode_reference(sensed, check), Decode::Double);
                }
            }
        }
    }

    #[test]
    fn check_bit_errors_leave_data_untouched() {
        let word = 0xDEAD_BEEF_CAFE_F00D;
        let check = encode(word);
        for j in 0..8 {
            let verdict = decode(word, check ^ (1 << j));
            assert_eq!(verdict, Decode::Single(None), "check bit {j}");
            assert_eq!(decode_reference(word, check ^ (1 << j)), verdict);
            let mut sensed = word;
            assert_eq!(correct(&mut sensed, verdict), 0);
            assert_eq!(sensed, word);
        }
    }

    #[test]
    fn even_parity_aliasing_flips_do_not_alias_secded() {
        // Double flips inside one word keep per-word parity happy — the
        // documented parity blind spot — but always raise Double here.
        let mut s = 0xA11A5;
        for _ in 0..256 {
            let word = splitmix(&mut s);
            let a = (splitmix(&mut s) % 64) as u32;
            let b = (splitmix(&mut s) % 64) as u32;
            if a == b {
                continue;
            }
            let sensed = word ^ (1u64 << a) ^ (1u64 << b);
            assert_eq!(sensed.count_ones() & 1, word.count_ones() & 1);
            assert_eq!(decode(sensed, encode(word)), Decode::Double);
        }
    }
}
