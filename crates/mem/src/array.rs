//! Packed bit storage for rows.
//!
//! The circuit layer reasons about single cells; the architecture layer
//! needs whole 2^19-bit rows. [`RowData`] packs bits into `u64` words so
//! the functional part of a bulk operation is a word-wise loop. Its
//! equivalence with per-cell sensing is pinned by cross-checking tests in
//! the controller module.

use std::fmt;

/// The contents of one logical row: a packed little-endian bit vector.
///
/// Bit `i` lives in word `i / 64`, position `i % 64`. A `RowData` tracks
/// its own length in bits; the memory controller zero-extends or truncates
/// against the geometry's row width at the array boundary.
///
/// # Example
///
/// ```
/// use pinatubo_mem::RowData;
///
/// let mut a = RowData::from_bits(&[true, false, true, true]);
/// let b = RowData::from_bits(&[true, true, false, true]);
/// a.or_assign(&b);
/// assert_eq!(a.bits(4), vec![true, true, true, true]);
/// assert_eq!(a.count_ones(), 4);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct RowData {
    words: Vec<u64>,
    len_bits: u64,
}

impl RowData {
    /// An all-zero row of `len_bits` bits.
    #[must_use]
    pub fn zeros(len_bits: u64) -> Self {
        RowData {
            words: vec![0; len_bits.div_ceil(64) as usize],
            len_bits,
        }
    }

    /// A row built from individual bits, packed a word at a time.
    #[must_use]
    pub fn from_bits(bits: &[bool]) -> Self {
        let words = bits
            .chunks(64)
            .map(|chunk| {
                chunk
                    .iter()
                    .enumerate()
                    .fold(0u64, |w, (i, &b)| w | (u64::from(b) << i))
            })
            .collect();
        RowData {
            words,
            len_bits: bits.len() as u64,
        }
    }

    /// A row built from pre-packed words; `len_bits` may be shorter than
    /// the words provide, in which case trailing bits are masked off.
    ///
    /// # Panics
    ///
    /// Panics if the words hold fewer than `len_bits` bits.
    #[must_use]
    pub fn from_words(words: Vec<u64>, len_bits: u64) -> Self {
        assert!(
            words.len() as u64 * 64 >= len_bits,
            "{} words cannot hold {len_bits} bits",
            words.len()
        );
        let mut row = RowData { words, len_bits };
        row.words.truncate(len_bits.div_ceil(64) as usize);
        row.mask_tail();
        row
    }

    /// Length in bits.
    #[must_use]
    pub fn len_bits(&self) -> u64 {
        self.len_bits
    }

    /// Whether the row has zero length.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len_bits == 0
    }

    /// The packed words.
    #[must_use]
    pub fn as_words(&self) -> &[u64] {
        &self.words
    }

    /// Mutable access to the packed words, for sparse in-place patching
    /// (fault sites, flip chains). Callers must not set bits beyond
    /// `len_bits` — the tail mask is their contract to preserve.
    pub(crate) fn as_words_mut(&mut self) -> &mut [u64] {
        &mut self.words
    }

    /// Reads bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    #[must_use]
    pub fn get(&self, i: u64) -> bool {
        assert!(
            i < self.len_bits,
            "bit {i} out of bounds ({})",
            self.len_bits
        );
        self.words[(i / 64) as usize] >> (i % 64) & 1 == 1
    }

    /// Writes bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn set(&mut self, i: u64, value: bool) {
        assert!(
            i < self.len_bits,
            "bit {i} out of bounds ({})",
            self.len_bits
        );
        let word = &mut self.words[(i / 64) as usize];
        if value {
            *word |= 1 << (i % 64);
        } else {
            *word &= !(1 << (i % 64));
        }
    }

    /// The first `n` bits as booleans (for tests and small examples),
    /// unpacked a word at a time.
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds the length.
    #[must_use]
    pub fn bits(&self, n: u64) -> Vec<bool> {
        assert!(n <= self.len_bits, "{n} bits out of {}", self.len_bits);
        let mut out = Vec::with_capacity(n as usize);
        for &word in &self.words {
            if out.len() as u64 >= n {
                break;
            }
            let take = (n - out.len() as u64).min(64);
            out.extend((0..take).map(|i| word >> i & 1 == 1));
        }
        out
    }

    /// Population count.
    #[must_use]
    pub fn count_ones(&self) -> u64 {
        self.words.iter().map(|w| u64::from(w.count_ones())).sum()
    }

    /// Population count of the first `n` bits (the row zero-extended if
    /// shorter than `n`). Word-wise, so counting a prefix of a stored row
    /// needs neither a clone nor a resize.
    #[must_use]
    pub fn count_ones_prefix(&self, n: u64) -> u64 {
        if n >= self.len_bits {
            return self.count_ones();
        }
        let full = (n / 64) as usize;
        let mut out: u64 = self.words[..full]
            .iter()
            .map(|w| u64::from(w.count_ones()))
            .sum();
        if n % 64 != 0 {
            let mask = (1u64 << (n % 64)) - 1;
            out += u64::from((self.words[full] & mask).count_ones());
        }
        out
    }

    /// The number of bit positions where `self` and `other` differ, the
    /// shorter row treated as zero-extended. Word-wise, so diffing two
    /// full rows costs no per-bit work.
    #[must_use]
    pub fn count_diff(&self, other: &RowData) -> u64 {
        let longest = self.words.len().max(other.words.len());
        (0..longest)
            .map(|i| {
                let a = self.words.get(i).copied().unwrap_or(0);
                let b = other.words.get(i).copied().unwrap_or(0);
                u64::from((a ^ b).count_ones())
            })
            .sum()
    }

    /// Grows or shrinks to `len_bits`, zero-filling new bits.
    pub fn resize(&mut self, len_bits: u64) {
        self.words.resize(len_bits.div_ceil(64) as usize, 0);
        self.len_bits = len_bits;
        self.mask_tail();
    }

    /// `self |= other`, over the shorter of the two lengths.
    pub fn or_assign(&mut self, other: &RowData) {
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
        self.mask_tail();
    }

    /// `self &= other`, over the shorter of the two lengths. Bits beyond
    /// `other`'s length are cleared (an AND with absent data is 0).
    pub fn and_assign(&mut self, other: &RowData) {
        let shared = self.words.len().min(other.words.len());
        for (a, b) in self.words[..shared].iter_mut().zip(&other.words) {
            *a &= b;
        }
        for a in &mut self.words[shared..] {
            *a = 0;
        }
        self.mask_tail();
    }

    /// `self ^= other`, over the shorter of the two lengths.
    pub fn xor_assign(&mut self, other: &RowData) {
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a ^= b;
        }
        self.mask_tail();
    }

    /// Inverts every bit in place.
    pub fn invert(&mut self) {
        for w in &mut self.words {
            *w = !*w;
        }
        self.mask_tail();
    }

    /// Clears bits beyond `len_bits` in the last word so that equality,
    /// popcount and inversion behave as if the row were exactly
    /// `len_bits` long.
    fn mask_tail(&mut self) {
        let tail = self.len_bits % 64;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }
}

impl fmt::Debug for RowData {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // A full row is half a megabit; print a digest instead.
        write!(
            f,
            "RowData {{ len_bits: {}, ones: {} }}",
            self.len_bits,
            self.count_ones()
        )
    }
}

impl FromIterator<bool> for RowData {
    fn from_iter<I: IntoIterator<Item = bool>>(iter: I) -> Self {
        let mut words = Vec::new();
        let mut current = 0u64;
        let mut len_bits = 0u64;
        for b in iter {
            current |= u64::from(b) << (len_bits % 64);
            len_bits += 1;
            if len_bits % 64 == 0 {
                words.push(current);
                current = 0;
            }
        }
        if len_bits % 64 != 0 {
            words.push(current);
        }
        RowData { words, len_bits }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_are_empty_of_ones() {
        let r = RowData::zeros(1000);
        assert_eq!(r.len_bits(), 1000);
        assert_eq!(r.count_ones(), 0);
        assert!(!r.is_empty());
        assert!(RowData::zeros(0).is_empty());
    }

    #[test]
    fn set_get_round_trip_across_word_boundaries() {
        let mut r = RowData::zeros(130);
        for i in [0, 63, 64, 65, 127, 128, 129] {
            r.set(i, true);
            assert!(r.get(i), "bit {i}");
        }
        assert_eq!(r.count_ones(), 7);
        r.set(64, false);
        assert!(!r.get(64));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_past_end_panics() {
        let _ = RowData::zeros(10).get(10);
    }

    #[test]
    fn bitwise_ops_match_scalar_semantics() {
        let a_bits = [true, true, false, false, true];
        let b_bits = [true, false, true, false, false];
        let make = |bits: &[bool]| RowData::from_bits(bits);

        let mut or = make(&a_bits);
        or.or_assign(&make(&b_bits));
        let mut and = make(&a_bits);
        and.and_assign(&make(&b_bits));
        let mut xor = make(&a_bits);
        xor.xor_assign(&make(&b_bits));

        for i in 0..5u64 {
            let (a, b) = (a_bits[i as usize], b_bits[i as usize]);
            assert_eq!(or.get(i), a | b);
            assert_eq!(and.get(i), a & b);
            assert_eq!(xor.get(i), a ^ b);
        }
    }

    #[test]
    fn invert_respects_length_mask() {
        let mut r = RowData::zeros(70);
        r.invert();
        assert_eq!(r.count_ones(), 70);
        // Double inversion restores.
        r.invert();
        assert_eq!(r.count_ones(), 0);
    }

    #[test]
    fn and_with_shorter_row_clears_tail() {
        let mut long = RowData::from_bits(&[true; 100]);
        let short = RowData::from_bits(&[true; 64]);
        long.and_assign(&short);
        assert_eq!(long.count_ones(), 64);
        assert!(!long.get(99));
    }

    #[test]
    fn from_words_masks_excess_bits() {
        let r = RowData::from_words(vec![u64::MAX], 3);
        assert_eq!(r.count_ones(), 3);
        assert_eq!(r.len_bits(), 3);
    }

    #[test]
    fn resize_zero_fills() {
        let mut r = RowData::from_bits(&[true, true]);
        r.resize(100);
        assert_eq!(r.count_ones(), 2);
        r.resize(1);
        assert_eq!(r.count_ones(), 1);
    }

    #[test]
    fn collects_from_iterator() {
        let r: RowData = [true, false, true].into_iter().collect();
        assert_eq!(r.bits(3), vec![true, false, true]);
    }

    #[test]
    fn word_wise_construction_matches_per_bit_semantics() {
        // Non-multiple-of-64 length crossing two word boundaries.
        let pattern: Vec<bool> = (0..150u64).map(|i| i % 3 == 0 || i % 7 == 0).collect();
        let from_slice = RowData::from_bits(&pattern);
        let from_iter: RowData = pattern.iter().copied().collect();
        assert_eq!(from_slice, from_iter);
        assert_eq!(from_slice.len_bits(), 150);
        for (i, &b) in pattern.iter().enumerate() {
            assert_eq!(from_slice.get(i as u64), b, "bit {i}");
        }
        assert_eq!(from_slice.bits(150), pattern);
        assert_eq!(from_slice.bits(70), pattern[..70]);
    }

    #[test]
    fn count_diff_is_the_xor_popcount() {
        let a = RowData::from_bits(&[true, false, true, false, true]);
        let b = RowData::from_bits(&[true, true, true, true, false]);
        assert_eq!(a.count_diff(&b), 3);
        assert_eq!(a.count_diff(&a), 0);
        // Shorter row zero-extends.
        let long = RowData::from_bits(&[true; 100]);
        let short = RowData::from_bits(&[true; 64]);
        assert_eq!(long.count_diff(&short), 36);
        assert_eq!(short.count_diff(&long), 36);
    }

    #[test]
    fn debug_is_a_digest() {
        let r = RowData::from_bits(&[true, true, false]);
        assert_eq!(format!("{r:?}"), "RowData { len_bits: 3, ones: 2 }");
    }
}
