//! Time/energy/event accounting.
//!
//! Every command the controller executes deposits its cost here. The
//! figure harnesses read these tallies to compute throughput, speedup and
//! energy-saving ratios.

use std::ops::{Add, AddAssign, Sub};

/// Energy spent, broken down by physical mechanism (picojoules).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyBreakdown {
    /// Row activation (word lines + cell currents).
    pub activate_pj: f64,
    /// Analog sensing in the SAs.
    pub sense_pj: f64,
    /// Array writes.
    pub write_pj: f64,
    /// Off-chip DDR bus.
    pub bus_pj: f64,
    /// Chip-internal global data lines.
    pub gdl_pj: f64,
    /// Digital buffer logic (inter-subarray / inter-bank / AC-PIM).
    pub logic_pj: f64,
    /// Bit-line precharge.
    pub precharge_pj: f64,
    /// SEC-DED overhead: check-bit sensing/writing (the code's 12.5 %
    /// storage overhead) plus the syndrome/encode XOR trees. Zero unless
    /// `ProtectionMode::SecDed` is active.
    pub ecc_pj: f64,
}

impl EnergyBreakdown {
    /// Total energy across all mechanisms.
    #[must_use]
    pub fn total_pj(&self) -> f64 {
        self.activate_pj
            + self.sense_pj
            + self.write_pj
            + self.bus_pj
            + self.gdl_pj
            + self.logic_pj
            + self.precharge_pj
            + self.ecc_pj
    }
}

impl Add for EnergyBreakdown {
    type Output = EnergyBreakdown;
    fn add(self, rhs: EnergyBreakdown) -> EnergyBreakdown {
        EnergyBreakdown {
            activate_pj: self.activate_pj + rhs.activate_pj,
            sense_pj: self.sense_pj + rhs.sense_pj,
            write_pj: self.write_pj + rhs.write_pj,
            bus_pj: self.bus_pj + rhs.bus_pj,
            gdl_pj: self.gdl_pj + rhs.gdl_pj,
            logic_pj: self.logic_pj + rhs.logic_pj,
            precharge_pj: self.precharge_pj + rhs.precharge_pj,
            ecc_pj: self.ecc_pj + rhs.ecc_pj,
        }
    }
}

impl AddAssign for EnergyBreakdown {
    fn add_assign(&mut self, rhs: EnergyBreakdown) {
        *self = *self + rhs;
    }
}

impl Sub for EnergyBreakdown {
    type Output = EnergyBreakdown;
    fn sub(self, rhs: EnergyBreakdown) -> EnergyBreakdown {
        EnergyBreakdown {
            activate_pj: self.activate_pj - rhs.activate_pj,
            sense_pj: self.sense_pj - rhs.sense_pj,
            write_pj: self.write_pj - rhs.write_pj,
            bus_pj: self.bus_pj - rhs.bus_pj,
            gdl_pj: self.gdl_pj - rhs.gdl_pj,
            logic_pj: self.logic_pj - rhs.logic_pj,
            precharge_pj: self.precharge_pj - rhs.precharge_pj,
            ecc_pj: self.ecc_pj - rhs.ecc_pj,
        }
    }
}

/// Event counters, for sanity checks and command traces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EventCounters {
    /// Single-row activations issued.
    pub activates: u64,
    /// Multi-row activations issued (one per group).
    pub multi_activates: u64,
    /// Total rows opened (by either kind of activation).
    pub rows_activated: u64,
    /// Sense passes through the SA mux.
    pub sense_passes: u64,
    /// Row writes.
    pub row_writes: u64,
    /// DDR bus bursts.
    pub bus_bursts: u64,
    /// Bits moved over the DDR bus.
    pub bus_bits: u64,
    /// GDL transfers (row ↔ global buffer).
    pub gdl_transfers: u64,
    /// Digital buffer-logic passes.
    pub logic_passes: u64,
    /// Mode-register sets (PIM reconfiguration).
    pub mode_sets: u64,
    /// Precharges.
    pub precharges: u64,
    /// Row-buffer hits (open-page policy only).
    pub row_buffer_hits: u64,
}

impl Add for EventCounters {
    type Output = EventCounters;
    fn add(self, rhs: EventCounters) -> EventCounters {
        EventCounters {
            activates: self.activates + rhs.activates,
            multi_activates: self.multi_activates + rhs.multi_activates,
            rows_activated: self.rows_activated + rhs.rows_activated,
            sense_passes: self.sense_passes + rhs.sense_passes,
            row_writes: self.row_writes + rhs.row_writes,
            bus_bursts: self.bus_bursts + rhs.bus_bursts,
            bus_bits: self.bus_bits + rhs.bus_bits,
            gdl_transfers: self.gdl_transfers + rhs.gdl_transfers,
            logic_passes: self.logic_passes + rhs.logic_passes,
            mode_sets: self.mode_sets + rhs.mode_sets,
            precharges: self.precharges + rhs.precharges,
            row_buffer_hits: self.row_buffer_hits + rhs.row_buffer_hits,
        }
    }
}

impl AddAssign for EventCounters {
    fn add_assign(&mut self, rhs: EventCounters) {
        *self = *self + rhs;
    }
}

impl Sub for EventCounters {
    type Output = EventCounters;
    fn sub(self, rhs: EventCounters) -> EventCounters {
        EventCounters {
            activates: self.activates - rhs.activates,
            multi_activates: self.multi_activates - rhs.multi_activates,
            rows_activated: self.rows_activated - rhs.rows_activated,
            sense_passes: self.sense_passes - rhs.sense_passes,
            row_writes: self.row_writes - rhs.row_writes,
            bus_bursts: self.bus_bursts - rhs.bus_bursts,
            bus_bits: self.bus_bits - rhs.bus_bits,
            gdl_transfers: self.gdl_transfers - rhs.gdl_transfers,
            logic_passes: self.logic_passes - rhs.logic_passes,
            mode_sets: self.mode_sets - rhs.mode_sets,
            precharges: self.precharges - rhs.precharges,
            row_buffer_hits: self.row_buffer_hits - rhs.row_buffer_hits,
        }
    }
}

/// Reliability bookkeeping under fault injection: what went wrong, what
/// was caught, and what the recovery ladder did about it.
///
/// Invariants (asserted by [`ReliabilityStats::is_consistent`]):
/// every detection event is eventually either corrected or reported
/// uncorrectable, and retries only happen where something was detected.
/// All counters stay zero when the fault model is
/// `FaultModel::none()`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReliabilityStats {
    /// Wrong bits produced by the sense path before any detection ran
    /// (summed over every sense evaluation, including retries).
    pub injected_bit_errors: u64,
    /// Faulty bits encountered on the write path (stuck cells or missed
    /// programming pulses), before verify-after-write ran.
    pub injected_write_faults: u64,
    /// Detection events: an operation where duplicate sensing, parity, or
    /// write verification flagged a mismatch at least once.
    pub detected_errors: u64,
    /// Detection events resolved by the recovery ladder.
    pub corrected_errors: u64,
    /// Wrong bits accepted without detection — the silent data corruption
    /// the reliability machinery exists to prevent.
    pub silent_wrong_bits: u64,
    /// Sense retries issued (re-sense after re-calibrating the reference).
    pub sense_retries: u64,
    /// Write retries issued by program-and-verify.
    pub write_retries: u64,
    /// Multi-row activations split into narrower groups because the
    /// requested fan-in exceeded the reliable limit.
    pub fan_in_splits: u64,
    /// PIM operations that fell back to the read-modify-write path after
    /// sensing kept failing.
    pub rmw_fallbacks: u64,
    /// Detection events the ladder could not resolve (surfaced to the
    /// caller as explicit errors).
    pub uncorrectable_errors: u64,
    /// Physical (fault-injected) sense events evaluated, including
    /// duplicate senses and retries. Counts *events*, not per-column
    /// work, so the packed and reference fault paths tally identically.
    pub physical_senses: u64,
    /// Physical (fault-injected) write events evaluated, including
    /// program-and-verify retries.
    pub physical_writes: u64,
    /// Data bits flipped back in place by SEC-DED single-bit correction
    /// (no retry-ladder involvement; the enclosing read counts one
    /// detected + one corrected event).
    pub ecc_corrected_bits: u64,
    /// Reads on which SEC-DED flagged an uncorrectable double-bit word
    /// and fell through to the re-calibrated retry ladder.
    pub ecc_detected_double: u64,
}

impl ReliabilityStats {
    /// Whether the counters satisfy their bookkeeping invariants:
    /// `detected == corrected + uncorrectable`, and no retries, splits or
    /// fallbacks went unaccounted.
    #[must_use]
    pub fn is_consistent(&self) -> bool {
        self.detected_errors == self.corrected_errors + self.uncorrectable_errors
    }

    /// Whether any fault was injected or any recovery action ran.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        *self == ReliabilityStats::default()
    }
}

impl Add for ReliabilityStats {
    type Output = ReliabilityStats;
    fn add(self, rhs: ReliabilityStats) -> ReliabilityStats {
        ReliabilityStats {
            injected_bit_errors: self.injected_bit_errors + rhs.injected_bit_errors,
            injected_write_faults: self.injected_write_faults + rhs.injected_write_faults,
            detected_errors: self.detected_errors + rhs.detected_errors,
            corrected_errors: self.corrected_errors + rhs.corrected_errors,
            silent_wrong_bits: self.silent_wrong_bits + rhs.silent_wrong_bits,
            sense_retries: self.sense_retries + rhs.sense_retries,
            write_retries: self.write_retries + rhs.write_retries,
            fan_in_splits: self.fan_in_splits + rhs.fan_in_splits,
            rmw_fallbacks: self.rmw_fallbacks + rhs.rmw_fallbacks,
            uncorrectable_errors: self.uncorrectable_errors + rhs.uncorrectable_errors,
            physical_senses: self.physical_senses + rhs.physical_senses,
            physical_writes: self.physical_writes + rhs.physical_writes,
            ecc_corrected_bits: self.ecc_corrected_bits + rhs.ecc_corrected_bits,
            ecc_detected_double: self.ecc_detected_double + rhs.ecc_detected_double,
        }
    }
}

impl AddAssign for ReliabilityStats {
    fn add_assign(&mut self, rhs: ReliabilityStats) {
        *self = *self + rhs;
    }
}

impl Sub for ReliabilityStats {
    type Output = ReliabilityStats;
    fn sub(self, rhs: ReliabilityStats) -> ReliabilityStats {
        ReliabilityStats {
            injected_bit_errors: self.injected_bit_errors - rhs.injected_bit_errors,
            injected_write_faults: self.injected_write_faults - rhs.injected_write_faults,
            detected_errors: self.detected_errors - rhs.detected_errors,
            corrected_errors: self.corrected_errors - rhs.corrected_errors,
            silent_wrong_bits: self.silent_wrong_bits - rhs.silent_wrong_bits,
            sense_retries: self.sense_retries - rhs.sense_retries,
            write_retries: self.write_retries - rhs.write_retries,
            fan_in_splits: self.fan_in_splits - rhs.fan_in_splits,
            rmw_fallbacks: self.rmw_fallbacks - rhs.rmw_fallbacks,
            uncorrectable_errors: self.uncorrectable_errors - rhs.uncorrectable_errors,
            physical_senses: self.physical_senses - rhs.physical_senses,
            physical_writes: self.physical_writes - rhs.physical_writes,
            ecc_corrected_bits: self.ecc_corrected_bits - rhs.ecc_corrected_bits,
            ecc_detected_double: self.ecc_detected_double - rhs.ecc_detected_double,
        }
    }
}

/// Time spent, broken down by mechanism (nanoseconds). The components sum
/// to [`MemStats::time_ns`].
///
/// The split matters for batch scheduling: [`TimeBreakdown::shared_ns`]
/// (DDR bus bursts + mode-register sets) occupies the channel's shared
/// command/data bus and can never overlap within a channel, while
/// [`TimeBreakdown::lane_ns`] (activation, sensing, writes, GDL hops,
/// precharge) happens inside a bank and may overlap with other banks'
/// work, subject to tRRD/tFAW.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct TimeBreakdown {
    /// Row activation (single- and multi-row), tRCD + extra-ACT streaming.
    pub activate_ns: f64,
    /// Column accesses / sense passes (tCL).
    pub sense_ns: f64,
    /// Array writes (tWR).
    pub write_ns: f64,
    /// Chip-internal global-data-line transfers.
    pub gdl_ns: f64,
    /// Bit-line precharges (tRP).
    pub precharge_ns: f64,
    /// Stalls inserted to honor tRRD/tFAW inter-activation constraints.
    pub stall_ns: f64,
    /// SEC-DED syndrome/encode passes (zero unless
    /// `ProtectionMode::SecDed` is active). Bank-local: the XOR tree
    /// sits beside the SA strip / write drivers.
    pub ecc_ns: f64,
    /// Off-chip DDR bus bursts.
    pub bus_ns: f64,
    /// Mode-register sets (PIM reconfiguration).
    pub mrs_ns: f64,
}

impl TimeBreakdown {
    /// Total time across all mechanisms.
    #[must_use]
    pub fn total_ns(&self) -> f64 {
        self.lane_ns() + self.shared_ns()
    }

    /// Bank-local time: may overlap with other banks of the same channel.
    #[must_use]
    pub fn lane_ns(&self) -> f64 {
        self.activate_ns
            + self.sense_ns
            + self.write_ns
            + self.gdl_ns
            + self.precharge_ns
            + self.stall_ns
            + self.ecc_ns
    }

    /// Channel-serialized time: bus bursts and mode-register sets hold the
    /// shared command/data bus and never overlap within a channel.
    #[must_use]
    pub fn shared_ns(&self) -> f64 {
        self.bus_ns + self.mrs_ns
    }
}

impl Add for TimeBreakdown {
    type Output = TimeBreakdown;
    fn add(self, rhs: TimeBreakdown) -> TimeBreakdown {
        TimeBreakdown {
            activate_ns: self.activate_ns + rhs.activate_ns,
            sense_ns: self.sense_ns + rhs.sense_ns,
            write_ns: self.write_ns + rhs.write_ns,
            gdl_ns: self.gdl_ns + rhs.gdl_ns,
            precharge_ns: self.precharge_ns + rhs.precharge_ns,
            stall_ns: self.stall_ns + rhs.stall_ns,
            ecc_ns: self.ecc_ns + rhs.ecc_ns,
            bus_ns: self.bus_ns + rhs.bus_ns,
            mrs_ns: self.mrs_ns + rhs.mrs_ns,
        }
    }
}

impl AddAssign for TimeBreakdown {
    fn add_assign(&mut self, rhs: TimeBreakdown) {
        *self = *self + rhs;
    }
}

impl Sub for TimeBreakdown {
    type Output = TimeBreakdown;
    fn sub(self, rhs: TimeBreakdown) -> TimeBreakdown {
        TimeBreakdown {
            activate_ns: self.activate_ns - rhs.activate_ns,
            sense_ns: self.sense_ns - rhs.sense_ns,
            write_ns: self.write_ns - rhs.write_ns,
            gdl_ns: self.gdl_ns - rhs.gdl_ns,
            precharge_ns: self.precharge_ns - rhs.precharge_ns,
            stall_ns: self.stall_ns - rhs.stall_ns,
            ecc_ns: self.ecc_ns - rhs.ecc_ns,
            bus_ns: self.bus_ns - rhs.bus_ns,
            mrs_ns: self.mrs_ns - rhs.mrs_ns,
        }
    }
}

/// Per-row write-wear summary (NVM endurance is finite — PCM cells take
/// ~10^8 writes — so the write concentration of accumulator patterns
/// matters).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WearReport {
    /// Row writes across the whole memory.
    pub total_row_writes: u64,
    /// Distinct rows ever written.
    pub rows_written: u64,
    /// Writes to the most-written row.
    pub max_row_writes: u64,
}

impl WearReport {
    /// Ratio of the hottest row's writes to the mean over written rows —
    /// 1.0 is perfectly level, large values mean concentrated wear.
    #[must_use]
    pub fn imbalance(&self) -> f64 {
        if self.rows_written == 0 {
            1.0
        } else {
            self.max_row_writes as f64 / (self.total_row_writes as f64 / self.rows_written as f64)
        }
    }
}

/// Aggregate statistics of one memory (or one executor run).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MemStats {
    /// Simulated time spent, in nanoseconds.
    pub time_ns: f64,
    /// The same time, by mechanism (`time.total_ns() == time_ns`).
    pub time: TimeBreakdown,
    /// Energy spent, by mechanism.
    pub energy: EnergyBreakdown,
    /// Event counts.
    pub events: EventCounters,
    /// Fault-injection and recovery bookkeeping (all zero without faults).
    pub reliability: ReliabilityStats,
    /// Copy-on-write row pages deep-copied on first write while shared
    /// (see `pinatubo-mem`'s page module). A *host-side* cost metric, not
    /// a simulated-memory event: it tracks what session setup and
    /// dirty-delta syncs actually copy, so tooling can assert they stay
    /// O(channels + touched pages) instead of O(capacity). Serial
    /// execution never shares pages and always reads zero here.
    pub row_pages_copied: u64,
}

impl MemStats {
    /// An empty tally.
    #[must_use]
    pub fn new() -> Self {
        MemStats::default()
    }

    /// Total energy in picojoules.
    #[must_use]
    pub fn total_energy_pj(&self) -> f64 {
        self.energy.total_pj()
    }

    /// Resets all tallies to zero.
    pub fn reset(&mut self) {
        *self = MemStats::default();
    }
}

impl Add for MemStats {
    type Output = MemStats;
    fn add(self, rhs: MemStats) -> MemStats {
        MemStats {
            time_ns: self.time_ns + rhs.time_ns,
            time: self.time + rhs.time,
            energy: self.energy + rhs.energy,
            events: self.events + rhs.events,
            reliability: self.reliability + rhs.reliability,
            row_pages_copied: self.row_pages_copied + rhs.row_pages_copied,
        }
    }
}

impl AddAssign for MemStats {
    fn add_assign(&mut self, rhs: MemStats) {
        *self = *self + rhs;
    }
}

impl Sub for MemStats {
    type Output = MemStats;
    fn sub(self, rhs: MemStats) -> MemStats {
        MemStats {
            time_ns: self.time_ns - rhs.time_ns,
            time: self.time - rhs.time,
            energy: self.energy - rhs.energy,
            events: self.events - rhs.events,
            reliability: self.reliability - rhs.reliability,
            row_pages_copied: self.row_pages_copied - rhs.row_pages_copied,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_total_sums_components() {
        let e = EnergyBreakdown {
            activate_pj: 1.0,
            sense_pj: 2.0,
            write_pj: 3.0,
            bus_pj: 4.0,
            gdl_pj: 5.0,
            logic_pj: 6.0,
            precharge_pj: 7.0,
            ecc_pj: 8.0,
        };
        assert!((e.total_pj() - 36.0).abs() < 1e-12);
    }

    #[test]
    fn stats_add_componentwise() {
        let mut a = MemStats::new();
        a.time_ns = 10.0;
        a.energy.sense_pj = 5.0;
        a.events.sense_passes = 3;
        let mut b = MemStats::new();
        b.time_ns = 2.5;
        b.energy.sense_pj = 1.0;
        b.events.sense_passes = 1;

        let c = a + b;
        assert!((c.time_ns - 12.5).abs() < 1e-12);
        assert!((c.energy.sense_pj - 6.0).abs() < 1e-12);
        assert_eq!(c.events.sense_passes, 4);

        a += b;
        assert_eq!(a, c);
    }

    #[test]
    fn time_breakdown_splits_lane_and_shared() {
        let t = TimeBreakdown {
            activate_ns: 1.0,
            sense_ns: 2.0,
            write_ns: 3.0,
            gdl_ns: 4.0,
            precharge_ns: 5.0,
            stall_ns: 6.0,
            ecc_ns: 9.0,
            bus_ns: 7.0,
            mrs_ns: 8.0,
        };
        assert!((t.lane_ns() - 30.0).abs() < 1e-12);
        assert!((t.shared_ns() - 15.0).abs() < 1e-12);
        assert!((t.total_ns() - 45.0).abs() < 1e-12);

        let doubled = t + t;
        assert!((doubled.total_ns() - 90.0).abs() < 1e-12);
        let back = doubled - t;
        assert_eq!(back, t);
        let mut acc = TimeBreakdown::default();
        acc += t;
        assert_eq!(acc, t);
    }

    #[test]
    fn reliability_stats_add_sub_and_consistency() {
        let mut a = ReliabilityStats::default();
        assert!(a.is_zero());
        assert!(a.is_consistent());
        a.injected_bit_errors = 10;
        a.detected_errors = 4;
        a.corrected_errors = 3;
        a.uncorrectable_errors = 1;
        a.sense_retries = 5;
        assert!(a.is_consistent());
        a.corrected_errors = 2;
        assert!(!a.is_consistent());
        a.corrected_errors = 3;

        let doubled = a + a;
        assert_eq!(doubled.injected_bit_errors, 20);
        assert_eq!(doubled - a, a);
        let mut acc = ReliabilityStats::default();
        acc += a;
        assert_eq!(acc, a);

        let mut s = MemStats::new();
        s.reliability = a;
        let sum = s + s;
        assert_eq!(sum.reliability.sense_retries, 10);
        assert_eq!((sum - s).reliability, a);
    }

    #[test]
    fn reset_zeroes_everything() {
        let mut s = MemStats::new();
        s.time_ns = 1.0;
        s.events.activates = 7;
        s.reset();
        assert_eq!(s, MemStats::default());
    }
}
