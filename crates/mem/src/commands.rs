//! The DDR-style command vocabulary and the PIM mode register.
//!
//! The paper's hardware-control path (§5, Fig. 4) reuses the DDR interface:
//! extended instructions are translated into ordinary-looking commands plus
//! mode-register writes (MR4) that configure the SA reference. The
//! controller records the command stream so tests and traces can assert on
//! it.

use crate::address::RowAddr;
use pinatubo_nvm::sense_amp::SenseMode;
use std::fmt;

/// PIM configuration held in the mode register (MR4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PimConfig {
    /// Ordinary memory: SA uses the READ reference.
    #[default]
    Off,
    /// SAs compute an OR over every open row.
    Or,
    /// SAs compute a 2-row AND.
    And,
    /// SAs run the two-micro-step XOR.
    Xor,
    /// SAs output the inverted latch value.
    Inv,
}

impl PimConfig {
    /// The sense mode a given `fan_in` implies under this configuration,
    /// if the configuration maps onto a single analog sense.
    ///
    /// XOR and INV return `None` — they are micro-step sequences on top of
    /// READ senses, not a reference switch.
    #[must_use]
    pub fn sense_mode(self, fan_in: usize) -> Option<SenseMode> {
        match self {
            PimConfig::Off => Some(SenseMode::Read),
            PimConfig::Or => SenseMode::or(fan_in).ok(),
            PimConfig::And => SenseMode::and(fan_in).ok(),
            PimConfig::Xor | PimConfig::Inv => None,
        }
    }
}

impl fmt::Display for PimConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PimConfig::Off => "OFF",
            PimConfig::Or => "OR",
            PimConfig::And => "AND",
            PimConfig::Xor => "XOR",
            PimConfig::Inv => "INV",
        };
        f.write_str(s)
    }
}

/// One command as seen on the (extended) DDR interface.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum MemCommand {
    /// Configure the PIM mode register.
    ModeRegisterSet(PimConfig),
    /// Open one row.
    Activate(RowAddr),
    /// Open several rows of one subarray through the LWL latches
    /// (RESET + accumulate protocol of Fig. 7).
    MultiActivate(Vec<RowAddr>),
    /// One pass of the SAs over the currently open rows.
    SensePass {
        /// The reference configuration used.
        mode: SenseMode,
        /// Bits produced by this pass.
        bits: u64,
    },
    /// Write `bits` bits into a row; `local` means the WD was fed from the
    /// SA (in-place update), not the bus.
    WriteRow {
        /// Destination row.
        addr: RowAddr,
        /// Bits written.
        bits: u64,
        /// In-place (SA → WD) write.
        local: bool,
    },
    /// Transfer `bits` bits between a subarray and the global row buffer.
    GdlTransfer {
        /// Bits moved.
        bits: u64,
    },
    /// A digital bitwise pass in a global/IO buffer over `bits` bits.
    BufferLogic {
        /// Bits combined.
        bits: u64,
    },
    /// Burst `bits` bits over the off-chip DDR bus.
    BusBurst {
        /// Bits moved.
        bits: u64,
    },
    /// Precharge the open subarray.
    Precharge(RowAddr),
}

impl fmt::Display for MemCommand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemCommand::ModeRegisterSet(cfg) => write!(f, "MRS {cfg}"),
            MemCommand::Activate(a) => write!(f, "ACT {a}"),
            MemCommand::MultiActivate(rows) => {
                write!(f, "MACT x{} @{}", rows.len(), rows[0].subarray_id())
            }
            MemCommand::SensePass { mode, bits } => write!(f, "SENSE {mode} ({bits}b)"),
            MemCommand::WriteRow { addr, bits, local } => {
                let path = if *local { "local" } else { "bus" };
                write!(f, "WR {addr} ({bits}b, {path})")
            }
            MemCommand::GdlTransfer { bits } => write!(f, "GDL ({bits}b)"),
            MemCommand::BufferLogic { bits } => write!(f, "LOGIC ({bits}b)"),
            MemCommand::BusBurst { bits } => write!(f, "BUS ({bits}b)"),
            MemCommand::Precharge(a) => write!(f, "PRE {}", a.subarray_id()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pim_config_maps_to_sense_modes() {
        assert_eq!(PimConfig::Off.sense_mode(1), Some(SenseMode::Read));
        assert_eq!(
            PimConfig::Or.sense_mode(16),
            Some(SenseMode::Or { fan_in: 16 })
        );
        assert_eq!(PimConfig::And.sense_mode(2), Some(SenseMode::And));
        assert_eq!(PimConfig::And.sense_mode(3), None);
        assert_eq!(PimConfig::Xor.sense_mode(2), None);
        assert_eq!(PimConfig::Inv.sense_mode(1), None);
    }

    #[test]
    fn default_config_is_off() {
        assert_eq!(PimConfig::default(), PimConfig::Off);
    }

    #[test]
    fn command_display_is_compact() {
        let addr = RowAddr::new(0, 0, 1, 2, 3);
        assert_eq!(
            MemCommand::Activate(addr).to_string(),
            "ACT ch0/rk0/bk1/sa2/row3"
        );
        assert_eq!(
            MemCommand::MultiActivate(vec![addr, addr]).to_string(),
            "MACT x2 @ch0/rk0/bk1/sa2"
        );
        assert_eq!(
            MemCommand::WriteRow {
                addr,
                bits: 64,
                local: true
            }
            .to_string(),
            "WR ch0/rk0/bk1/sa2/row3 (64b, local)"
        );
        assert_eq!(
            MemCommand::ModeRegisterSet(PimConfig::Or).to_string(),
            "MRS OR"
        );
    }
}
