//! Physical/logical memory organization (paper Fig. 3).
//!
//! The simulator works at the *rank* level: the 8 chips of a rank operate
//! in lock-step, so one "logical row" is the concatenation of the same row
//! in every chip. With the default PCM geometry a logical row holds
//! 2^19 bits and is sensed by 2^14 SAs (mux ratio 32) — exactly the two
//! turning points of paper Fig. 9.

/// The shape of the memory system.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct MemGeometry {
    /// Independent channels.
    pub channels: u32,
    /// Ranks per channel (share the channel's address/data bus).
    pub ranks_per_channel: u32,
    /// Chips per rank, operating in lock-step.
    pub chips_per_rank: u32,
    /// Banks per chip.
    pub banks_per_chip: u32,
    /// Subarrays per bank.
    pub subarrays_per_bank: u32,
    /// Mats per subarray (lock-step within the subarray).
    pub mats_per_subarray: u32,
    /// Rows per subarray.
    pub rows_per_subarray: u32,
    /// Columns (cells on one row) per mat.
    pub cols_per_mat: u32,
    /// Adjacent columns sharing one SA through the column mux (§2: NVM SAs
    /// are large, so 32 columns share one in our experiments).
    pub sa_mux_ratio: u32,
    /// Width of the global data lines between a subarray and the global
    /// row buffer, per rank.
    pub gdl_width_bits: u32,
}

impl MemGeometry {
    /// The paper's PCM main memory: 4 channels × 2 ranks × 8 chips,
    /// 8 banks/chip, 16 subarrays/bank, 16 mats of 4096×1024 cells,
    /// mux ratio 32, 512-bit GDL.
    ///
    /// Derived values: logical row = 2^19 bits, 2^14 SAs per logical row,
    /// 1 GB per chip / 8 GB per rank.
    #[must_use]
    pub fn pcm_default() -> Self {
        MemGeometry {
            channels: 4,
            ranks_per_channel: 2,
            chips_per_rank: 8,
            banks_per_chip: 8,
            subarrays_per_bank: 16,
            mats_per_subarray: 16,
            rows_per_subarray: 1024,
            cols_per_mat: 4096,
            sa_mux_ratio: 32,
            gdl_width_bits: 512,
        }
    }

    /// Bits of one row within a single chip.
    #[must_use]
    pub fn row_bits_per_chip(&self) -> u64 {
        u64::from(self.mats_per_subarray) * u64::from(self.cols_per_mat)
    }

    /// Bits of one logical (rank-wide, lock-step) row.
    #[must_use]
    pub fn logical_row_bits(&self) -> u64 {
        self.row_bits_per_chip() * u64::from(self.chips_per_rank)
    }

    /// Sense amplifiers serving one logical row (columns / mux ratio).
    #[must_use]
    pub fn sas_per_logical_row(&self) -> u64 {
        self.logical_row_bits() / u64::from(self.sa_mux_ratio)
    }

    /// Bits delivered by one sense pass (one column-select setting across
    /// all SAs of the logical row).
    #[must_use]
    pub fn bits_per_sense_pass(&self) -> u64 {
        self.sas_per_logical_row()
    }

    /// Sense passes needed to produce `cols` result bits (at most the mux
    /// ratio — after that the whole row has been sensed).
    ///
    /// # Panics
    ///
    /// Panics if `cols` is zero or exceeds the logical row.
    #[must_use]
    pub fn sense_passes(&self, cols: u64) -> u64 {
        assert!(cols > 0, "sense of zero columns is meaningless");
        assert!(
            cols <= self.logical_row_bits(),
            "sense of {cols} columns exceeds the {}-bit row",
            self.logical_row_bits()
        );
        cols.div_ceil(self.bits_per_sense_pass())
    }

    /// GDL transfer cycles to move `cols` bits between a subarray and the
    /// global row buffer.
    #[must_use]
    pub fn gdl_cycles(&self, cols: u64) -> u64 {
        cols.div_ceil(u64::from(self.gdl_width_bits))
    }

    /// Total logical rows in the system.
    #[must_use]
    pub fn total_rows(&self) -> u64 {
        u64::from(self.channels)
            * u64::from(self.ranks_per_channel)
            * u64::from(self.banks_per_chip)
            * u64::from(self.subarrays_per_bank)
            * u64::from(self.rows_per_subarray)
    }

    /// Total capacity in bits.
    #[must_use]
    pub fn capacity_bits(&self) -> u64 {
        self.total_rows() * self.logical_row_bits()
    }

    /// Subarrays in the whole system (each with its own SA/WD strip and
    /// LWL latch bank).
    #[must_use]
    pub fn total_subarrays(&self) -> u64 {
        u64::from(self.channels)
            * u64::from(self.ranks_per_channel)
            * u64::from(self.banks_per_chip)
            * u64::from(self.subarrays_per_bank)
    }
}

impl Default for MemGeometry {
    fn default() -> Self {
        MemGeometry::pcm_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_geometry_matches_fig9_turning_points() {
        let g = MemGeometry::pcm_default();
        // Turning point B: one logical row holds 2^19 bits.
        assert_eq!(g.logical_row_bits(), 1 << 19);
        // Turning point A: 2^14 bits per sense pass.
        assert_eq!(g.bits_per_sense_pass(), 1 << 14);
    }

    #[test]
    fn default_chip_is_one_gigabyte() {
        let g = MemGeometry::pcm_default();
        let chip_bits = u64::from(g.banks_per_chip)
            * u64::from(g.subarrays_per_bank)
            * u64::from(g.rows_per_subarray)
            * g.row_bits_per_chip();
        assert_eq!(chip_bits, 8 << 30); // 8 Gb = 1 GB
    }

    #[test]
    fn sense_passes_round_up_and_cap_at_mux_ratio() {
        let g = MemGeometry::pcm_default();
        assert_eq!(g.sense_passes(1), 1);
        assert_eq!(g.sense_passes(1 << 14), 1);
        assert_eq!(g.sense_passes((1 << 14) + 1), 2);
        assert_eq!(
            g.sense_passes(g.logical_row_bits()),
            u64::from(g.sa_mux_ratio)
        );
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn sense_beyond_row_panics() {
        let g = MemGeometry::pcm_default();
        let _ = g.sense_passes(g.logical_row_bits() + 1);
    }

    #[test]
    fn gdl_cycles_round_up() {
        let g = MemGeometry::pcm_default();
        assert_eq!(g.gdl_cycles(1), 1);
        assert_eq!(g.gdl_cycles(512), 1);
        assert_eq!(g.gdl_cycles(513), 2);
        assert_eq!(g.gdl_cycles(1 << 19), 1024);
    }

    #[test]
    fn totals_are_consistent() {
        let g = MemGeometry::pcm_default();
        assert_eq!(g.capacity_bits(), g.total_rows() * g.logical_row_bits());
        assert_eq!(
            g.total_rows(),
            g.total_subarrays() * u64::from(g.rows_per_subarray)
        );
    }
}
