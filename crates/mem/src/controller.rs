//! The memory controller: functional state plus per-command accounting.
//!
//! [`MainMemory`] owns the (sparse) array contents and executes the
//! extended-DDR command vocabulary of [`crate::commands`], charging time
//! and energy from the [`pinatubo_nvm`] parameter tables into
//! [`crate::stats::MemStats`].
//!
//! The controller is *serial*: commands execute one after another and time
//! adds up. That matches how the paper drives PIM operations (one extended
//! instruction stream through one DDR command bus); channel-level
//! parallelism for conventional CPU traffic is modelled by the baselines
//! where it matters.

use crate::address::RowAddr;
use crate::array::RowData;
use crate::commands::{MemCommand, PimConfig};
use crate::geometry::MemGeometry;
use crate::stats::MemStats;
use crate::MemError;
use pinatubo_nvm::energy::EnergyParams;
use pinatubo_nvm::lwl_driver::LwlDriverBank;
use pinatubo_nvm::sense_amp::{CurrentSenseAmp, SenseMode};
use pinatubo_nvm::technology::Technology;
use pinatubo_nvm::timing::TimingParams;
use std::collections::HashMap;

/// Everything needed to instantiate a memory system.
#[derive(Debug, Clone)]
pub struct MemConfig {
    /// Shape of the memory.
    pub geometry: MemGeometry,
    /// Cell technology.
    pub technology: Technology,
    /// Command timing table.
    pub timing: TimingParams,
    /// Command energy table.
    pub energy: EnergyParams,
    /// Record every command into an inspectable trace (tests, debugging).
    pub record_trace: bool,
    /// Open-page row-buffer policy: single-row reads that hit the
    /// currently open row of a subarray skip activation and precharge.
    /// Off by default (closed-page), matching the calibrated figures;
    /// multi-row PIM activations always close the page.
    pub open_page: bool,
}

impl MemConfig {
    /// The paper's configuration: PCM cells, PCM/DDR3 timing, default
    /// geometry.
    #[must_use]
    pub fn pcm_default() -> Self {
        MemConfig {
            geometry: MemGeometry::pcm_default(),
            technology: Technology::pcm(),
            timing: TimingParams::pcm_ddr3_1600(),
            energy: EnergyParams::pcm(),
            record_trace: false,
            open_page: false,
        }
    }

    /// A DDR3-1600 DRAM system with the same geometry (for baselines that
    /// need functional DRAM storage).
    #[must_use]
    pub fn dram_default() -> Self {
        MemConfig {
            geometry: MemGeometry::pcm_default(),
            technology: Technology::dram(),
            timing: TimingParams::ddr3_1600(),
            energy: EnergyParams::dram(),
            record_trace: false,
            open_page: false,
        }
    }
}

/// The simulated main memory.
///
/// See the crate-level example for typical use. All mutating entry points
/// return [`MemError`] on geometry or circuit violations; the functional
/// state is only modified when the whole command succeeds.
#[derive(Debug)]
pub struct MainMemory {
    config: MemConfig,
    /// SA model; `None` for the charge-based DRAM pseudo-technology.
    sense_amp: Option<CurrentSenseAmp>,
    /// Cached result of the (static) sense-margin fan-in analysis.
    max_or_fan_in: usize,
    /// Sparse row storage: subarray → (row index → contents).
    rows: HashMap<crate::address::SubarrayId, HashMap<u32, RowData>>,
    /// Charged writes per row, for endurance analysis.
    wear: HashMap<RowAddr, u64>,
    /// Open-page state: the row currently latched in each subarray's row
    /// buffer (open-page policy only).
    open_rows: HashMap<crate::address::SubarrayId, u32>,
    /// Recent activation issue times per (channel, rank), oldest first
    /// (at most four kept), for the tRRD/tFAW inter-activation gate.
    act_history: HashMap<(u32, u32), Vec<f64>>,
    mode: PimConfig,
    stats: MemStats,
    trace: Vec<MemCommand>,
}

impl MainMemory {
    /// Builds a memory from a configuration.
    #[must_use]
    pub fn new(config: MemConfig) -> Self {
        let sense_amp = config
            .technology
            .kind()
            .is_resistive()
            .then(|| CurrentSenseAmp::new(&config.technology));
        let max_or_fan_in = sense_amp.as_ref().map_or(1, CurrentSenseAmp::max_or_fan_in);
        MainMemory {
            config,
            sense_amp,
            max_or_fan_in,
            rows: HashMap::new(),
            wear: HashMap::new(),
            open_rows: HashMap::new(),
            act_history: HashMap::new(),
            mode: PimConfig::Off,
            stats: MemStats::new(),
            trace: Vec::new(),
        }
    }

    /// The configuration this memory was built with.
    #[must_use]
    pub fn config(&self) -> &MemConfig {
        &self.config
    }

    /// The geometry (shorthand for `config().geometry`).
    #[must_use]
    pub fn geometry(&self) -> &MemGeometry {
        &self.config.geometry
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> &MemStats {
        &self.stats
    }

    /// Resets the statistics (not the contents) and returns the old tally.
    /// The activation history is cleared too — its issue times are on the
    /// clock that just restarted at zero.
    pub fn take_stats(&mut self) -> MemStats {
        self.act_history.clear();
        std::mem::take(&mut self.stats)
    }

    /// The recorded command trace (empty unless `record_trace` is set).
    #[must_use]
    pub fn trace(&self) -> &[MemCommand] {
        &self.trace
    }

    /// The current PIM mode-register value.
    #[must_use]
    pub fn pim_config(&self) -> PimConfig {
        self.mode
    }

    /// Largest OR fan-in this memory's SAs support (1 for DRAM). The
    /// margin analysis is static per technology, so the value is computed
    /// once at construction.
    #[must_use]
    pub fn max_or_fan_in(&self) -> usize {
        self.max_or_fan_in
    }

    /// Sets the PIM mode register, charging a mode-register-set command.
    /// Setting the already-current mode is free (the driver library caches
    /// the MR value, §5).
    pub fn set_pim_config(&mut self, cfg: PimConfig) {
        if cfg == self.mode {
            return;
        }
        self.mode = cfg;
        self.stats.time_ns += self.config.timing.t_mrs_ns;
        self.stats.time.mrs_ns += self.config.timing.t_mrs_ns;
        self.stats.events.mode_sets += 1;
        self.record(MemCommand::ModeRegisterSet(cfg));
    }

    /// Direct (zero-cost) view of a row's contents — for assertions and
    /// result extraction, not for modelling traffic.
    #[must_use]
    pub fn peek_row(&self, addr: RowAddr) -> Option<&RowData> {
        self.rows.get(&addr.subarray_id())?.get(&addr.row)
    }

    /// Direct (zero-cost) store into a row — for test setup / workload
    /// initialization where the loading traffic is not part of the
    /// measured experiment.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::AddressOutOfRange`] for invalid addresses and
    /// [`MemError::ColsExceedRow`] if `data` is wider than a row.
    pub fn poke_row(&mut self, addr: RowAddr, data: &RowData) -> Result<(), MemError> {
        self.validate_addr(addr)?;
        self.validate_cols(data.len_bits())?;
        self.store(addr, data);
        Ok(())
    }

    /// Multi-row activation followed by sensing under `mode`, producing
    /// the first `cols` bits of the combined row (paper §4.1,
    /// intra-subarray operations).
    ///
    /// All rows must belong to one subarray. The command charges one
    /// multi-activate (tRCD + command-rate extra activations), the
    /// necessary sense passes through the SA mux, and a precharge.
    ///
    /// # Errors
    ///
    /// * [`MemError::AddressOutOfRange`] / [`MemError::SubarrayMismatch`] /
    ///   [`MemError::ColsExceedRow`] / [`MemError::EmptyOperation`] on
    ///   geometry violations;
    /// * [`MemError::Nvm`] when the fan-in exceeds the SA margin or the
    ///   LWL latch capacity, or when this memory is DRAM (no current SA).
    pub fn multi_activate_sense(
        &mut self,
        operands: &[RowAddr],
        mode: SenseMode,
        cols: u64,
    ) -> Result<RowData, MemError> {
        self.validate_cols_nonzero(cols)?;
        self.require_sense_amp()?;
        // Fan-in check against the cached margin-analysis result (the
        // analysis itself is static per technology).
        if let SenseMode::Or { fan_in } = mode {
            if fan_in > self.max_or_fan_in {
                return Err(MemError::Nvm(pinatubo_nvm::NvmError::FanInExceeded {
                    requested: fan_in,
                    supported: self.max_or_fan_in,
                }));
            }
        }
        if operands.len() != mode.fan_in() {
            // A mismatch between open rows and reference configuration is a
            // driver bug; surface it as a degenerate fan-in.
            return Err(MemError::Nvm(pinatubo_nvm::NvmError::DegenerateFanIn));
        }
        let (&first, rest) = operands
            .split_first()
            .ok_or(MemError::Nvm(pinatubo_nvm::NvmError::DegenerateFanIn))?;
        self.validate_addr(first)?;
        for &other in rest {
            self.validate_addr(other)?;
            if !first.same_subarray(&other) {
                return Err(MemError::SubarrayMismatch { first, other });
            }
        }

        // Exercise the LWL latch protocol (Fig. 7): RESET, then accumulate.
        let mut lwl = LwlDriverBank::new(self.max_or_fan_in().max(2));
        lwl.reset();
        for op in operands {
            lwl.latch(op.row as usize)?;
        }

        // Functional combine, word-wise over the open rows.
        let mut out = self.load(first, cols);
        for &other in rest {
            let row = self.load(other, cols);
            match mode {
                SenseMode::Read => {}
                SenseMode::Or { .. } => out.or_assign(&row),
                SenseMode::And => out.and_assign(&row),
            }
        }

        // Accounting.
        let g = &self.config.geometry;
        let passes = g.sense_passes(cols);
        let row_bits = g.logical_row_bits();
        let t = &self.config.timing;
        let e = &self.config.energy;
        let subarray = first.subarray_id();
        let single = operands.len() == 1;
        let page_hit =
            self.config.open_page && single && self.open_rows.get(&subarray) == Some(&first.row);
        if page_hit {
            // Row-buffer hit: the row is already on the sense amplifiers;
            // only the column accesses are paid.
            self.stats.time_ns += passes as f64 * t.t_cl_ns;
            self.stats.time.sense_ns += passes as f64 * t.t_cl_ns;
            self.stats.energy.sense_pj += e.sense_pj(cols);
            self.stats.events.row_buffer_hits += 1;
            self.stats.events.sense_passes += passes;
        } else {
            if self.config.open_page && self.open_rows.remove(&subarray).is_some() {
                // Close the previously open row first.
                self.stats.time_ns += t.t_rp_ns;
                self.stats.time.precharge_ns += t.t_rp_ns;
                self.stats.energy.precharge_pj += e.precharge_pj(row_bits);
                self.stats.events.precharges += 1;
            }
            // tRRD/tFAW gate. The serial stream already spaces activations
            // by a full command (≥ tRCD ≥ tRRD at both presets), so this
            // only stalls under deliberately tight parameters; the batch
            // scheduler applies the same gate where bank lanes overlap.
            let history = self
                .act_history
                .entry((first.channel, first.rank))
                .or_default();
            let issue = t.earliest_activation_ns(history, self.stats.time_ns);
            let stall = issue - self.stats.time_ns;
            history.push(issue);
            if history.len() > 4 {
                history.remove(0);
            }
            if stall > 0.0 {
                self.stats.time_ns += stall;
                self.stats.time.stall_ns += stall;
            }
            let act_ns = t.multi_activate_ns(operands.len());
            let sense_ns = passes as f64 * t.t_cl_ns;
            self.stats.time_ns += act_ns + sense_ns;
            self.stats.time.activate_ns += act_ns;
            self.stats.time.sense_ns += sense_ns;
            self.stats.energy.activate_pj += e.activate_pj(operands.len(), row_bits);
            self.stats.energy.sense_pj += e.sense_pj(cols);
            if single {
                self.stats.events.activates += 1;
            } else {
                self.stats.events.multi_activates += 1;
            }
            self.stats.events.rows_activated += operands.len() as u64;
            self.stats.events.sense_passes += passes;
            if self.config.open_page && single {
                // Leave the page open for a possible hit.
                self.open_rows.insert(subarray, first.row);
            } else {
                // Closed-page policy, and multi-row PIM activations always
                // precharge so the next reference configuration starts
                // clean.
                self.stats.time_ns += t.t_rp_ns;
                self.stats.time.precharge_ns += t.t_rp_ns;
                self.stats.energy.precharge_pj += e.precharge_pj(row_bits);
                self.stats.events.precharges += 1;
            }
        }
        if self.config.record_trace {
            self.record(MemCommand::MultiActivate(operands.to_vec()));
            self.record(MemCommand::SensePass { mode, bits: cols });
            self.record(MemCommand::Precharge(first));
        }
        Ok(out)
    }

    /// Reads the first `cols` bits of one row into the subarray's SA latch
    /// (a plain activate + sense, no data movement beyond the mats).
    ///
    /// # Errors
    ///
    /// Same conditions as [`MainMemory::multi_activate_sense`].
    pub fn activate_read(&mut self, addr: RowAddr, cols: u64) -> Result<RowData, MemError> {
        self.multi_activate_sense(std::slice::from_ref(&addr), SenseMode::Read, cols)
    }

    /// Reads a row and moves it over the global data lines into the bank's
    /// global row buffer (first half of an inter-subarray operation).
    ///
    /// # Errors
    ///
    /// Same conditions as [`MainMemory::activate_read`].
    pub fn read_row_to_buffer(&mut self, addr: RowAddr, cols: u64) -> Result<RowData, MemError> {
        let data = self.activate_read(addr, cols)?;
        self.charge_gdl(cols);
        Ok(data)
    }

    /// Reads a row into the chip I/O buffer: one GDL hop to the bank's
    /// global row buffer plus a second hop to the I/O buffer (the
    /// inter-bank operand path of Fig. 3a).
    ///
    /// # Errors
    ///
    /// Same conditions as [`MainMemory::activate_read`].
    pub fn read_row_to_io_buffer(&mut self, addr: RowAddr, cols: u64) -> Result<RowData, MemError> {
        let data = self.read_row_to_buffer(addr, cols)?;
        self.charge_gdl(cols);
        Ok(data)
    }

    /// Writes a row from the chip I/O buffer (two GDL hops + array write).
    ///
    /// # Errors
    ///
    /// Returns address/width errors as in [`MainMemory::poke_row`].
    pub fn write_row_from_io_buffer(
        &mut self,
        addr: RowAddr,
        data: &RowData,
    ) -> Result<(), MemError> {
        self.validate_addr(addr)?;
        self.validate_cols_nonzero(data.len_bits())?;
        self.charge_gdl(data.len_bits());
        self.write_row_from_buffer(addr, data)
    }

    /// Reads a row all the way over the DDR bus (conventional read used by
    /// processor-centric execution).
    ///
    /// # Errors
    ///
    /// Same conditions as [`MainMemory::activate_read`].
    pub fn read_row_over_bus(&mut self, addr: RowAddr, cols: u64) -> Result<RowData, MemError> {
        let data = self.read_row_to_buffer(addr, cols)?;
        self.charge_bus(cols);
        Ok(data)
    }

    /// Charges the export of an operation result from the sense amplifiers
    /// to the host (GDL + DDR bus), without touching functional state —
    /// the cost a design *without* the Fig. 8a write-driver modification
    /// pays before it can write a result back conventionally.
    pub fn charge_result_export(&mut self, cols: u64) {
        self.charge_gdl(cols);
        self.charge_bus(cols);
    }

    /// Writes a row through the local write drivers, fed directly from the
    /// SA output (the in-place update path of Fig. 8a). No GDL or bus
    /// traffic.
    ///
    /// # Errors
    ///
    /// Returns address/width errors as in [`MainMemory::poke_row`].
    pub fn write_row_local(&mut self, addr: RowAddr, data: &RowData) -> Result<(), MemError> {
        self.validate_addr(addr)?;
        self.validate_cols_nonzero(data.len_bits())?;
        self.store(addr, data);
        self.charge_write(addr, data.len_bits(), true);
        Ok(())
    }

    /// Writes a row from the bank's global row buffer (GDL transfer + array
    /// write) — the tail of an inter-subarray/inter-bank operation.
    ///
    /// # Errors
    ///
    /// Returns address/width errors as in [`MainMemory::poke_row`].
    pub fn write_row_from_buffer(&mut self, addr: RowAddr, data: &RowData) -> Result<(), MemError> {
        self.validate_addr(addr)?;
        self.validate_cols_nonzero(data.len_bits())?;
        self.store(addr, data);
        self.charge_gdl(data.len_bits());
        self.charge_write(addr, data.len_bits(), false);
        Ok(())
    }

    /// Writes a row arriving over the DDR bus (conventional write).
    ///
    /// # Errors
    ///
    /// Returns address/width errors as in [`MainMemory::poke_row`].
    pub fn write_row_over_bus(&mut self, addr: RowAddr, data: &RowData) -> Result<(), MemError> {
        self.validate_addr(addr)?;
        self.validate_cols_nonzero(data.len_bits())?;
        self.charge_bus(data.len_bits());
        self.write_row_from_buffer(addr, data)
    }

    /// A digital bitwise pass in a global row / IO buffer (paper Fig. 8b):
    /// combines `operand` into `acc` under `config`. Charges logic energy;
    /// the data movement feeding the logic is charged by the surrounding
    /// reads/writes, and the gates add no visible latency at GDL streaming
    /// rates.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::EmptyOperation`] for zero-length operands, and
    /// [`MemError::Nvm`] if `config` names a non-combining mode
    /// ([`PimConfig::Off`] / [`PimConfig::Inv`]).
    pub fn buffer_logic(
        &mut self,
        config: PimConfig,
        acc: &mut RowData,
        operand: &RowData,
        cols: u64,
    ) -> Result<(), MemError> {
        self.validate_cols_nonzero(cols)?;
        match config {
            PimConfig::Or => acc.or_assign(operand),
            PimConfig::And => acc.and_assign(operand),
            PimConfig::Xor => acc.xor_assign(operand),
            PimConfig::Off | PimConfig::Inv => {
                return Err(MemError::Nvm(pinatubo_nvm::NvmError::DegenerateFanIn))
            }
        }
        self.stats.energy.logic_pj += self.config.energy.logic_pj(cols);
        self.stats.events.logic_passes += 1;
        if self.config.record_trace {
            self.record(MemCommand::BufferLogic { bits: cols });
        }
        Ok(())
    }

    /// Write-wear summary over every charged row write (pokes are setup
    /// and do not count).
    #[must_use]
    pub fn wear_report(&self) -> crate::stats::WearReport {
        crate::stats::WearReport {
            total_row_writes: self.wear.values().sum(),
            rows_written: self.wear.len() as u64,
            max_row_writes: self.wear.values().copied().max().unwrap_or(0),
        }
    }

    /// Writes charged against one row so far.
    #[must_use]
    pub fn row_wear(&self, addr: RowAddr) -> u64 {
        self.wear.get(&addr).copied().unwrap_or(0)
    }

    /// Rows whose charged write count has reached `write_limit` — the
    /// candidates an endurance manager retires from the allocation pool.
    #[must_use]
    pub fn worn_rows(&self, write_limit: u64) -> Vec<RowAddr> {
        let mut rows: Vec<RowAddr> = self
            .wear
            .iter()
            .filter(|&(_, &writes)| writes >= write_limit)
            .map(|(&addr, _)| addr)
            .collect();
        rows.sort_unstable();
        rows
    }

    /// Inverts `data` through the SA's differential output while writing it
    /// back (INV support, §4.2). Charges one logic-free sense-side pass —
    /// the inversion is literally the other latch output, so only the
    /// write is extra and the caller performs it separately.
    #[must_use]
    pub fn invert_in_sense_amp(&self, data: &RowData) -> RowData {
        let mut out = data.clone();
        out.invert();
        out
    }

    // ---- internal helpers ----

    fn require_sense_amp(&self) -> Result<&CurrentSenseAmp, MemError> {
        self.sense_amp
            .as_ref()
            .ok_or(MemError::Nvm(pinatubo_nvm::NvmError::FanInExceeded {
                requested: 2,
                supported: 1,
            }))
    }

    fn validate_addr(&self, addr: RowAddr) -> Result<(), MemError> {
        if addr.is_valid(&self.config.geometry) {
            Ok(())
        } else {
            Err(MemError::AddressOutOfRange { addr })
        }
    }

    fn validate_cols(&self, cols: u64) -> Result<(), MemError> {
        let row_bits = self.config.geometry.logical_row_bits();
        if cols > row_bits {
            Err(MemError::ColsExceedRow { cols, row_bits })
        } else {
            Ok(())
        }
    }

    fn validate_cols_nonzero(&self, cols: u64) -> Result<(), MemError> {
        if cols == 0 {
            return Err(MemError::EmptyOperation);
        }
        self.validate_cols(cols)
    }

    /// Loads the first `cols` bits of a row (absent rows read as zeros —
    /// the simulator's initial array state).
    fn load(&self, addr: RowAddr, cols: u64) -> RowData {
        match self.peek_row(addr) {
            Some(row) => {
                let mut out = row.clone();
                out.resize(cols);
                out
            }
            None => RowData::zeros(cols),
        }
    }

    fn store(&mut self, addr: RowAddr, data: &RowData) {
        // Rows are stored at their written length, not padded to the full
        // 2^19-bit row: reads zero-extend (`load`), which keeps the host
        // memory footprint proportional to the bits actually used.
        self.rows
            .entry(addr.subarray_id())
            .or_default()
            .insert(addr.row, data.clone());
    }

    fn charge_write(&mut self, addr: RowAddr, bits: u64, local: bool) {
        self.stats.time_ns += self.config.timing.t_wr_ns;
        self.stats.time.write_ns += self.config.timing.t_wr_ns;
        self.stats.energy.write_pj += self.config.energy.write_pj(bits);
        self.stats.events.row_writes += 1;
        *self.wear.entry(addr).or_insert(0) += 1;
        if self.config.record_trace {
            self.record(MemCommand::WriteRow { addr, bits, local });
        }
    }

    fn charge_gdl(&mut self, bits: u64) {
        let cycles = self.config.geometry.gdl_cycles(bits);
        self.stats.time_ns += cycles as f64 * self.config.timing.t_gdl_cycle_ns;
        self.stats.time.gdl_ns += cycles as f64 * self.config.timing.t_gdl_cycle_ns;
        self.stats.energy.gdl_pj += self.config.energy.gdl_pj(bits);
        self.stats.events.gdl_transfers += 1;
        if self.config.record_trace {
            self.record(MemCommand::GdlTransfer { bits });
        }
    }

    fn charge_bus(&mut self, bits: u64) {
        self.stats.time_ns += self.config.timing.bus_transfer_ns(bits);
        self.stats.time.bus_ns += self.config.timing.bus_transfer_ns(bits);
        self.stats.energy.bus_pj += self.config.energy.bus_pj(bits);
        self.stats.events.bus_bursts += bits.div_ceil(self.config.timing.burst_bits());
        self.stats.events.bus_bits += bits;
        if self.config.record_trace {
            self.record(MemCommand::BusBurst { bits });
        }
    }

    fn record(&mut self, cmd: MemCommand) {
        if self.config.record_trace {
            self.trace.push(cmd);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pinatubo_nvm::NvmError;

    fn mem() -> MainMemory {
        MainMemory::new(MemConfig::pcm_default())
    }

    fn addr(subarray: u32, row: u32) -> RowAddr {
        RowAddr::new(0, 0, 0, subarray, row)
    }

    #[test]
    fn or_of_two_rows_is_functional() {
        let mut m = mem();
        m.poke_row(addr(0, 0), &RowData::from_bits(&[true, false, true, false]))
            .expect("poke a");
        m.poke_row(addr(0, 1), &RowData::from_bits(&[false, false, true, true]))
            .expect("poke b");
        let out = m
            .multi_activate_sense(&[addr(0, 0), addr(0, 1)], SenseMode::or(2).expect("or2"), 4)
            .expect("2-row OR");
        assert_eq!(out.bits(4), vec![true, false, true, true]);
    }

    #[test]
    fn and_of_two_rows_is_functional() {
        let mut m = mem();
        m.poke_row(addr(0, 0), &RowData::from_bits(&[true, true, false, false]))
            .expect("poke a");
        m.poke_row(addr(0, 1), &RowData::from_bits(&[true, false, true, false]))
            .expect("poke b");
        let out = m
            .multi_activate_sense(
                &[addr(0, 0), addr(0, 1)],
                SenseMode::and(2).expect("and2"),
                4,
            )
            .expect("2-row AND");
        assert_eq!(out.bits(4), vec![true, false, false, false]);
    }

    #[test]
    fn absent_rows_read_as_zeros() {
        let mut m = mem();
        let out = m.activate_read(addr(3, 77), 8).expect("read empty row");
        assert_eq!(out.count_ones(), 0);
    }

    #[test]
    fn multi_row_or_accumulates_128_rows() {
        let mut m = mem();
        let rows: Vec<RowAddr> = (0..128).map(|r| addr(0, r)).collect();
        // One hot bit somewhere in the middle.
        m.poke_row(addr(0, 64), &RowData::from_bits(&[false, true]))
            .expect("poke");
        let out = m
            .multi_activate_sense(&rows, SenseMode::or(128).expect("or128"), 2)
            .expect("128-row OR");
        assert_eq!(out.bits(2), vec![false, true]);
        assert_eq!(m.stats().events.rows_activated, 128);
        assert_eq!(m.stats().events.multi_activates, 1);
    }

    #[test]
    fn cross_subarray_activation_is_rejected() {
        let mut m = mem();
        let err = m
            .multi_activate_sense(&[addr(0, 0), addr(1, 0)], SenseMode::or(2).expect("or2"), 4)
            .expect_err("different subarrays cannot co-activate");
        assert!(matches!(err, MemError::SubarrayMismatch { .. }));
    }

    #[test]
    fn fan_in_beyond_margin_is_rejected() {
        let mut m = mem();
        let rows: Vec<RowAddr> = (0..129).map(|r| addr(0, r)).collect();
        let err = m
            .multi_activate_sense(&rows, SenseMode::Or { fan_in: 129 }, 4)
            .expect_err("129-row OR exceeds PCM margin");
        assert_eq!(
            err,
            MemError::Nvm(NvmError::FanInExceeded {
                requested: 129,
                supported: 128
            })
        );
    }

    #[test]
    fn operand_count_must_match_mode() {
        let mut m = mem();
        let err = m
            .multi_activate_sense(&[addr(0, 0)], SenseMode::or(2).expect("or2"), 4)
            .expect_err("one operand under an OR-2 reference");
        assert_eq!(err, MemError::Nvm(NvmError::DegenerateFanIn));
    }

    #[test]
    fn dram_memory_cannot_multi_sense() {
        let mut m = MainMemory::new(MemConfig::dram_default());
        assert_eq!(m.max_or_fan_in(), 1);
        let err = m
            .multi_activate_sense(&[addr(0, 0), addr(0, 1)], SenseMode::or(2).expect("or2"), 4)
            .expect_err("DRAM has no current SA");
        assert!(matches!(err, MemError::Nvm(NvmError::FanInExceeded { .. })));
    }

    #[test]
    fn timing_adds_up_for_multi_activate() {
        let mut m = mem();
        let rows: Vec<RowAddr> = (0..4).map(|r| addr(0, r)).collect();
        let cols = m.geometry().bits_per_sense_pass(); // exactly one pass
        m.multi_activate_sense(&rows, SenseMode::or(4).expect("or4"), cols)
            .expect("4-row OR");
        let t = TimingParams::pcm_ddr3_1600();
        let expect = t.multi_activate_ns(4) + t.t_cl_ns + t.t_rp_ns;
        assert!(
            (m.stats().time_ns - expect).abs() < 1e-9,
            "{}",
            m.stats().time_ns
        );
        assert_eq!(m.stats().events.sense_passes, 1);
    }

    #[test]
    fn sense_passes_scale_with_cols() {
        let mut m = mem();
        let per_pass = m.geometry().bits_per_sense_pass();
        m.activate_read(addr(0, 0), per_pass * 3 + 1).expect("read");
        assert_eq!(m.stats().events.sense_passes, 4);
    }

    #[test]
    fn local_write_back_skips_gdl_and_bus() {
        let mut m = mem();
        let data = RowData::from_bits(&[true; 64]);
        m.write_row_local(addr(0, 9), &data).expect("local write");
        assert_eq!(m.stats().energy.gdl_pj, 0.0);
        assert_eq!(m.stats().energy.bus_pj, 0.0);
        assert!(m.stats().energy.write_pj > 0.0);
        assert_eq!(
            m.peek_row(addr(0, 9)).expect("stored").bits(2),
            vec![true, true]
        );
    }

    #[test]
    fn bus_write_charges_every_stage() {
        let mut m = mem();
        let data = RowData::from_bits(&[true; 64]);
        m.write_row_over_bus(addr(0, 9), &data).expect("bus write");
        assert!(m.stats().energy.bus_pj > 0.0);
        assert!(m.stats().energy.gdl_pj > 0.0);
        assert!(m.stats().energy.write_pj > 0.0);
        assert_eq!(m.stats().events.bus_bits, 64);
    }

    #[test]
    fn bus_read_costs_more_time_than_buffer_read() {
        let mut a = mem();
        let mut b = mem();
        let cols = 1 << 16;
        a.read_row_over_bus(addr(0, 0), cols).expect("bus read");
        b.read_row_to_buffer(addr(0, 0), cols).expect("buffer read");
        assert!(a.stats().time_ns > b.stats().time_ns);
    }

    #[test]
    fn buffer_logic_combines_and_charges() {
        let mut m = mem();
        let mut acc = RowData::from_bits(&[true, false, true]);
        let op = RowData::from_bits(&[false, true, true]);
        m.buffer_logic(PimConfig::Xor, &mut acc, &op, 3)
            .expect("xor in buffer");
        assert_eq!(acc.bits(3), vec![true, true, false]);
        assert!(m.stats().energy.logic_pj > 0.0);
        assert_eq!(m.stats().events.logic_passes, 1);

        let err = m
            .buffer_logic(PimConfig::Off, &mut acc, &op, 3)
            .expect_err("OFF is not a combining mode");
        assert!(matches!(err, MemError::Nvm(_)));
    }

    #[test]
    fn mode_register_set_is_cached() {
        let mut m = mem();
        m.set_pim_config(PimConfig::Or);
        m.set_pim_config(PimConfig::Or);
        assert_eq!(m.stats().events.mode_sets, 1);
        m.set_pim_config(PimConfig::And);
        assert_eq!(m.stats().events.mode_sets, 2);
    }

    #[test]
    fn trace_records_commands_when_enabled() {
        let mut cfg = MemConfig::pcm_default();
        cfg.record_trace = true;
        let mut m = MainMemory::new(cfg);
        m.set_pim_config(PimConfig::Or);
        m.multi_activate_sense(&[addr(0, 0), addr(0, 1)], SenseMode::or(2).expect("or2"), 4)
            .expect("2-row OR");
        let kinds: Vec<String> = m.trace().iter().map(ToString::to_string).collect();
        assert_eq!(kinds[0], "MRS OR");
        assert!(kinds[1].starts_with("MACT x2"));
        assert!(kinds[2].starts_with("SENSE OR-2"));
        assert!(kinds[3].starts_with("PRE"));
    }

    #[test]
    fn take_stats_resets() {
        let mut m = mem();
        m.activate_read(addr(0, 0), 8).expect("read");
        let taken = m.take_stats();
        assert!(taken.time_ns > 0.0);
        assert_eq!(m.stats().time_ns, 0.0);
    }

    #[test]
    fn invert_in_sense_amp_is_differential() {
        let m = mem();
        let data = RowData::from_bits(&[true, false, true]);
        let inv = m.invert_in_sense_amp(&data);
        assert_eq!(inv.bits(3), vec![false, true, false]);
    }

    #[test]
    fn open_page_hits_skip_activation() {
        let mut cfg = MemConfig::pcm_default();
        cfg.open_page = true;
        let mut m = MainMemory::new(cfg);

        m.activate_read(addr(0, 5), 64)
            .expect("first read opens the page");
        let after_open = m.stats().time_ns;
        m.activate_read(addr(0, 5), 64).expect("second read hits");
        let hit_cost = m.stats().time_ns - after_open;
        assert!(
            (hit_cost - TimingParams::pcm_ddr3_1600().t_cl_ns).abs() < 1e-9,
            "a hit pays one column access, got {hit_cost}"
        );
        assert_eq!(m.stats().events.row_buffer_hits, 1);
        assert_eq!(m.stats().events.activates, 1, "no second activation");

        // A different row in the same subarray closes and reopens.
        m.activate_read(addr(0, 6), 64).expect("conflict read");
        assert_eq!(m.stats().events.precharges, 1);
        assert_eq!(m.stats().events.activates, 2);

        // Multi-row PIM activation closes the page.
        m.multi_activate_sense(&[addr(0, 1), addr(0, 2)], SenseMode::or(2).expect("or2"), 4)
            .expect("pim op");
        m.activate_read(addr(0, 6), 64).expect("read after pim op");
        assert_eq!(
            m.stats().events.row_buffer_hits,
            1,
            "the PIM op closed the page, so no further hit yet"
        );
    }

    #[test]
    fn closed_page_policy_never_hits() {
        let mut m = mem();
        m.activate_read(addr(0, 5), 64).expect("first");
        m.activate_read(addr(0, 5), 64).expect("second");
        assert_eq!(m.stats().events.row_buffer_hits, 0);
        assert_eq!(m.stats().events.precharges, 2);
    }

    #[test]
    fn wear_tracks_charged_writes_only() {
        let mut m = mem();
        let data = RowData::from_bits(&[true; 8]);
        // Pokes are setup: no wear.
        m.poke_row(addr(0, 1), &data).expect("poke");
        assert_eq!(m.wear_report().total_row_writes, 0);

        m.write_row_local(addr(0, 1), &data).expect("write 1");
        m.write_row_local(addr(0, 1), &data).expect("write 2");
        m.write_row_local(addr(0, 2), &data).expect("write 3");
        let report = m.wear_report();
        assert_eq!(report.total_row_writes, 3);
        assert_eq!(report.rows_written, 2);
        assert_eq!(report.max_row_writes, 2);
        assert!((report.imbalance() - 2.0 / 1.5).abs() < 1e-12);
        assert_eq!(m.row_wear(addr(0, 1)), 2);
        assert_eq!(m.row_wear(addr(0, 9)), 0);
    }

    #[test]
    fn time_breakdown_sums_to_time_ns() {
        let mut m = mem();
        m.set_pim_config(PimConfig::Or);
        let rows: Vec<RowAddr> = (0..4).map(|r| addr(0, r)).collect();
        m.multi_activate_sense(&rows, SenseMode::or(4).expect("or4"), 64)
            .expect("or");
        let data = RowData::from_bits(&[true; 64]);
        m.write_row_over_bus(addr(0, 9), &data).expect("bus write");
        m.write_row_local(addr(0, 10), &data).expect("local write");
        m.read_row_to_buffer(addr(0, 9), 64).expect("buffer read");

        let s = m.stats();
        assert!(
            (s.time.total_ns() - s.time_ns).abs() < 1e-9,
            "breakdown {} vs scalar {}",
            s.time.total_ns(),
            s.time_ns
        );
        assert!(s.time.mrs_ns > 0.0);
        assert!(s.time.activate_ns > 0.0);
        assert!(s.time.sense_ns > 0.0);
        assert!(s.time.write_ns > 0.0);
        assert!(s.time.gdl_ns > 0.0);
        assert!(s.time.bus_ns > 0.0);
        assert!(s.time.precharge_ns > 0.0);
        assert_eq!(s.time.stall_ns, 0.0, "default timings never stall");
        assert!((s.time.shared_ns() - (s.time.bus_ns + s.time.mrs_ns)).abs() < 1e-12);
    }

    #[test]
    fn default_parameters_never_stall_activations() {
        let mut m = mem();
        // Back-to-back activations on different banks of one rank — the
        // densest ACT pattern a serial stream can produce.
        for bank in 0..8 {
            m.activate_read(RowAddr::new(0, 0, bank, 0, 0), 64)
                .expect("read");
        }
        assert_eq!(m.stats().time.stall_ns, 0.0);
    }

    #[test]
    fn tight_trrd_stalls_back_to_back_activations() {
        let mut cfg = MemConfig::pcm_default();
        cfg.timing.t_rrd_ns = 1000.0;
        let mut m = MainMemory::new(cfg);
        m.activate_read(RowAddr::new(0, 0, 0, 0, 0), 64).expect("a");
        let after_first = m.stats().time_ns; // 18.3 + 8.9 + 7.8 = 35.0
        m.activate_read(RowAddr::new(0, 0, 1, 0, 0), 64).expect("b");
        // The second ACT (to another bank, same rank) waited until
        // 0 + tRRD = 1000, i.e. a stall of 1000 - 35.
        let expect_stall = 1000.0 - after_first;
        assert!(
            (m.stats().time.stall_ns - expect_stall).abs() < 1e-9,
            "stall {} vs {}",
            m.stats().time.stall_ns,
            expect_stall
        );
        assert!((m.stats().time.total_ns() - m.stats().time_ns).abs() < 1e-9);

        // A different rank has its own window: no extra stall.
        let stalled = m.stats().time.stall_ns;
        m.activate_read(RowAddr::new(0, 1, 0, 0, 0), 64).expect("c");
        assert!((m.stats().time.stall_ns - stalled).abs() < 1e-9);
    }

    #[test]
    fn tight_tfaw_gates_the_fifth_activation() {
        let mut cfg = MemConfig::pcm_default();
        cfg.timing.t_faw_ns = 10_000.0;
        let mut m = MainMemory::new(cfg);
        for bank in 0..4 {
            m.activate_read(RowAddr::new(0, 0, bank, 0, 0), 64)
                .expect("read");
        }
        assert_eq!(m.stats().time.stall_ns, 0.0, "first four are free");
        m.activate_read(RowAddr::new(0, 0, 4, 0, 0), 64).expect("e");
        // The fifth ACT waits for the window opened by the first (issued
        // at time 0): stall = tFAW - 4 serial commands of 35 ns.
        let expect_stall = 10_000.0 - 4.0 * 35.0;
        assert!(
            (m.stats().time.stall_ns - expect_stall).abs() < 1e-9,
            "stall {}",
            m.stats().time.stall_ns
        );
    }

    #[test]
    fn take_stats_clears_the_activation_history() {
        let mut cfg = MemConfig::pcm_default();
        cfg.timing.t_rrd_ns = 1000.0;
        let mut m = MainMemory::new(cfg);
        m.activate_read(RowAddr::new(0, 0, 0, 0, 0), 64).expect("a");
        m.take_stats();
        // On a fresh clock the old issue times must not gate anything.
        m.activate_read(RowAddr::new(0, 0, 1, 0, 0), 64).expect("b");
        assert_eq!(m.stats().time.stall_ns, 0.0);
    }

    #[test]
    fn worn_rows_respect_the_threshold_and_sort() {
        let mut m = mem();
        let data = RowData::from_bits(&[true; 8]);
        let hot = RowAddr::new(1, 0, 2, 3, 7);
        let warm = RowAddr::new(0, 1, 0, 0, 1);
        let cold = RowAddr::new(0, 0, 0, 0, 0);
        for _ in 0..5 {
            m.write_row_local(hot, &data).expect("hot");
        }
        for _ in 0..3 {
            m.write_row_local(warm, &data).expect("warm");
        }
        m.write_row_local(cold, &data).expect("cold");

        assert_eq!(m.row_wear(hot), 5);
        assert_eq!(m.row_wear(warm), 3);
        assert_eq!(m.row_wear(cold), 1);
        // Threshold is inclusive (`>= limit`) and the result is sorted.
        assert_eq!(m.worn_rows(3), vec![warm, hot]);
        assert_eq!(m.worn_rows(5), vec![hot]);
        assert_eq!(m.worn_rows(6), Vec::<RowAddr>::new());
        // Every charged write path wears the row; pokes never do.
        m.write_row_over_bus(cold, &data).expect("bus");
        m.write_row_from_buffer(cold, &data).expect("buffer");
        assert_eq!(m.row_wear(cold), 3);
        m.poke_row(cold, &data).expect("poke");
        assert_eq!(m.row_wear(cold), 3);
    }

    #[test]
    fn invalid_addresses_are_rejected_everywhere() {
        let mut m = mem();
        let bad = RowAddr::new(99, 0, 0, 0, 0);
        let data = RowData::from_bits(&[true]);
        assert!(matches!(
            m.poke_row(bad, &data),
            Err(MemError::AddressOutOfRange { .. })
        ));
        assert!(matches!(
            m.write_row_local(bad, &data),
            Err(MemError::AddressOutOfRange { .. })
        ));
        assert!(matches!(
            m.activate_read(bad, 1),
            Err(MemError::AddressOutOfRange { .. })
        ));
    }

    #[test]
    fn zero_cols_is_rejected() {
        let mut m = mem();
        assert_eq!(
            m.activate_read(addr(0, 0), 0).expect_err("zero columns"),
            MemError::EmptyOperation
        );
    }

    #[test]
    fn cols_beyond_row_is_rejected() {
        let mut m = mem();
        let row_bits = m.geometry().logical_row_bits();
        assert!(matches!(
            m.activate_read(addr(0, 0), row_bits + 1),
            Err(MemError::ColsExceedRow { .. })
        ));
    }
}
